// QoS behaviour of the unified Query entry point: deadline enforcement in
// every phase (admission, queued, mid-execution), priority-class shedding
// under saturation, micro-batch coalescing bit-identity, and exact
// equivalence of the legacy ScoreBatch/TryScoreBatch wrappers.
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace rpc::serve {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Same synthetic monotone model family as ranking_service_test.cc: no
// fitting needed, so the QoS tests spend their time in the serving path,
// not in training.
core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  core::PortableRpcModel model;
  model.alpha = order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Wrapper equivalence: the legacy methods are Query with fixed options.

TEST(QosTest, ScoreBatchIsQueryWithDefaultOptions) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(3, 7)).ok());
  const Matrix rows = RandomRows(64, 3, 8);

  const auto legacy = service.ScoreBatch("d", rows);
  const auto unified = service.Query("d", rows);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  ASSERT_EQ(legacy->scores.size(), unified->scores.size());
  for (int i = 0; i < rows.rows(); ++i) {
    // EXPECT_EQ, not NEAR: the wrapper must be the same code path bit for
    // bit, not merely close.
    EXPECT_EQ(legacy->scores[i], unified->scores[i]) << "row " << i;
    EXPECT_EQ(legacy->ranks[static_cast<size_t>(i)],
              unified->ranks[static_cast<size_t>(i)])
        << "row " << i;
  }
}

TEST(QosTest, TryScoreBatchIsQueryWithRejectAdmission) {
  // On an idle service both succeed identically...
  RankingService idle;
  ASSERT_TRUE(idle.RegisterDataset("d", MonotoneModel(2, 9)).ok());
  const Matrix small = RandomRows(16, 2, 10);
  const auto legacy = idle.TryScoreBatch("d", small);
  QueryOptions reject;
  reject.admission = AdmissionPolicy::kReject;
  const auto unified = idle.Query("d", small, reject);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  for (int i = 0; i < small.rows(); ++i) {
    EXPECT_EQ(legacy->scores[i], unified->scores[i]) << "row " << i;
  }

  // ...and under backlog both refuse with the same code.
  RankingService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;
  options.segment_rows = 1;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 11)).ok());
  const Matrix rows = RandomRows(4096, 2, 12);
  StatusCode legacy_code = StatusCode::kOk;
  StatusCode unified_code = StatusCode::kOk;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto a = service.TryScoreBatch("d", rows);
    if (!a.ok() && legacy_code == StatusCode::kOk) {
      legacy_code = a.status().code();
    }
    const auto b = service.Query("d", rows, reject);
    if (!b.ok() && unified_code == StatusCode::kOk) {
      unified_code = b.status().code();
    }
  }
  EXPECT_EQ(legacy_code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(unified_code, StatusCode::kFailedPrecondition);
  EXPECT_GE(service.stats().rejected, 2);
}

// ---------------------------------------------------------------------------
// Deadline phase 1: expired before admission (fully deterministic).

TEST(QosTest, DeadlineExpiredBeforeAdmissionNeverTouchesTheQueue) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 13)).ok());

  QueryOptions options;
  options.deadline = QueryDeadline(std::chrono::seconds(-1));  // already past
  const auto batch = service.Query("d", RandomRows(8, 2, 14), options);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.queries, 0);
  EXPECT_EQ(stats.segments, 0);  // rejected before any segment was admitted
  EXPECT_EQ(stats.peak_queue_depth, 0);

  // The service is untouched and fully usable.
  EXPECT_TRUE(service.ScoreBatch("d", RandomRows(8, 2, 15)).ok());
}

// ---------------------------------------------------------------------------
// Deadline phase 2: expiry while the query is queued / blocked on admission.
// A tiny queue with a slow single drain cannot absorb 50k one-row segments
// within the budget, so the deadline passes either while blocked pushing
// (kTimeout) or while admitted segments sit in the queue (dequeue check) —
// both must surface as kDeadlineExceeded with the query accounted.

TEST(QosTest, DeadlineExpiresWhileQueuedOrBlocked) {
  RankingService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;
  options.segment_rows = 1;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 16)).ok());

  QueryOptions qopts;
  qopts.deadline = QueryDeadline(std::chrono::milliseconds(5));
  const auto batch = service.Query("d", RandomRows(50000, 2, 17), qopts);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_expired, 1);

  // No zombie work: once the failed Query returned, pending segments drain
  // promptly (expired ones are dropped at dequeue) and the service answers
  // fresh queries.
  const auto after = service.ScoreBatch("d", RandomRows(8, 2, 18));
  EXPECT_TRUE(after.ok());
}

// ---------------------------------------------------------------------------
// Deadline phase 3: expiry mid-execution. One huge segment is cancelled
// between rows by the cooperative stride check — the worker bails instead
// of scoring 200k rows for a caller that already gave up.

TEST(QosTest, DeadlineExpiresMidExecutionCancelsCooperatively) {
  RankingService::Options options;
  options.num_threads = 2;
  options.segment_rows = 1 << 20;  // the whole query is one segment
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(4, 19)).ok());

  const Matrix rows = RandomRows(200000, 4, 20);
  QueryOptions qopts;
  qopts.deadline = QueryDeadline(std::chrono::milliseconds(2));
  const auto batch = service.Query("d", rows, qopts);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_GE(stats.expired_segments, 1);  // the segment was abandoned, not run
  EXPECT_EQ(stats.queries, 0);

  // Cancellation left the service healthy.
  const auto after = service.ScoreBatch("d", RandomRows(8, 4, 21));
  EXPECT_TRUE(after.ok());
}

// ---------------------------------------------------------------------------
// Priority classes: under a queue saturated by batch-class load, background
// kReject traffic is shed (its watermark is the lowest) while interactive
// queries — which may use the full queue and are popped first — all get
// through. This is the no-priority-inversion guarantee.

TEST(QosTest, BackgroundShedsWhileInteractiveSucceedsUnderSaturation) {
  RankingService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 4;  // watermarks: interactive 4, batch 3, bg 2
  options.segment_rows = 1;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 22)).ok());
  // A second dataset whose *default* class is background: queries without
  // an explicit priority must inherit it (DatasetOptions routing).
  DatasetOptions bg_dataset;
  bg_dataset.default_priority = QueryPriority::kBackground;
  ASSERT_TRUE(
      service.RegisterDataset("bg", MonotoneModel(2, 23), bg_dataset).ok());

  // Saturate from a batch-class producer: its blocking pushes hold queue
  // occupancy at the batch watermark (3) for the whole big query.
  std::atomic<bool> saturator_done{false};
  const Matrix big = RandomRows(50000, 2, 24);
  std::thread saturator([&] {
    QueryOptions batch_opts;
    batch_opts.priority = QueryPriority::kBatch;
    EXPECT_TRUE(service.Query("d", big, batch_opts).ok());
    saturator_done = true;
  });

  const Matrix one = RandomRows(1, 2, 25);
  QueryOptions bg_reject;  // priority comes from the dataset default
  bg_reject.admission = AdmissionPolicy::kReject;
  int background_shed = 0;
  while (!saturator_done.load() && background_shed == 0) {
    for (int i = 0; i < 100 && background_shed == 0; ++i) {
      if (!service.Query("bg", one, bg_reject).ok()) ++background_shed;
    }
  }
  // Interactive blocking queries ride lane 0 (popped first, full-capacity
  // watermark): every one of them completes even against the saturator.
  QueryOptions interactive;
  interactive.priority = QueryPriority::kInteractive;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service.Query("d", one, interactive).ok()) << "query " << i;
  }
  saturator.join();

  EXPECT_GE(background_shed, 1);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.shed_by_priority[static_cast<size_t>(
                QueryPriority::kBackground)],
            1);
  EXPECT_EQ(stats.shed_by_priority[static_cast<size_t>(
                QueryPriority::kInteractive)],
            0);
  EXPECT_GE(stats.peak_queue_depth, 1);
  EXPECT_LE(stats.peak_queue_depth, options.queue_capacity);
}

// ---------------------------------------------------------------------------
// Coalescing: two small queries arriving within the delay window share one
// execution segment, and riding a group never changes a single score bit.

TEST(QosTest, CoalescedQueriesAreBitIdenticalAndShareOneSegment) {
  RankingService::Options options;
  options.num_threads = 2;
  options.max_coalesce_delay = std::chrono::milliseconds(250);
  options.coalesce_max_rows = 4;
  options.coalesce_flush_rows = 2;  // the second rider seals the group
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(3, 26)).ok());

  const Matrix row_a = RandomRows(1, 3, 27);
  const Matrix row_b = RandomRows(1, 3, 28);

  // References through the same service with coalescing opted out.
  QueryOptions solo;
  solo.allow_coalesce = false;
  const auto ref_a = service.Query("d", row_a, solo);
  const auto ref_b = service.Query("d", row_b, solo);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  const std::int64_t segments_before = service.stats().segments;

  // Leader opens the group; the joiner fills it to coalesce_flush_rows and
  // seals. (If the thread starts late the roles swap — same outcome.)
  Result<RankedBatch> got_a = Status::Internal("unset");
  std::thread leader([&] { got_a = service.Query("d", row_a); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto got_b = service.Query("d", row_b);
  leader.join();

  ASSERT_TRUE(got_a.ok());
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_a->scores[0], ref_a->scores[0]);  // bit-identity
  EXPECT_EQ(got_b->scores[0], ref_b->scores[0]);
  EXPECT_TRUE(got_a->trace.coalesced);
  EXPECT_TRUE(got_b->trace.coalesced);
  EXPECT_EQ(got_a->trace.segments, 1);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced_queries, 2);
  // The pair cost exactly one more execution segment, not two.
  EXPECT_EQ(stats.segments - segments_before, 1);
}

TEST(QosTest, SoloLeaderFlushesAtTheDelayBoundary) {
  RankingService::Options options;
  options.num_threads = 2;
  options.max_coalesce_delay = std::chrono::milliseconds(5);
  options.coalesce_max_rows = 4;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 29)).ok());

  const Matrix row = RandomRows(1, 2, 30);
  QueryOptions solo;
  solo.allow_coalesce = false;
  const auto ref = service.Query("d", row, solo);
  ASSERT_TRUE(ref.ok());

  const auto got = service.Query("d", row);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->scores[0], ref->scores[0]);
  // Nobody joined: the group executed solo after donating the delay...
  EXPECT_FALSE(got->trace.coalesced);
  EXPECT_EQ(service.stats().coalesced_queries, 0);
  // ...which shows up as admission wait, not execution time.
  EXPECT_GE(got->trace.admission_wait, std::chrono::milliseconds(4));
}

// ---------------------------------------------------------------------------
// Observability: peak_queue_depth, QueryTrace and the latency histogram.

TEST(QosTest, PeakQueueDepthTracksAdmissionHighWaterMark) {
  RankingService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.segment_rows = 1;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 31)).ok());
  EXPECT_EQ(service.stats().peak_queue_depth, 0);

  ASSERT_TRUE(service.ScoreBatch("d", RandomRows(64, 2, 32)).ok());
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.peak_queue_depth, 1);
  EXPECT_LE(stats.peak_queue_depth, options.queue_capacity);
}

TEST(QosTest, TraceAndLatencyHistogramArePopulated) {
  RankingService::Options options;
  options.num_threads = 2;
  options.segment_rows = 32;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(3, 33)).ok());

  const auto batch = service.Query("d", RandomRows(100, 3, 34));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->trace.segments, 4);  // ceil(100 / 32)
  EXPECT_GE(batch->trace.admission_wait.count(), 0);
  EXPECT_GT(batch->trace.execution_time.count(), 0);
  EXPECT_FALSE(batch->trace.coalesced);

  ASSERT_TRUE(service.Query("d", RandomRows(3, 3, 35)).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.latency.total(), stats.queries);
  EXPECT_GT(stats.latency.QuantileUpperBoundUs(0.5), 0.0);
  EXPECT_GE(stats.latency.QuantileUpperBoundUs(0.99),
            stats.latency.QuantileUpperBoundUs(0.5));
}

TEST(QosTest, LatencyHistogramBucketsArePowersOfTwoMicroseconds) {
  using std::chrono::microseconds;
  EXPECT_EQ(LatencyHistogram::BucketFor(std::chrono::nanoseconds(100)), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(microseconds(1)), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(microseconds(2)), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(microseconds(3)), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(microseconds(4)), 2);
  EXPECT_EQ(LatencyHistogram::BucketFor(microseconds(1000)), 9);
  EXPECT_EQ(LatencyHistogram::BucketFor(std::chrono::seconds(100)),
            LatencyHistogram::kNumBuckets - 1);

  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.QuantileUpperBoundUs(0.5), 0.0);
  h.buckets[3] = 9;   // nine queries in [8, 16) us
  h.buckets[9] = 1;   // one slow outlier in [512, 1024) us
  EXPECT_EQ(h.total(), 10);
  EXPECT_EQ(h.QuantileUpperBoundUs(0.5), 16.0);
  EXPECT_EQ(h.QuantileUpperBoundUs(0.99), 1024.0);
}

}  // namespace
}  // namespace rpc::serve
