#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace rpc::serve {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Same synthetic monotone model the other serve tests use — no fitting.
core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  core::PortableRpcModel model;
  model.alpha = order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

#ifndef RPC_OBS_DISABLED
const obs::SpanRecord* FindSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const obs::SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}
#endif

// The acceptance criterion: one Query() with trace-context produces a
// reconstructable timeline — admission -> dequeue -> execute — visible
// through the JSON exporter.
TEST(TelemetryServeTest, SingleQueryProducesSpanTimeline) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(3, 1)).ok());

  // An explicit nonzero id forces tracing for this query regardless of the
  // process-wide runtime switch (large constant: never collides with the
  // ids NewTraceId hands out).
  const obs::TraceId trace = 0x7e1e5ca1ab1e0001ull;
  QueryOptions options;
  options.trace_id = trace;
  const auto batch = service.Query("d", RandomRows(8, 3, 2), options);
  ASSERT_TRUE(batch.ok());
  // The trace id rides back on the QueryTrace in every build.
  EXPECT_EQ(batch->trace.trace_id, trace);

#ifdef RPC_OBS_DISABLED
  EXPECT_TRUE(obs::CollectTrace(trace).empty());
  GTEST_SKIP() << "span timeline assertions need an obs-enabled build";
#else
  const std::vector<obs::SpanRecord> spans = obs::CollectTrace(trace);
  const obs::SpanRecord* admission = FindSpan(spans, "serve.admission");
  const obs::SpanRecord* queued = FindSpan(spans, "serve.queued");
  const obs::SpanRecord* execute = FindSpan(spans, "serve.execute");
  const obs::SpanRecord* query = FindSpan(spans, "serve.query");
  ASSERT_NE(admission, nullptr);
  ASSERT_NE(queued, nullptr);
  ASSERT_NE(execute, nullptr);
  ASSERT_NE(query, nullptr);

  // Timeline shape: the query envelope opens with admission; the queued
  // wait starts once admitted and hands off to execution; the envelope
  // closes no earlier than the execution it waited for.
  EXPECT_EQ(query->start_ns, admission->start_ns);
  EXPECT_GE(queued->start_ns, admission->start_ns);
  EXPECT_GE(execute->start_ns, queued->start_ns);
  EXPECT_GE(query->end_ns, execute->end_ns);
  for (const obs::SpanRecord* span : {admission, queued, execute, query}) {
    EXPECT_GE(span->end_ns, span->start_ns);
    EXPECT_EQ(span->trace_id, trace);
  }

  // ...and the timeline is visible in the JSON exporter output.
  const std::string json = obs::JsonSnapshot(obs::Registry::Global(),
                                             /*include_spans=*/true);
  EXPECT_NE(json.find("\"name\":\"serve.query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"" + std::to_string(trace) + "\""),
            std::string::npos);
#endif
}

TEST(TelemetryServeTest, CoalescedQueryRecordsGatherWindow) {
#ifdef RPC_OBS_DISABLED
  GTEST_SKIP() << "span assertions need an obs-enabled build";
#else
  RankingService::Options options;
  options.num_threads = 2;
  options.max_coalesce_delay = std::chrono::milliseconds(2);
  options.coalesce_max_rows = 4;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 3)).ok());

  const obs::TraceId trace = 0x7e1e5ca1ab1e0002ull;
  QueryOptions qopts;
  qopts.trace_id = trace;
  // A lone leader: it opens a group, waits out the gather window, and
  // flushes alone — trace.coalesced stays false (no shared ride) but the
  // gather window it paid for is still on its timeline.
  const auto batch = service.Query("d", RandomRows(1, 2, 4), qopts);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->trace.coalesced);

  const std::vector<obs::SpanRecord> spans = obs::CollectTrace(trace);
  const obs::SpanRecord* coalesce = FindSpan(spans, "serve.coalesce");
  ASSERT_NE(coalesce, nullptr);
  EXPECT_GE(coalesce->end_ns, coalesce->start_ns);
  // The gather window sits inside the query envelope.
  const obs::SpanRecord* query = FindSpan(spans, "serve.query");
  ASSERT_NE(query, nullptr);
  EXPECT_GE(coalesce->start_ns, query->start_ns);
#endif
}

TEST(TelemetryServeTest, SlowQueryLogEmitsThroughTheSink) {
  obs::VectorSink sink;
  RankingService::Options options;
  options.telemetry_sink = &sink;
  options.slow_query_threshold = std::chrono::nanoseconds(1);  // everything
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 5)).ok());

  const obs::TraceId trace = 0x7e1e5ca1ab1e0003ull;
  QueryOptions qopts;
  qopts.trace_id = trace;
  ASSERT_TRUE(service.Query("d", RandomRows(4, 2, 6), qopts).ok());

  const auto slow = sink.EventsOfKind("slow_query");
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_NE(slow[0].payload.find("\"dataset\":\"d\""), std::string::npos);
  EXPECT_NE(slow[0].payload.find("\"rows\":4"), std::string::npos);
  EXPECT_NE(
      slow[0].payload.find("\"trace_id\":\"" + std::to_string(trace) + "\""),
      std::string::npos);
#ifndef RPC_OBS_DISABLED
  // The record carries the reconstructed span timeline.
  EXPECT_NE(slow[0].payload.find("\"name\":\"serve.query\""),
            std::string::npos);
#endif

  // A per-query threshold overrides the service default: a huge override
  // suppresses the record.
  QueryOptions quiet;
  quiet.slow_query_threshold = std::chrono::hours(1);
  ASSERT_TRUE(service.Query("d", RandomRows(4, 2, 7), quiet).ok());
  EXPECT_EQ(sink.EventsOfKind("slow_query").size(), 1u);
}

TEST(TelemetryServeTest, PerQueryThresholdEnablesTheLogAlone) {
  obs::VectorSink sink;
  RankingService::Options options;
  options.telemetry_sink = &sink;  // service default threshold stays 0 = off
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 8)).ok());

  ASSERT_TRUE(service.Query("d", RandomRows(4, 2, 9)).ok());
  EXPECT_TRUE(sink.EventsOfKind("slow_query").empty());

  QueryOptions loud;
  loud.slow_query_threshold = std::chrono::nanoseconds(1);
  ASSERT_TRUE(service.Query("d", RandomRows(4, 2, 10), loud).ok());
  EXPECT_EQ(sink.EventsOfKind("slow_query").size(), 1u);
}

TEST(TelemetryServeTest, ServeSeriesAreExported) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 11)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Query("d", RandomRows(8, 2, 12 + i)).ok());
  }
  EXPECT_EQ(service.stats().queries, 5);
  EXPECT_EQ(service.stats().rows, 40);

  const std::string text = obs::PrometheusText();
  EXPECT_NE(text.find("# TYPE rpc_serve_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rpc_serve_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_serve_latency_us_count"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rpc_serve_queue_depth gauge"),
            std::string::npos);
}

}  // namespace
}  // namespace rpc::serve
