#include "baselines/elmap.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "linalg/stats.h"
#include "rank/metrics.h"

namespace rpc::baselines {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(ElmapTest, FitsStraightLineData) {
  // Noise-free diagonal: nodes should align, residual near zero.
  Matrix data(40, 2);
  for (int i = 0; i < 40; ++i) {
    const double t = static_cast<double>(i) / 39.0;
    data(i, 0) = 10.0 * t;
    data(i, 1) = 5.0 * t;
  }
  const auto model = ElmapCurve::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_LT(model->residual_j(), 0.05);
}

TEST(ElmapTest, CapturesCurvedSkeletonBetterThanLine) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 200, .noise_sigma = 0.01, .control_margin = 0.05, .seed = 5});
  ElmapOptions options;
  options.num_nodes = 25;
  const auto model =
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(2), options);
  ASSERT_TRUE(model.ok());
  // Latent-order recovery should be strong on a monotone cloud.
  const Vector scores = model->ScoreRows(sample.data);
  const double tau = rank::KendallTauB(scores, sample.latent);
  EXPECT_GT(tau, 0.9);
}

TEST(ElmapTest, ScoresAreCentred) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 100, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 6});
  const auto model =
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  const Vector scores = model->ScoreRows(sample.data);
  // Mean ~ 0 (Gorban's centred scores): no object is the 0/1 reference.
  EXPECT_NEAR(scores.Sum() / scores.size(), 0.0, 0.05);
}

TEST(ElmapTest, OrientationFlipsWithAlpha) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 100, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 7});
  const auto benefit =
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(2));
  const auto cost_result = Orientation::FromSigns({-1, -1});
  ASSERT_TRUE(cost_result.ok());
  const auto cost = ElmapCurve::Fit(sample.data, *cost_result);
  ASSERT_TRUE(benefit.ok());
  ASSERT_TRUE(cost.ok());
  const Vector s_benefit = benefit->ScoreRows(sample.data);
  const Vector s_cost = cost->ScoreRows(sample.data);
  // Opposite orientations produce opposite orders.
  EXPECT_LT(rank::KendallTauB(s_benefit, s_cost), -0.9);
}

TEST(ElmapTest, NodeCountRespected) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 60, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 8});
  ElmapOptions options;
  options.num_nodes = 12;
  const auto model =
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(2), options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->nodes().rows(), 12);
  EXPECT_EQ(model->ParameterCount().value(), 24);
}

TEST(ElmapTest, StiffChainStaysNearLine) {
  // Huge bending modulus forces an almost-straight chain even on curved
  // data.
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 150, .noise_sigma = 0.01, .control_margin = 0.05, .seed = 9});
  ElmapOptions stiff;
  stiff.mu = 100.0;
  stiff.lambda = 1.0;
  const auto model =
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(2), stiff);
  ASSERT_TRUE(model.ok());
  // Straightness: max second difference of nodes is small.
  const Matrix& nodes = model->nodes();
  for (int i = 1; i + 1 < nodes.rows(); ++i) {
    const Vector second =
        nodes.Row(i + 1) - 2.0 * nodes.Row(i) + nodes.Row(i - 1);
    EXPECT_LT(second.Norm(), 0.01);
  }
}

TEST(ElmapTest, RejectsBadInputs) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_FALSE(ElmapCurve::Fit(Matrix(2, 2), alpha).ok());
  ElmapOptions bad;
  bad.num_nodes = 2;
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = 30, .noise_sigma = 0.01, .control_margin = 0.1,
              .seed = 10});
  EXPECT_FALSE(ElmapCurve::Fit(sample.data, alpha, bad).ok());
  EXPECT_FALSE(
      ElmapCurve::Fit(sample.data, Orientation::AllBenefit(3)).ok());
}

TEST(ElmapTest, SkeletonSamplesInRawSpace) {
  Matrix data(30, 2);
  for (int i = 0; i < 30; ++i) {
    const double t = static_cast<double>(i) / 29.0;
    data(i, 0) = 1000.0 + 500.0 * t;
    data(i, 1) = -3.0 + t;
  }
  const auto model = ElmapCurve::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  const Matrix skeleton = model->SampleSkeletonRaw(10);
  EXPECT_EQ(skeleton.rows(), 11);
  for (int i = 0; i < skeleton.rows(); ++i) {
    EXPECT_GT(skeleton(i, 0), 900.0);
    EXPECT_LT(skeleton(i, 0), 1600.0);
  }
}

}  // namespace
}  // namespace rpc::baselines
