#include "baselines/hastie_stuetzle.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "rank/metrics.h"

namespace rpc::baselines {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(HastieStuetzleTest, RecoversLatentOrderOnMonotoneCloud) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 250, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 61});
  const auto model =
      HastieStuetzleCurve::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Vector scores = model->ScoreRows(sample.data);
  EXPECT_GT(rank::KendallTauB(scores, sample.latent), 0.9);
}

TEST(HastieStuetzleTest, FollowsTheCrescent) {
  // The whole point of [10]: the smoothed conditional mean bends with the
  // cloud where the first PCA cannot.
  const Matrix crescent = data::GenerateCrescent(300, 0.02, 62);
  const auto model =
      HastieStuetzleCurve::Fit(crescent, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  // Mean residual well below the crescent's sagitta (~0.3 in normalised
  // units).
  EXPECT_LT(model->residual_j() / crescent.rows(), 0.01);
}

TEST(HastieStuetzleTest, NonMonotoneOnParabola) {
  // Fig. 2(b): a general principal curve follows the parabola and thus
  // cannot be order-preserving for the cone order.
  const Matrix parabola = data::GenerateParabola(300, 0.02, 63);
  const auto model =
      HastieStuetzleCurve::Fit(parabola, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  const Vector scores = model->ScoreRows(parabola);
  const auto report = rank::CountOrderViolations(
      parabola, scores, Orientation::AllBenefit(2), 1e-9);
  EXPECT_GT(report.violations + report.ties, 0);
}

TEST(HastieStuetzleTest, SmootherBandwidthControlsWiggle) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 200, .noise_sigma = 0.05, .control_margin = 0.1, .seed = 64});
  HastieStuetzleOptions narrow;
  narrow.bandwidth = 0.02;
  HastieStuetzleOptions wide;
  wide.bandwidth = 0.3;
  const auto wiggly = HastieStuetzleCurve::Fit(
      sample.data, Orientation::AllBenefit(2), narrow);
  const auto stiff = HastieStuetzleCurve::Fit(
      sample.data, Orientation::AllBenefit(2), wide);
  ASSERT_TRUE(wiggly.ok());
  ASSERT_TRUE(stiff.ok());
  // The narrow bandwidth hugs the data more closely.
  EXPECT_LT(wiggly->residual_j(), stiff->residual_j());
}

TEST(HastieStuetzleTest, RejectsBadInputs) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_FALSE(HastieStuetzleCurve::Fit(Matrix(3, 2), alpha).ok());
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha,
      {.n = 40, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 65});
  HastieStuetzleOptions bad_nodes;
  bad_nodes.num_nodes = 2;
  EXPECT_FALSE(
      HastieStuetzleCurve::Fit(sample.data, alpha, bad_nodes).ok());
  HastieStuetzleOptions bad_bandwidth;
  bad_bandwidth.bandwidth = 0.0;
  EXPECT_FALSE(
      HastieStuetzleCurve::Fit(sample.data, alpha, bad_bandwidth).ok());
}

TEST(HastieStuetzleTest, NoExplicitParameterSize) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 60, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 66});
  const auto model =
      HastieStuetzleCurve::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->ParameterCount().has_value());
  EXPECT_EQ(model->name(), "HastieStuetzle");
  EXPECT_GT(model->iterations(), 0);
}

}  // namespace
}  // namespace rpc::baselines
