#include "baselines/polyline_geometry.h"

#include <gtest/gtest.h>

namespace rpc::baselines {
namespace {

using linalg::Matrix;
using linalg::Vector;

// L-shaped polyline: (0,0) -> (1,0) -> (1,1).
Matrix LShape() { return Matrix{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}}; }

TEST(PolylineLengthTest, KnownLengths) {
  EXPECT_DOUBLE_EQ(PolylineLength(LShape()), 2.0);
  EXPECT_DOUBLE_EQ(PolylineLength(Matrix{{0.0, 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(PolylineLength(Matrix{{0.0, 0.0}, {3.0, 4.0}}), 5.0);
}

TEST(ProjectOntoPolylineTest, PointOnFirstSegment) {
  const PolylineProjection p =
      ProjectOntoPolyline(LShape(), Vector{0.5, 0.0});
  EXPECT_NEAR(p.t, 0.25, 1e-12);
  EXPECT_NEAR(p.squared_distance, 0.0, 1e-12);
  EXPECT_EQ(p.segment, 0);
}

TEST(ProjectOntoPolylineTest, PointNearSecondSegment) {
  const PolylineProjection p =
      ProjectOntoPolyline(LShape(), Vector{1.2, 0.5});
  EXPECT_EQ(p.segment, 1);
  EXPECT_NEAR(p.t, 0.75, 1e-12);
  EXPECT_NEAR(p.squared_distance, 0.04, 1e-12);
}

TEST(ProjectOntoPolylineTest, ClampsBeyondEnds) {
  EXPECT_NEAR(ProjectOntoPolyline(LShape(), Vector{-1.0, -1.0}).t, 0.0,
              1e-12);
  EXPECT_NEAR(ProjectOntoPolyline(LShape(), Vector{1.0, 2.0}).t, 1.0, 1e-12);
}

TEST(ProjectOntoPolylineTest, CornerEquidistantUsesSupRule) {
  // The point (1 - eps, eps) diagonal from the corner: projections onto the
  // two segments are equally distant; sup rule picks the later one.
  const PolylineProjection p =
      ProjectOntoPolyline(LShape(), Vector{0.9, 0.1});
  EXPECT_EQ(p.segment, 1);
  EXPECT_NEAR(p.t, 0.55, 1e-9);
}

TEST(ProjectOntoPolylineTest, SingleNodePolyline) {
  const Matrix point{{0.5, 0.5}};
  const PolylineProjection p = ProjectOntoPolyline(point, Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(p.t, 0.0);
  EXPECT_NEAR(p.squared_distance, 0.5, 1e-12);
}

TEST(SamplePolylineTest, UniformArcLength) {
  const Matrix samples = SamplePolyline(LShape(), 4);
  ASSERT_EQ(samples.rows(), 5);
  EXPECT_TRUE(ApproxEqual(samples.Row(0), Vector{0.0, 0.0}, 1e-12));
  EXPECT_TRUE(ApproxEqual(samples.Row(1), Vector{0.5, 0.0}, 1e-12));
  EXPECT_TRUE(ApproxEqual(samples.Row(2), Vector{1.0, 0.0}, 1e-12));
  EXPECT_TRUE(ApproxEqual(samples.Row(3), Vector{1.0, 0.5}, 1e-12));
  EXPECT_TRUE(ApproxEqual(samples.Row(4), Vector{1.0, 1.0}, 1e-12));
}

TEST(PolylineResidualTest, SumsSquaredDistances) {
  const Matrix data{{0.5, 0.1}, {1.1, 0.5}};
  // Distances: 0.1 to segment 1 and 0.1 to segment 2.
  EXPECT_NEAR(PolylineResidual(LShape(), data), 0.02, 1e-12);
}

}  // namespace
}  // namespace rpc::baselines
