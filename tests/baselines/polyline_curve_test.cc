#include "baselines/polyline_curve.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "rank/metrics.h"

namespace rpc::baselines {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(PolylineCurveTest, RecoversLatentOrderOnMonotoneCloud) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 200, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 21});
  const auto model =
      PolylineCurve::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Vector scores = model->ScoreRows(sample.data);
  EXPECT_GT(rank::KendallTauB(scores, sample.latent), 0.85);
}

TEST(PolylineCurveTest, ScoresWithinUnitInterval) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(3),
      {.n = 80, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 22});
  const auto model =
      PolylineCurve::Fit(sample.data, Orientation::AllBenefit(3));
  ASSERT_TRUE(model.ok());
  const Vector scores = model->ScoreRows(sample.data);
  for (int i = 0; i < scores.size(); ++i) {
    EXPECT_GE(scores[i], 0.0);
    EXPECT_LE(scores[i], 1.0);
  }
}

TEST(PolylineCurveTest, VertexCountRespected) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 60, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 23});
  PolylineCurveOptions options;
  options.num_vertices = 5;
  const auto model = PolylineCurve::Fit(
      sample.data, Orientation::AllBenefit(2), options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->vertices().rows(), 5);
}

TEST(PolylineCurveTest, FlatSegmentsTieDistinctPoints) {
  // A cloud with a dense horizontal band: the fitted polyline develops a
  // near-horizontal segment, and points differing only in x2 project to
  // (nearly) the same parameter — the Fig. 2(a) strict-monotonicity
  // failure. We assert the model *can* produce ties in score while RPC by
  // construction cannot (covered in core tests).
  Matrix data(60, 2);
  for (int i = 0; i < 60; ++i) {
    const double t = static_cast<double>(i) / 59.0;
    data(i, 0) = t;
    data(i, 1) = t < 0.5 ? 0.0 : (t - 0.5) * 2.0;  // flat then rising
  }
  const auto model =
      PolylineCurve::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  // Two points above the flat part with different x2.
  const double s_low = model->Score(Vector{0.25, 0.02});
  const double s_high = model->Score(Vector{0.25, 0.10});
  EXPECT_NEAR(s_low, s_high, 5e-3);  // projected to (almost) the same spot
}

TEST(PolylineCurveTest, RejectsBadInputs) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_FALSE(PolylineCurve::Fit(Matrix(2, 2), alpha).ok());
  PolylineCurveOptions bad;
  bad.num_vertices = 1;
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = 30, .noise_sigma = 0.01, .control_margin = 0.1,
              .seed = 24});
  EXPECT_FALSE(PolylineCurve::Fit(sample.data, alpha, bad).ok());
}

TEST(PolylineCurveTest, SkeletonEndpointsSpanData) {
  Matrix data(50, 2);
  for (int i = 0; i < 50; ++i) {
    const double t = static_cast<double>(i) / 49.0;
    data(i, 0) = t;
    data(i, 1) = t * t;
  }
  const auto model =
      PolylineCurve::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(model.ok());
  const Matrix skeleton = model->SampleSkeletonRaw(20);
  EXPECT_EQ(skeleton.rows(), 21);
  // Skeleton stays inside a loose bounding box of the data.
  for (int i = 0; i < skeleton.rows(); ++i) {
    EXPECT_GT(skeleton(i, 0), -0.3);
    EXPECT_LT(skeleton(i, 0), 1.3);
  }
}

}  // namespace
}  // namespace rpc::baselines
