#include "data/dataset.h"

#include <gtest/gtest.h>

namespace rpc::data {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(DatasetTest, FromMatrixBasics) {
  const auto ds = Dataset::FromMatrix(Matrix{{1.0, 2.0}, {3.0, 4.0}},
                                      {"a", "b"}, {"r0", "r1"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 2);
  EXPECT_EQ(ds->num_attributes(), 2);
  EXPECT_DOUBLE_EQ(ds->value(1, 0), 3.0);
  EXPECT_EQ(ds->label(0), "r0");
  EXPECT_EQ(ds->attribute_name(1), "b");
  EXPECT_FALSE(ds->IsMissing(0, 0));
}

TEST(DatasetTest, DefaultNamesAndLabels) {
  const auto ds = Dataset::FromMatrix(Matrix{{1.0}}, {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->attribute_name(0), "v0");
  EXPECT_EQ(ds->label(0), "obj0");
}

TEST(DatasetTest, FromMatrixRejectsMismatchedCounts) {
  EXPECT_FALSE(Dataset::FromMatrix(Matrix{{1.0, 2.0}}, {"only_one"}, {}).ok());
  EXPECT_FALSE(
      Dataset::FromMatrix(Matrix{{1.0}}, {}, {"too", "many"}).ok());
}

TEST(DatasetTest, AppendRowAndMissing) {
  Dataset ds;
  ds.AppendRow("x", Vector{1.0, 2.0});
  ds.AppendRow("y", Vector{3.0, 4.0}, {true, false});
  EXPECT_EQ(ds.num_objects(), 2);
  EXPECT_TRUE(ds.IsMissing(1, 0));
  EXPECT_FALSE(ds.IsMissing(1, 1));
  EXPECT_TRUE(ds.RowComplete(0));
  EXPECT_FALSE(ds.RowComplete(1));
  EXPECT_EQ(ds.CountIncompleteRows(), 1);
}

TEST(DatasetTest, FilterCompleteRows) {
  Dataset ds;
  ds.AppendRow("keep1", Vector{1.0, 2.0});
  ds.AppendRow("drop", Vector{0.0, 0.0}, {false, true});
  ds.AppendRow("keep2", Vector{5.0, 6.0});
  const Dataset filtered = ds.FilterCompleteRows();
  EXPECT_EQ(filtered.num_objects(), 2);
  EXPECT_EQ(filtered.label(0), "keep1");
  EXPECT_EQ(filtered.label(1), "keep2");
  EXPECT_DOUBLE_EQ(filtered.value(1, 1), 6.0);
  EXPECT_EQ(filtered.CountIncompleteRows(), 0);
}

TEST(DatasetTest, AttributeAndLabelLookup) {
  const auto ds = Dataset::FromMatrix(Matrix{{1.0, 2.0}}, {"gdp", "leb"},
                                      {"norway"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->AttributeIndex("leb").value(), 1);
  EXPECT_FALSE(ds->AttributeIndex("nope").ok());
  EXPECT_EQ(ds->LabelIndex("norway").value(), 0);
  EXPECT_FALSE(ds->LabelIndex("sweden").ok());
}

TEST(DatasetTest, SelectAttributes) {
  const auto ds = Dataset::FromMatrix(
      Matrix{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}, {"a", "b", "c"}, {});
  ASSERT_TRUE(ds.ok());
  const auto selected = ds->SelectAttributes({2, 0});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_attributes(), 2);
  EXPECT_EQ(selected->attribute_name(0), "c");
  EXPECT_DOUBLE_EQ(selected->value(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(selected->value(1, 1), 4.0);
  EXPECT_FALSE(ds->SelectAttributes({3}).ok());
}

TEST(DatasetTest, SelectAttributesKeepsMissingFlags) {
  Dataset ds;
  ds.AppendRow("x", Vector{1.0, 2.0, 3.0}, {false, true, false});
  const auto selected = ds.SelectAttributes({1, 2});
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->IsMissing(0, 0));
  EXPECT_FALSE(selected->IsMissing(0, 1));
}

TEST(DatasetTest, SetAttributeNames) {
  Dataset ds;
  ds.AppendRow("x", Vector{1.0, 2.0});
  EXPECT_TRUE(ds.SetAttributeNames({"p", "q"}).ok());
  EXPECT_EQ(ds.attribute_name(0), "p");
  EXPECT_FALSE(ds.SetAttributeNames({"only_one"}).ok());
}

}  // namespace
}  // namespace rpc::data
