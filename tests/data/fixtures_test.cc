#include "data/fixtures.h"

#include <gtest/gtest.h>

#include "order/orientation.h"

namespace rpc::data {
namespace {

TEST(FixturesTest, Table1Shapes) {
  EXPECT_EQ(Table1a().size(), 3u);
  EXPECT_EQ(Table1b().size(), 3u);
  const linalg::Matrix a = Table1aMatrix();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.30);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.55);
}

TEST(FixturesTest, Table1PublishedOrdersAreConsistentWithScores) {
  // Within each table, published RPC orders must sort the published scores
  // ascending.
  for (const auto& rows : {Table1a(), Table1b()}) {
    for (const auto& lhs : rows) {
      for (const auto& rhs : rows) {
        if (lhs.rpc_order < rhs.rpc_order) {
          EXPECT_LT(lhs.rpc_score, rhs.rpc_score);
        }
      }
    }
  }
}

TEST(FixturesTest, Table2AnchorsOrderedByPublishedRpcScore) {
  const auto& anchors = Table2Anchors();
  EXPECT_EQ(anchors.size(), 15u);
  for (size_t i = 0; i + 1 < anchors.size(); ++i) {
    EXPECT_LT(anchors[i].rpc_order, anchors[i + 1].rpc_order);
    EXPECT_GE(anchors[i].rpc_score, anchors[i + 1].rpc_score);
  }
  EXPECT_DOUBLE_EQ(anchors.front().rpc_score, 1.0);   // Luxembourg
  EXPECT_DOUBLE_EQ(anchors.back().rpc_score, 0.0);    // Swaziland
}

TEST(FixturesTest, Table2ElmapAndRpcMostlyAgree) {
  // The two methods give similar but not identical mid-list orders
  // (e.g. Vanuatu/Suriname swap) — the fixtures must reflect the paper.
  const auto& anchors = Table2Anchors();
  int disagreements = 0;
  for (size_t i = 0; i < anchors.size(); ++i) {
    if (anchors[i].elmap_order != anchors[i].rpc_order) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
  EXPECT_LT(disagreements, 8);
}

TEST(FixturesTest, Table2TopCountriesDominateBottom) {
  // Luxembourg strictly precedes Swaziland... actually Swaziland precedes
  // Luxembourg in the cone order with alpha = (+1,+1,-1,-1).
  const auto alpha = order::Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto& anchors = Table2Anchors();
  const auto& lux = anchors.front();
  const auto& swz = anchors.back();
  const linalg::Vector lux_v{lux.gdp, lux.leb, lux.imr, lux.tb};
  const linalg::Vector swz_v{swz.gdp, swz.leb, swz.imr, swz.tb};
  EXPECT_TRUE(alpha->StrictlyPrecedes(swz_v, lux_v));
}

TEST(FixturesTest, Table2ControlPointShape) {
  const linalg::Matrix p = Table2ControlPoints();
  EXPECT_EQ(p.rows(), 4);  // p0..p3
  EXPECT_EQ(p.cols(), 4);  // four indicators
  // The paper notes p0 and p1 overlap for IMR and Tuberculosis.
  EXPECT_DOUBLE_EQ(p(0, 2), p(1, 2));
  EXPECT_DOUBLE_EQ(p(0, 3), p(1, 3));
}

TEST(FixturesTest, Table3AnchorShapesAndTkdeSmcaInversion) {
  const auto& anchors = Table3Anchors();
  EXPECT_EQ(anchors.size(), 10u);
  const JournalAnchor* tkde = nullptr;
  const JournalAnchor* smca = nullptr;
  for (const auto& a : anchors) {
    if (std::string(a.name) == "IEEE T KNOWL DATA EN") tkde = &a;
    if (std::string(a.name) == "IEEE T SYST MAN CY A") smca = &a;
  }
  ASSERT_NE(tkde, nullptr);
  ASSERT_NE(smca, nullptr);
  // Section 6.2.2: SMCA has the higher IF yet TKDE ranks above it thanks to
  // its higher Article Influence score.
  EXPECT_GT(smca->impact_factor, tkde->impact_factor);
  EXPECT_GT(tkde->influence, smca->influence);
  EXPECT_LT(tkde->rpc_order, smca->rpc_order);
}

TEST(FixturesTest, Table3ScoresSortWithOrders) {
  const auto& anchors = Table3Anchors();
  for (size_t i = 0; i + 1 < anchors.size(); ++i) {
    EXPECT_LT(anchors[i].rpc_order, anchors[i + 1].rpc_order);
    EXPECT_GT(anchors[i].rpc_score, anchors[i + 1].rpc_score);
  }
}

TEST(FixturesTest, PaperExplainedVarianceConstants) {
  EXPECT_GT(kPaperRpcExplainedVariance, kPaperElmapExplainedVariance);
}

}  // namespace
}  // namespace rpc::data
