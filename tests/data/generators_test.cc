#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/stats.h"
#include "order/monotonicity.h"

namespace rpc::data {
namespace {

using linalg::Matrix;
using order::Orientation;

TEST(LatentCurveTest, ShapesAndDeterminism) {
  LatentCurveOptions options;
  options.n = 50;
  const auto alpha = Orientation::FromSigns({1, -1, 1});
  ASSERT_TRUE(alpha.ok());
  const LatentCurveSample a = GenerateLatentCurveData(*alpha, options);
  const LatentCurveSample b = GenerateLatentCurveData(*alpha, options);
  EXPECT_EQ(a.data.rows(), 50);
  EXPECT_EQ(a.data.cols(), 3);
  EXPECT_EQ(a.latent.size(), 50);
  EXPECT_TRUE(ApproxEqual(a.data, b.data, 0.0));  // same seed -> identical
}

TEST(LatentCurveTest, TruthCurveIsStrictlyMonotone) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    LatentCurveOptions options;
    options.seed = seed;
    const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
    ASSERT_TRUE(alpha.ok());
    const LatentCurveSample sample = GenerateLatentCurveData(*alpha, options);
    const auto report =
        order::CheckCurveMonotonicity(sample.truth, *alpha, 256);
    EXPECT_TRUE(report.strictly_monotone) << "seed " << seed;
  }
}

TEST(LatentCurveTest, NoiseFreePointsLieOnCurve) {
  LatentCurveOptions options;
  options.noise_sigma = 0.0;
  options.n = 30;
  const Orientation alpha = Orientation::AllBenefit(2);
  const LatentCurveSample sample = GenerateLatentCurveData(alpha, options);
  for (int i = 0; i < sample.data.rows(); ++i) {
    const linalg::Vector on_curve = sample.truth.Evaluate(sample.latent[i]);
    EXPECT_TRUE(ApproxEqual(sample.data.Row(i), on_curve, 1e-12));
  }
}

TEST(CountryGeneratorTest, SizeAndAnchors) {
  const Dataset ds = GenerateCountryData(171, 7, true);
  EXPECT_EQ(ds.num_objects(), 171);
  EXPECT_EQ(ds.num_attributes(), 4);
  EXPECT_EQ(ds.attribute_name(0), "GDP");
  EXPECT_TRUE(ds.LabelIndex("Luxembourg").ok());
  EXPECT_TRUE(ds.LabelIndex("Swaziland").ok());
  const int lux = ds.LabelIndex("Luxembourg").value();
  EXPECT_DOUBLE_EQ(ds.value(lux, 0), 70014.0);
  EXPECT_EQ(ds.CountIncompleteRows(), 0);
}

TEST(CountryGeneratorTest, PlausibleRangesAndTrends) {
  const Dataset ds = GenerateCountryData(171, 7, true);
  const Matrix& values = ds.values();
  for (int i = 0; i < values.rows(); ++i) {
    EXPECT_GT(values(i, 0), 100.0);     // GDP
    EXPECT_LT(values(i, 0), 200000.0);
    EXPECT_GT(values(i, 1), 35.0);      // LEB
    EXPECT_LT(values(i, 1), 85.0);
    EXPECT_GE(values(i, 2), 2.0);       // IMR
    EXPECT_GE(values(i, 3), 2.0);       // TB
  }
  // Health indicators anticorrelate with wealth (the Fig. 7 structure):
  // use log-GDP as the development proxy.
  linalg::Vector log_gdp(values.rows());
  for (int i = 0; i < values.rows(); ++i) {
    log_gdp[i] = std::log(values(i, 0));
  }
  EXPECT_GT(linalg::PearsonCorrelation(log_gdp, values.Column(1)), 0.6);
  EXPECT_LT(linalg::PearsonCorrelation(log_gdp, values.Column(2)), -0.5);
  EXPECT_LT(linalg::PearsonCorrelation(log_gdp, values.Column(3)), -0.4);
}

TEST(CountryGeneratorTest, WithoutAnchors) {
  const Dataset ds = GenerateCountryData(50, 9, false);
  EXPECT_EQ(ds.num_objects(), 50);
  EXPECT_FALSE(ds.LabelIndex("Luxembourg").ok());
}

TEST(JournalGeneratorTest, MissingRowsMatchSpec) {
  const Dataset ds = GenerateJournalData(451, 58, 11, true);
  EXPECT_EQ(ds.num_objects(), 451);
  EXPECT_EQ(ds.num_attributes(), 5);
  EXPECT_EQ(ds.CountIncompleteRows(), 58);
  EXPECT_EQ(ds.FilterCompleteRows().num_objects(), 393);
}

TEST(JournalGeneratorTest, AnchorsPresentAndComplete) {
  const Dataset ds = GenerateJournalData(451, 58, 11, true);
  const auto tkde = ds.LabelIndex("IEEE T KNOWL DATA EN");
  ASSERT_TRUE(tkde.ok());
  EXPECT_TRUE(ds.RowComplete(tkde.value()));
  EXPECT_DOUBLE_EQ(ds.value(tkde.value(), 0), 1.892);
}

TEST(JournalGeneratorTest, CorrelationStructure) {
  const Dataset complete =
      GenerateJournalData(451, 58, 11, false).FilterCompleteRows();
  const Matrix& v = complete.values();
  // IF and 5IF strongly correlated; Eigenfactor much less so (Section
  // 6.2.2's observation).
  const double if_5if =
      linalg::PearsonCorrelation(v.Column(0), v.Column(1));
  const double if_ef =
      linalg::PearsonCorrelation(v.Column(0), v.Column(3));
  EXPECT_GT(if_5if, 0.9);
  EXPECT_LT(if_ef, 0.6);
}

TEST(CrescentGeneratorTest, ShapeBounds) {
  const Matrix data = GenerateCrescent(200, 0.02, 3);
  EXPECT_EQ(data.rows(), 200);
  EXPECT_EQ(data.cols(), 2);
  for (int i = 0; i < data.rows(); ++i) {
    EXPECT_GT(data(i, 0), -0.2);
    EXPECT_LT(data(i, 0), 1.2);
  }
}

TEST(ParabolaGeneratorTest, NonMonotoneShape) {
  const Matrix data = GenerateParabola(500, 0.01, 4);
  // y values near x=0.5 exceed y values near the ends.
  double y_mid = 0.0, y_end = 0.0;
  int n_mid = 0, n_end = 0;
  for (int i = 0; i < data.rows(); ++i) {
    if (std::fabs(data(i, 0) - 0.5) < 0.1) {
      y_mid += data(i, 1);
      ++n_mid;
    } else if (data(i, 0) < 0.1 || data(i, 0) > 0.9) {
      y_end += data(i, 1);
      ++n_end;
    }
  }
  ASSERT_GT(n_mid, 0);
  ASSERT_GT(n_end, 0);
  EXPECT_GT(y_mid / n_mid, y_end / n_end + 0.5);
}

}  // namespace
}  // namespace rpc::data
