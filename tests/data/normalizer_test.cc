#include "data/normalizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::data {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(NormalizerTest, MapsExtremesToUnitInterval) {
  const Matrix data{{10.0, -2.0}, {20.0, 0.0}, {30.0, 2.0}};
  const auto norm = Normalizer::Fit(data);
  ASSERT_TRUE(norm.ok());
  const Matrix transformed = norm->Transform(data);
  EXPECT_DOUBLE_EQ(transformed(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(transformed(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(transformed(1, 1), 0.5);
}

TEST(NormalizerTest, InverseRoundTrip) {
  Rng rng(2);
  Matrix data(20, 3);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 3; ++j) data(i, j) = rng.Uniform(-100.0, 100.0);
  }
  const auto norm = Normalizer::Fit(data);
  ASSERT_TRUE(norm.ok());
  const Matrix round = norm->InverseTransform(norm->Transform(data));
  EXPECT_TRUE(ApproxEqual(round, data, 1e-9));
}

TEST(NormalizerTest, VectorTransform) {
  const Matrix data{{0.0, 0.0}, {10.0, 100.0}};
  const auto norm = Normalizer::Fit(data);
  ASSERT_TRUE(norm.ok());
  const Vector v = norm->Transform(Vector{5.0, 25.0});
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 0.25);
  const Vector back = norm->InverseTransform(v);
  EXPECT_DOUBLE_EQ(back[0], 5.0);
  EXPECT_DOUBLE_EQ(back[1], 25.0);
}

TEST(NormalizerTest, RejectsConstantColumn) {
  const Matrix data{{1.0, 5.0}, {2.0, 5.0}};
  const auto norm = Normalizer::Fit(data);
  EXPECT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, RejectsTooFewRows) {
  EXPECT_FALSE(Normalizer::Fit(Matrix{{1.0}}).ok());
}

TEST(NormalizerTest, OutOfSamplePointsAllowedOutsideUnit) {
  // Transform is affine, so unseen extremes land outside [0,1] — callers
  // (the learner) decide how to treat them.
  const Matrix data{{0.0}, {10.0}};
  const auto norm = Normalizer::Fit(data);
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->Transform(Vector{20.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(norm->Transform(Vector{-10.0})[0], -1.0);
}

TEST(NormalizerTest, OrderPreservedPerCoordinate) {
  // Eq. (29) must preserve the cone order: monotone map per coordinate.
  const Matrix data{{3.0, 30.0}, {1.0, 10.0}, {2.0, 20.0}};
  const auto norm = Normalizer::Fit(data);
  ASSERT_TRUE(norm.ok());
  const Matrix t = norm->Transform(data);
  EXPECT_GT(t(0, 0), t(2, 0));
  EXPECT_GT(t(2, 0), t(1, 0));
  EXPECT_GT(t(0, 1), t(2, 1));
}

}  // namespace
}  // namespace rpc::data
