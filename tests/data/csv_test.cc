#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace rpc::data {
namespace {

TEST(CsvTest, ParsesHeaderAndLabels) {
  const auto ds = ParseCsv("name,gdp,leb\nNorway,47551,80.29\nIraq,3200,68.5\n");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_objects(), 2);
  EXPECT_EQ(ds->num_attributes(), 2);
  EXPECT_EQ(ds->attribute_name(0), "gdp");
  EXPECT_EQ(ds->label(1), "Iraq");
  EXPECT_DOUBLE_EQ(ds->value(0, 1), 80.29);
}

TEST(CsvTest, NoHeaderNoLabels) {
  CsvOptions options;
  options.has_header = false;
  options.first_column_labels = false;
  const auto ds = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 2);
  EXPECT_DOUBLE_EQ(ds->value(1, 0), 3.0);
  EXPECT_EQ(ds->label(0), "obj0");
}

TEST(CsvTest, MissingValueTokens) {
  const auto ds =
      ParseCsv("name,a,b\nx,1,\ny,NA,2\nz,NaN,?\nw,1,2\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->IsMissing(0, 1));
  EXPECT_TRUE(ds->IsMissing(1, 0));
  EXPECT_TRUE(ds->IsMissing(2, 0));
  EXPECT_TRUE(ds->IsMissing(2, 1));
  EXPECT_EQ(ds->CountIncompleteRows(), 3);
  EXPECT_EQ(ds->FilterCompleteRows().num_objects(), 1);
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  const auto ds = ParseCsv(
      "name,v\n\"City, The\",3\n\"She said \"\"hi\"\"\",4\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->label(0), "City, The");
  EXPECT_EQ(ds->label(1), "She said \"hi\"");
}

TEST(CsvTest, WindowsLineEndings) {
  const auto ds = ParseCsv("name,v\r\nx,1\r\ny,2\r\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 2);
}

TEST(CsvTest, TabDelimiter) {
  CsvOptions options;
  options.delimiter = '\t';
  const auto ds = ParseCsv("name\tv\nx\t1\n", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->value(0, 0), 1.0);
}

TEST(CsvTest, RejectsNonNumericCell) {
  const auto ds = ParseCsv("name,v\nx,hello\n");
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kDataLoss);
}

TEST(CsvTest, RejectsRaggedRows) {
  const auto ds = ParseCsv("name,a,b\nx,1,2\ny,3\n");
  EXPECT_FALSE(ds.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("\n\n").ok());
}

TEST(CsvTest, RoundTripThroughString) {
  Dataset ds;
  ds.AppendRow("with, comma", linalg::Vector{1.5, 2.5});
  ds.AppendRow("plain", linalg::Vector{0.0, -3.0}, {false, true});
  ASSERT_TRUE(ds.SetAttributeNames({"a", "b"}).ok());
  const std::string text = WriteCsvString(ds);
  const auto round = ParseCsv(text);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->num_objects(), 2);
  EXPECT_EQ(round->label(0), "with, comma");
  EXPECT_DOUBLE_EQ(round->value(0, 1), 2.5);
  EXPECT_TRUE(round->IsMissing(1, 1));
}

TEST(CsvTest, FileRoundTrip) {
  Dataset ds;
  ds.AppendRow("x", linalg::Vector{42.0});
  const std::string path = testing::TempDir() + "/rpc_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(ds, path).ok());
  const auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(read->value(0, 0), 42.0);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  const auto ds = ReadCsvFile("/nonexistent/definitely_not_here.csv");
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rpc::data
