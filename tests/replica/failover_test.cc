// The replication tier's acceptance criterion, as a property test over
// the transport fault matrix: under drop / duplicate / reorder / delay /
// truncate (and all of them at once), a standby fed through the faulty
// link converges bit-identically to the primary; when the primary dies,
// the standby promotes behind a durable epoch fence, continues as primary
// producing exactly the states the dead primary would have produced, the
// deposed lineage is permanently fenced, and the surviving witness
// re-attaches to the new lineage and adopts its epoch durably.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "replica/epoch.h"
#include "replica/replication.h"
#include "replica/transport.h"
#include "replica/wire.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

namespace rpc::replica {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;
using stream::StreamingRanker;
using stream::StreamingRankerOptions;

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Matrix RawFixture(const Orientation& alpha, int n, uint64_t seed) {
  return data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_failover_") + tag + "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

StreamingRankerOptions SerialOptions(const std::string& dir) {
  StreamingRankerOptions options;
  options.num_threads = 1;
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 42;
  options.durability.dir = dir;
  options.durability.segment_bytes = 1 << 10;
  options.durability.snapshot_every_events = 8;
  return options;
}

ReplicaApplierOptions ApplierOptions(const std::string& dir) {
  ReplicaApplierOptions options;
  options.dir = dir;
  options.d = 3;
  options.segment_bytes = 1 << 10;
  options.request_timeout_seconds = 0.02;  // fail fast, retry fast
  options.retry.initial_backoff_seconds = 0.001;
  options.retry.max_backoff_seconds = 0.01;
  options.retry.jitter_fraction = 0.0;
  options.retry.max_attempts = 0;        // unlimited attempts...
  options.retry.deadline_seconds = 60.0;  // ...bounded by wall clock
  options.sleep = [](double) {};
  return options;
}

void ExpectSnapshotsBitIdentical(const StreamingRanker::Snapshot& got,
                                 const StreamingRanker::Snapshot& want,
                                 const char* where) {
  EXPECT_EQ(got.version, want.version) << where;
  EXPECT_EQ(got.model.Serialize(), want.model.Serialize()) << where;
  EXPECT_EQ(got.row_ids, want.row_ids) << where;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << where;
  for (int i = 0; i < got.scores.size(); ++i) {
    EXPECT_TRUE(BitEqual(got.scores[i], want.scores[i]))
        << where << ": score " << i;
  }
  ASSERT_EQ(got.live_mins.size(), want.live_mins.size()) << where;
  for (int j = 0; j < got.live_mins.size(); ++j) {
    EXPECT_TRUE(BitEqual(got.live_mins[j], want.live_mins[j]))
        << where << ": min " << j;
    EXPECT_TRUE(BitEqual(got.live_maxs[j], want.live_maxs[j]))
        << where << ": max " << j;
  }
}

class ServeThread {
 public:
  explicit ServeThread(ReplicationSource* source)
      : thread_([source] { (void)source->Serve(); }) {}
  ~ServeThread() {
    if (thread_.joinable()) thread_.join();
  }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

/// Identical deterministic write load, applied to whichever ranker is
/// primary at the time — the crashed/uncrashed comparison depends on both
/// sides seeing byte-for-byte the same ops.
void DriveOps(StreamingRanker* ranker, const Matrix& raw, int from,
              int count) {
  for (int i = from; i < from + count; ++i) {
    Vector row = raw.Row(i % raw.rows());
    for (int j = 0; j < row.size(); ++j) row[j] += 0.01 * (i + 1);
    ASSERT_TRUE(ranker->Append(row).ok());
  }
}

struct FailCase {
  const char* name;
  FaultPlan plan;  // applied to BOTH directions of the standby's link
};

class FailoverTest : public ::testing::TestWithParam<FailCase> {};

TEST_P(FailoverTest, KillPromoteFenceAndReattachStaysBitIdentical) {
  const FaultPlan base_plan = GetParam().plan;
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const Matrix probe = RawFixture(alpha, 20, 8);
  const std::string p_dir = MakeTempDir("p");
  const std::string a_dir = MakeTempDir("a");
  const std::string w_dir = MakeTempDir("w");

  // P: the original primary. A: the promotion candidate, fed through the
  // faulty link. W: a witness standby on a clean link — its state is the
  // ground truth for "what a correctly replicated follower holds".
  serve::RankingService p_service;
  StreamingRanker primary(&p_service, "rep", SerialOptions(p_dir));
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DriveOps(&primary, raw, 0, 18);
  ASSERT_TRUE(primary.ForceRefresh().ok());
  ASSERT_TRUE(primary.Flush().ok());

  LinkPair pair_a = MakeLoopbackPair();
  FaultPlan plan = base_plan;
  plan.seed = base_plan.seed + 1;
  auto a_standby_link = WrapWithFaults(std::move(pair_a.standby), plan);
  plan.seed = base_plan.seed + 2;
  auto a_primary_link = WrapWithFaults(std::move(pair_a.primary), plan);
  LinkPair pair_w = MakeLoopbackPair();

  ReplicationSourceOptions source_options;
  source_options.dir = p_dir;
  source_options.d = 3;
  source_options.max_batch_records = 4;  // several batches per catch-up
  ReplicationSource source_a(
      a_primary_link.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ReplicationSource source_w(
      pair_w.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving_a(&source_a);
  ServeThread serving_w(&source_w);

  serve::RankingService a_service;
  StreamingRanker candidate(&a_service, "rep", SerialOptions(a_dir));
  ReplicaApplier applier_a(&candidate, a_standby_link.get(),
                           ApplierOptions(a_dir));
  StreamingRanker witness(nullptr, "rep", SerialOptions(w_dir));
  ReplicaApplier applier_w(&witness, pair_w.standby.get(),
                           ApplierOptions(w_dir));
  ASSERT_TRUE(applier_a.Init().ok());
  ASSERT_TRUE(applier_w.Init().ok());

  // Catch both up twice with live writes in between: the faulty link must
  // deliver the same replicated truth as the clean one, at every acked
  // offset — bit for bit.
  for (int round = 0; round < 2; ++round) {
    const std::uint64_t tip = primary.wal_synced_seq();
    ASSERT_TRUE(applier_a.CatchUpTo(tip).ok()) << GetParam().name;
    ASSERT_TRUE(applier_w.CatchUpTo(tip).ok());
    EXPECT_EQ(applier_a.durable_seq(), tip);
    EXPECT_EQ(applier_w.durable_seq(), tip);
    ExpectSnapshotsBitIdentical(candidate.snapshot(), primary.snapshot(),
                                "candidate vs primary");
    ExpectSnapshotsBitIdentical(candidate.snapshot(), witness.snapshot(),
                                "candidate vs witness");
    if (round == 0) {
      DriveOps(&primary, raw, 18, 8);
      ASSERT_TRUE(primary.ForceRefresh().ok());
      ASSERT_TRUE(primary.Flush().ok());
    }
  }
  const auto a_version = a_service.DatasetVersion("rep");
  const auto p_version = p_service.DatasetVersion("rep");
  ASSERT_TRUE(a_version.ok() && p_version.ok());
  EXPECT_EQ(*a_version, *p_version);

  // --- The primary dies. ---
  // A's feed goes dark; its link is torn down (Serve() on the source side
  // exits once the link closes).
  a_standby_link->Close();
  serving_a.Join();
  EXPECT_TRUE(candidate.is_follower());

  // Fenced promotion: epoch 2 lands on A's disk before the ranker takes
  // over, so even a crash mid-promotion leaves the fence standing.
  ASSERT_TRUE(applier_a.Promote().ok());
  EXPECT_EQ(applier_a.epoch(), 2u);
  {
    const auto persisted = LoadEpoch(a_dir);
    ASSERT_TRUE(persisted.ok());
    EXPECT_EQ(*persisted, 2u);
  }
  EXPECT_FALSE(candidate.is_follower());

  // The deposed primary is fenced the instant the new lineage speaks to
  // it: a single epoch-2 request permanently stops its source.
  Message probe_request;
  probe_request.type = MessageType::kCatchUpRequest;
  probe_request.epoch = 2;
  probe_request.a = applier_w.durable_seq();
  probe_request.b = 1;
  ASSERT_TRUE(pair_w.standby->Send(EncodeMessage(probe_request)).ok());
  const auto fenced_reply = pair_w.standby->Receive(1.0);
  ASSERT_TRUE(fenced_reply.ok());
  const auto fenced = DecodeMessage(*fenced_reply);
  ASSERT_TRUE(fenced.ok());
  EXPECT_EQ(fenced->type, MessageType::kFenced);
  EXPECT_EQ(fenced->a, 2u);
  serving_w.Join();  // Serve() returned kAborted: fenced is terminal
  EXPECT_TRUE(source_w.fenced());

  // The promoted candidate continues the write history. The dead primary's
  // ranker object doubles as the uncrashed reference replica: feeding both
  // the identical suffix must produce bit-identical states — promotion
  // lost nothing and changed nothing.
  DriveOps(&candidate, raw, 26, 8);
  DriveOps(&primary, raw, 26, 8);
  ASSERT_TRUE(candidate.ForceRefresh().ok());
  ASSERT_TRUE(primary.ForceRefresh().ok());
  ASSERT_TRUE(candidate.Flush().ok());
  ASSERT_TRUE(primary.Flush().ok());
  ExpectSnapshotsBitIdentical(candidate.snapshot(), primary.snapshot(),
                              "promoted vs never-crashed");
  {
    const auto got = a_service.ScoreBatch("rep", probe);
    const auto want = p_service.ScoreBatch("rep", probe);
    ASSERT_TRUE(got.ok() && want.ok());
    for (int i = 0; i < probe.rows(); ++i) {
      EXPECT_TRUE(BitEqual(got->scores[i], want->scores[i])) << "probe " << i;
    }
  }

  // The witness re-attaches to the new lineage (a restart, as after any
  // feed loss): it resumes from its own durable offset, adopts epoch 2
  // durably, and converges on the new primary — the replication chain
  // survives the failover end to end.
  witness.Stop();
  {
    LinkPair pair2 = MakeLoopbackPair();
    ReplicationSourceOptions new_source_options;
    new_source_options.dir = a_dir;
    new_source_options.d = 3;
    new_source_options.epoch = 2;
    new_source_options.max_batch_records = 4;
    ReplicationSource source2(
        pair2.primary.get(), [&] { return candidate.wal_synced_seq(); },
        new_source_options);
    ServeThread serving2(&source2);
    StreamingRanker witness2(nullptr, "rep", SerialOptions(w_dir));
    ReplicaApplier applier2(&witness2, pair2.standby.get(),
                            ApplierOptions(w_dir));
    ASSERT_TRUE(applier2.Init().ok());
    EXPECT_TRUE(applier2.has_state());  // resumed, not re-bootstrapped
    ASSERT_TRUE(applier2.CatchUpTo(candidate.wal_synced_seq()).ok());
    EXPECT_EQ(applier2.epoch(), 2u);
    const auto adopted = LoadEpoch(w_dir);
    ASSERT_TRUE(adopted.ok());
    EXPECT_EQ(*adopted, 2u);
    ExpectSnapshotsBitIdentical(witness2.snapshot(), candidate.snapshot(),
                                "re-attached witness vs new primary");
    pair2.standby->Close();
    witness2.Stop();
  }

  primary.Stop();
  candidate.Stop();
  RemoveDir(p_dir);
  RemoveDir(a_dir);
  RemoveDir(w_dir);
}

FailCase Case(const char* name, double drop, double duplicate, double reorder,
              double delay, double truncate) {
  FailCase fail_case;
  fail_case.name = name;
  fail_case.plan.drop = drop;
  fail_case.plan.duplicate = duplicate;
  fail_case.plan.reorder = reorder;
  fail_case.plan.delay = delay;
  fail_case.plan.truncate = truncate;
  fail_case.plan.seed = 97;
  return fail_case;
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, FailoverTest,
    ::testing::Values(Case("none", 0, 0, 0, 0, 0),
                      Case("drop", 0.3, 0, 0, 0, 0),
                      Case("duplicate", 0, 0.4, 0, 0, 0),
                      Case("reorder", 0, 0, 0.4, 0, 0),
                      Case("delay", 0, 0, 0, 0.4, 0),
                      Case("truncate", 0, 0, 0, 0, 0.3),
                      Case("everything", 0.15, 0.15, 0.15, 0.15, 0.1)),
    [](const ::testing::TestParamInfo<FailCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rpc::replica
