// replica wire format: every frame survives a clean roundtrip bit for
// bit, and every way a frame can be damaged in flight — truncation, bit
// flips, bad magic, unknown types, length lies — is detected as kDataLoss
// rather than decoded into garbage. The applier's idempotency story rests
// on corrupt frames being *detected*, never half-applied.
#include "replica/wire.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rpc::replica {
namespace {

Message SampleMessage() {
  Message message;
  message.type = MessageType::kWalBatch;
  message.epoch = 7;
  message.a = 12345;
  message.b = 67890;
  message.payload = std::string("binary\0payload\xff", 15);
  return message;
}

TEST(WireTest, MessageRoundtripsExactly) {
  const Message sent = SampleMessage();
  const std::string frame = EncodeMessage(sent);
  const auto received = DecodeMessage(frame);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->type, sent.type);
  EXPECT_EQ(received->epoch, sent.epoch);
  EXPECT_EQ(received->a, sent.a);
  EXPECT_EQ(received->b, sent.b);
  EXPECT_EQ(received->payload, sent.payload);
}

TEST(WireTest, EmptyPayloadRoundtrips) {
  Message heartbeat;
  heartbeat.type = MessageType::kCatchUpRequest;
  heartbeat.epoch = 1;
  heartbeat.a = 42;
  heartbeat.b = 1;
  const auto received = DecodeMessage(EncodeMessage(heartbeat));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->a, 42u);
  EXPECT_TRUE(received->payload.empty());
}

TEST(WireTest, TruncationAnywhereIsDetected) {
  const std::string frame = EncodeMessage(SampleMessage());
  // Every proper prefix must fail loudly — this is exactly what the
  // fault-injecting transport's truncate mode produces.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const auto decoded = DecodeMessage(frame.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WireTest, AnySingleBitFlipIsDetected) {
  const std::string frame = EncodeMessage(SampleMessage());
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    std::string damaged = frame;
    damaged[byte] ^= 0x04;
    const auto decoded = DecodeMessage(damaged);
    EXPECT_FALSE(decoded.ok()) << "bit flip in byte " << byte << " slipped";
  }
}

TEST(WireTest, TrailingGarbageIsDetected) {
  std::string frame = EncodeMessage(SampleMessage());
  frame += "extra";
  const auto decoded = DecodeMessage(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, WalRecordsRoundtripWithTypesAndSeqs) {
  std::vector<durable::TailRecord> records;
  records.push_back({101, durable::RecordType::kAppend,
                     std::string("row\0bytes", 9)});
  records.push_back({102, durable::RecordType::kRetire, "id"});
  records.push_back({103, durable::RecordType::kPublish, ""});
  records.push_back({104, durable::RecordType::kBounds,
                     std::string(64, '\xab')});

  const auto decoded = DecodeWalRecords(EncodeWalRecords(records));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i].seq, records[i].seq);
    EXPECT_EQ((*decoded)[i].type, records[i].type);
    EXPECT_EQ((*decoded)[i].payload, records[i].payload);
  }
}

TEST(WireTest, EmptyWalBatchIsAHeartbeat) {
  const auto decoded = DecodeWalRecords(EncodeWalRecords({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(WireTest, MalformedWalBatchIsRejected) {
  const std::string good = EncodeWalRecords(
      {{5, durable::RecordType::kAppend, "payload"}});
  EXPECT_FALSE(DecodeWalRecords(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(DecodeWalRecords(good + "junk").ok());
  // A count that promises more records than the bytes hold.
  std::string lying = good;
  lying[0] = 9;
  EXPECT_FALSE(DecodeWalRecords(lying).ok());
}

}  // namespace
}  // namespace rpc::replica
