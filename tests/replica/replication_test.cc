// The replication session layer end to end: a stateless standby
// bootstraps from a shipped snapshot, streams the WAL tail in bounded
// batches, and is bit-identical to the primary at every acked offset; a
// crashed standby resumes from its own durable dir; a standby that fell
// behind compaction gets a fresh snapshot re-shipped mid-stream; epoch
// fencing rejects deposed lineages in both directions; and a standby that
// loses its feed degrades to read-only serving with honest staleness.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "durable/event_log.h"
#include "durable/snapshot.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "replica/epoch.h"
#include "replica/replication.h"
#include "replica/transport.h"
#include "replica/wire.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

namespace rpc::replica {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;
using stream::StreamingRanker;
using stream::StreamingRankerOptions;

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Matrix RawFixture(const Orientation& alpha, int n, uint64_t seed) {
  return data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_replica_") + tag + "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

StreamingRankerOptions SerialOptions(const std::string& dir) {
  StreamingRankerOptions options;
  options.num_threads = 1;  // fully inline: deterministic event sequencing
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 42;
  options.durability.dir = dir;
  options.durability.segment_bytes = 1 << 10;
  options.durability.snapshot_every_events = 8;
  return options;
}

/// Test-friendly applier options: tiny backoffs, no jitter, a sleep that
/// never really sleeps — the schedule itself is covered by retry_test.
ReplicaApplierOptions ApplierOptions(const std::string& dir) {
  ReplicaApplierOptions options;
  options.dir = dir;
  options.d = 3;
  options.segment_bytes = 1 << 10;
  options.request_timeout_seconds = 0.25;
  options.retry.initial_backoff_seconds = 0.001;
  options.retry.max_backoff_seconds = 0.01;
  options.retry.jitter_fraction = 0.0;
  options.retry.max_attempts = 40;
  options.sleep = [](double) {};
  return options;
}

void ExpectSnapshotsBitIdentical(const StreamingRanker::Snapshot& got,
                                 const StreamingRanker::Snapshot& want,
                                 const char* where) {
  EXPECT_EQ(got.version, want.version) << where;
  EXPECT_EQ(got.model.Serialize(), want.model.Serialize()) << where;
  EXPECT_EQ(got.row_ids, want.row_ids) << where;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << where;
  for (int i = 0; i < got.scores.size(); ++i) {
    EXPECT_TRUE(BitEqual(got.scores[i], want.scores[i]))
        << where << ": score " << i;
  }
  ASSERT_EQ(got.live_mins.size(), want.live_mins.size()) << where;
  for (int j = 0; j < got.live_mins.size(); ++j) {
    EXPECT_TRUE(BitEqual(got.live_mins[j], want.live_mins[j]))
        << where << ": min " << j;
    EXPECT_TRUE(BitEqual(got.live_maxs[j], want.live_maxs[j]))
        << where << ": max " << j;
  }
}

/// Runs a source's Serve() loop on its own thread (the applier's PumpOnce
/// blocks on the reply, so request and answer must overlap). Closing the
/// standby-side link makes Serve return and the thread joinable.
class ServeThread {
 public:
  explicit ServeThread(ReplicationSource* source)
      : thread_([source] { (void)source->Serve(); }) {}
  ~ServeThread() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

void DrivePrimary(StreamingRanker* primary, const Matrix& raw, int from,
                  int count) {
  for (int i = from; i < from + count; ++i) {
    Vector row = raw.Row(i % raw.rows());
    for (int j = 0; j < row.size(); ++j) row[j] += 0.01 * (i + 1);
    ASSERT_TRUE(primary->Append(row).ok());
  }
  ASSERT_TRUE(primary->Flush().ok());
}

TEST(ReplicationTest, StatelessStandbyBootstrapsAndTracksBitIdentically) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const Matrix probe = RawFixture(alpha, 25, 8);
  const std::string primary_dir = MakeTempDir("primary");
  const std::string standby_dir = MakeTempDir("standby");

  serve::RankingService primary_service;
  StreamingRanker primary(&primary_service, "rep", SerialOptions(primary_dir));
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DrivePrimary(&primary, raw, 0, 20);
  ASSERT_TRUE(primary.ForceRefresh().ok());
  ASSERT_TRUE(primary.Flush().ok());

  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  source_options.max_batch_records = 4;  // force multi-batch streaming
  ReplicationSource source(
      pair.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving(&source);

  serve::RankingService standby_service;
  StreamingRanker standby(&standby_service, "rep", SerialOptions(standby_dir));
  ReplicaApplier applier(&standby, pair.standby.get(),
                         ApplierOptions(standby_dir));
  ASSERT_TRUE(applier.Init().ok());
  EXPECT_FALSE(applier.has_state());

  const std::uint64_t target = primary.wal_synced_seq();
  ASSERT_GT(target, 0u);
  ASSERT_TRUE(applier.CatchUpTo(target).ok());

  // Bootstrap shape: exactly one snapshot (the Start state is never in the
  // log), then the tail in several capped batches.
  EXPECT_TRUE(applier.has_state());
  EXPECT_EQ(applier.durable_seq(), target);
  EXPECT_EQ(source.snapshots_shipped(), 1);
  EXPECT_GE(source.batches_shipped(), 2);
  // Requests carry the durable offset, so by the final exchange the source
  // has seen everything but the last batch acked.
  EXPECT_LT(source.acked_seq(), target);
  EXPECT_GT(source.acked_seq(), 0u);
  EXPECT_TRUE(standby.is_follower());

  ExpectSnapshotsBitIdentical(standby.snapshot(), primary.snapshot(),
                              "bootstrap");

  // The standby serves the replicated model through the same service
  // surface as the primary — same version, bit-identical scores.
  {
    const auto got_version = standby_service.DatasetVersion("rep");
    const auto want_version = primary_service.DatasetVersion("rep");
    ASSERT_TRUE(got_version.ok() && want_version.ok());
    EXPECT_EQ(*got_version, *want_version);
    const auto got = standby_service.ScoreBatch("rep", probe);
    const auto want = primary_service.ScoreBatch("rep", probe);
    ASSERT_TRUE(got.ok() && want.ok());
    for (int i = 0; i < probe.rows(); ++i) {
      EXPECT_TRUE(BitEqual(got->scores[i], want->scores[i])) << "probe " << i;
    }
  }

  // Keep writing on the primary; the standby tracks the moving tip, and
  // the next request acks the previously synced offset.
  DrivePrimary(&primary, raw, 20, 15);
  ASSERT_TRUE(primary.ForceRefresh().ok());
  ASSERT_TRUE(primary.Flush().ok());
  const std::uint64_t tip = primary.wal_synced_seq();
  ASSERT_GT(tip, target);
  ASSERT_TRUE(applier.CatchUpTo(tip).ok());
  EXPECT_EQ(applier.durable_seq(), tip);
  EXPECT_EQ(source.snapshots_shipped(), 1);  // still just the bootstrap
  EXPECT_GE(source.acked_seq(), target);
  EXPECT_EQ(applier.primary_synced_seq(), tip);
  ExpectSnapshotsBitIdentical(standby.snapshot(), primary.snapshot(),
                              "tracking");

  // A caught-up pump is a clean heartbeat: no progress, no error, and the
  // staleness clock rearms.
  ASSERT_TRUE(applier.PumpOnce().ok());
  EXPECT_EQ(applier.durable_seq(), tip);
  EXPECT_LT(applier.staleness_seconds(), 1.0);
  EXPECT_FALSE(applier.feed_lost());

  // Followers refuse writes: replication is the only mutation path.
  EXPECT_EQ(standby.Append(raw.Row(0)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(standby.Retire(1).code(), StatusCode::kFailedPrecondition);

  pair.standby->Close();
  primary.Stop();
  standby.Stop();
  RemoveDir(primary_dir);
  RemoveDir(standby_dir);
}

TEST(ReplicationTest, CrashedStandbyResumesFromItsOwnDurableState) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const std::string primary_dir = MakeTempDir("primary");
  const std::string standby_dir = MakeTempDir("standby");

  StreamingRankerOptions primary_options = SerialOptions(primary_dir);
  primary_options.durability.keep_snapshots = 4;
  primary_options.durability.wal_keep_events = 1 << 20;  // no compaction
  StreamingRanker primary(nullptr, "rep", primary_options);
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DrivePrimary(&primary, raw, 0, 12);

  std::uint64_t resumed_from = 0;
  {
    LinkPair pair = MakeLoopbackPair();
    ReplicationSourceOptions source_options;
    source_options.dir = primary_dir;
    source_options.d = 3;
    ReplicationSource source(
        pair.primary.get(), [&] { return primary.wal_synced_seq(); },
        source_options);
    ServeThread serving(&source);

    StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
    ReplicaApplier applier(&standby, pair.standby.get(),
                           ApplierOptions(standby_dir));
    ASSERT_TRUE(applier.Init().ok());
    ASSERT_TRUE(applier.CatchUpTo(primary.wal_synced_seq()).ok());
    resumed_from = applier.durable_seq();
    ASSERT_GT(resumed_from, 0u);
    pair.standby->Close();
    standby.Stop();
    // Applier, ranker and link die here — the standby "crashed". Its dir
    // survives and is the only thing the resume below may rely on.
  }

  // The primary keeps moving while the standby is down.
  DrivePrimary(&primary, raw, 12, 10);
  const std::uint64_t tip = primary.wal_synced_seq();
  ASSERT_GT(tip, resumed_from);

  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  ReplicationSource source(
      pair.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving(&source);

  StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
  ReplicaApplier applier(&standby, pair.standby.get(),
                         ApplierOptions(standby_dir));
  ASSERT_TRUE(applier.Init().ok());
  // Init rebuilt the follower from local disk: state present, offset at
  // exactly what was durable before the crash — no snapshot needed.
  EXPECT_TRUE(applier.has_state());
  EXPECT_EQ(applier.durable_seq(), resumed_from);

  ASSERT_TRUE(applier.CatchUpTo(tip).ok());
  EXPECT_EQ(applier.durable_seq(), tip);
  EXPECT_EQ(source.snapshots_shipped(), 0);  // pure log catch-up
  ExpectSnapshotsBitIdentical(standby.snapshot(), primary.snapshot(),
                              "resume");

  pair.standby->Close();
  primary.Stop();
  standby.Stop();
  RemoveDir(primary_dir);
  RemoveDir(standby_dir);
}

TEST(ReplicationTest, CompactionBehindAStandbyForcesASnapshotReship) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const std::string primary_dir = MakeTempDir("primary");
  const std::string standby_dir = MakeTempDir("standby");

  // Aggressive retention: one snapshot, no extra log margin, tiny
  // segments — the log horizon advances quickly.
  StreamingRankerOptions primary_options = SerialOptions(primary_dir);
  primary_options.durability.keep_snapshots = 1;
  primary_options.durability.wal_keep_events = 0;
  StreamingRanker primary(nullptr, "rep", primary_options);
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DrivePrimary(&primary, raw, 0, 10);

  std::uint64_t behind_at = 0;
  {
    LinkPair pair = MakeLoopbackPair();
    ReplicationSourceOptions source_options;
    source_options.dir = primary_dir;
    source_options.d = 3;
    ReplicationSource source(
        pair.primary.get(), [&] { return primary.wal_synced_seq(); },
        source_options);
    ServeThread serving(&source);
    StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
    ReplicaApplier applier(&standby, pair.standby.get(),
                           ApplierOptions(standby_dir));
    ASSERT_TRUE(applier.Init().ok());
    ASSERT_TRUE(applier.CatchUpTo(primary.wal_synced_seq()).ok());
    behind_at = applier.durable_seq();
    pair.standby->Close();
    standby.Stop();
  }

  // While the standby is away, the primary rolls far enough that
  // compaction truncates the records right after the standby's offset.
  DrivePrimary(&primary, raw, 10, 60);
  ASSERT_GT(durable::OldestWalSeq(primary_dir), behind_at + 1)
      << "compaction never overtook the standby; the test is vacuous";

  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  ReplicationSource source(
      pair.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving(&source);

  StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
  ReplicaApplier applier(&standby, pair.standby.get(),
                         ApplierOptions(standby_dir));
  ASSERT_TRUE(applier.Init().ok());
  EXPECT_EQ(applier.durable_seq(), behind_at);

  const std::uint64_t tip = primary.wal_synced_seq();
  ASSERT_TRUE(applier.CatchUpTo(tip).ok());
  // The source could not serve seq behind_at+1 from the log any more, so
  // it re-shipped its newest snapshot mid-stream; the applier replaced its
  // local chain (snapshot + wal suffix stays contiguous) and caught up.
  EXPECT_EQ(source.snapshots_shipped(), 1);
  EXPECT_EQ(applier.durable_seq(), tip);
  ExpectSnapshotsBitIdentical(standby.snapshot(), primary.snapshot(),
                              "after re-ship");

  // The replaced local dir is still a valid recovery dir in its own
  // right: a third incarnation rebuilds the same state from disk alone.
  {
    StreamingRanker reborn(nullptr, "rep", SerialOptions(standby_dir));
    ASSERT_TRUE(reborn.RecoverAsFollower().ok());
    EXPECT_EQ(reborn.follower_applied_seq(), tip);
    ExpectSnapshotsBitIdentical(reborn.snapshot(), primary.snapshot(),
                                "reborn from re-shipped chain");
    reborn.Stop();
  }

  pair.standby->Close();
  primary.Stop();
  standby.Stop();
  RemoveDir(primary_dir);
  RemoveDir(standby_dir);
}

TEST(ReplicationTest, SourceFencesItselfPermanentlyOnANewerEpoch) {
  const std::string primary_dir = MakeTempDir("primary");
  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  source_options.epoch = 1;
  ReplicationSource source(pair.primary.get(), [] { return std::uint64_t{0}; },
                           source_options);

  // A request stamped with a newer epoch — the first thing a freshly
  // promoted standby's lineage would send this deposed primary.
  Message newer;
  newer.type = MessageType::kCatchUpRequest;
  newer.epoch = 2;
  ASSERT_TRUE(pair.standby->Send(EncodeMessage(newer)).ok());
  EXPECT_EQ(source.HandleOne(0.1).code(), StatusCode::kAborted);
  EXPECT_TRUE(source.fenced());

  // The deposed source told the peer exactly who fenced it.
  const auto reply = pair.standby->Receive(0.1);
  ASSERT_TRUE(reply.ok());
  const auto fenced = DecodeMessage(*reply);
  ASSERT_TRUE(fenced.ok());
  EXPECT_EQ(fenced->type, MessageType::kFenced);
  EXPECT_EQ(fenced->epoch, 1u);
  EXPECT_EQ(fenced->a, 2u);

  // Fencing is forever: even a legitimate old-epoch request gets nothing.
  Message old_epoch;
  old_epoch.type = MessageType::kCatchUpRequest;
  old_epoch.epoch = 1;
  old_epoch.b = 1;
  ASSERT_TRUE(pair.standby->Send(EncodeMessage(old_epoch)).ok());
  EXPECT_EQ(source.HandleOne(0.1).code(), StatusCode::kAborted);
  EXPECT_EQ(pair.standby->Receive(0.05).status().code(),
            StatusCode::kDeadlineExceeded);
  RemoveDir(primary_dir);
}

TEST(ReplicationTest, ApplierRejectsStaleEpochsAndAdoptsNewerOnesDurably) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const std::string standby_dir = MakeTempDir("standby");
  ASSERT_TRUE(StoreEpoch(standby_dir, 5).ok());

  LinkPair pair = MakeLoopbackPair();
  StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
  ReplicaApplier applier(&standby, pair.standby.get(),
                         ApplierOptions(standby_dir));
  ASSERT_TRUE(applier.Init().ok());
  EXPECT_EQ(applier.epoch(), 5u);

  // A late heartbeat from the deposed epoch-3 lineage: rejected, counted,
  // and surfaced as kAborted so a driving loop knows this is not a retry.
  Message stale;
  stale.type = MessageType::kWalBatch;
  stale.epoch = 3;
  stale.payload = EncodeWalRecords({});
  ASSERT_TRUE(pair.primary->Send(EncodeMessage(stale)).ok());
  EXPECT_EQ(applier.PumpOnce().code(), StatusCode::kAborted);
  EXPECT_EQ(applier.stale_epoch_rejects(), 1);
  EXPECT_EQ(applier.epoch(), 5u);

  // A message from a NEWER lineage: adopt its epoch, and persist the
  // adoption before anything from it is applied — after a crash this
  // standby must still refuse epoch-5..8 leftovers.
  Message newer;
  newer.type = MessageType::kWalBatch;
  newer.epoch = 9;
  newer.payload = EncodeWalRecords({});
  ASSERT_TRUE(pair.primary->Send(EncodeMessage(newer)).ok());
  ASSERT_TRUE(applier.PumpOnce().ok());
  EXPECT_EQ(applier.epoch(), 9u);
  const auto persisted = LoadEpoch(standby_dir);
  ASSERT_TRUE(persisted.ok());
  EXPECT_EQ(*persisted, 9u);

  // A source declaring itself fenced is a dead feed, not an error to
  // apply: kUnavailable, retryable against a different peer.
  Message fenced;
  fenced.type = MessageType::kFenced;
  fenced.epoch = 9;
  ASSERT_TRUE(pair.primary->Send(EncodeMessage(fenced)).ok());
  EXPECT_EQ(applier.PumpOnce().code(), StatusCode::kUnavailable);

  standby.Stop();
  RemoveDir(standby_dir);
}

TEST(ReplicationTest, LostFeedDegradesToReadOnlyServingWithHonestStaleness) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const Matrix probe = RawFixture(alpha, 10, 9);
  const std::string primary_dir = MakeTempDir("primary");
  const std::string standby_dir = MakeTempDir("standby");

  StreamingRanker primary(nullptr, "rep", SerialOptions(primary_dir));
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DrivePrimary(&primary, raw, 0, 10);

  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  ReplicationSource source(
      pair.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving(&source);

  double fake_time = 1000.0;
  serve::RankingService standby_service;
  StreamingRanker standby(&standby_service, "rep", SerialOptions(standby_dir));
  ReplicaApplierOptions applier_options = ApplierOptions(standby_dir);
  applier_options.lease_seconds = 2.0;
  applier_options.now = [&] { return fake_time; };
  ReplicaApplier applier(&standby, pair.standby.get(), applier_options);
  ASSERT_TRUE(applier.Init().ok());
  ASSERT_TRUE(applier.CatchUpTo(primary.wal_synced_seq()).ok());
  const std::uint64_t frozen_version = standby.snapshot().version;
  EXPECT_FALSE(applier.feed_lost());

  // The primary vanishes (link dies). Within the lease the standby is
  // merely behind; past it, the feed is declared lost.
  pair.standby->Close();
  EXPECT_EQ(applier.PumpOnce().code(), StatusCode::kUnavailable);
  fake_time += 1.0;
  EXPECT_FALSE(applier.feed_lost());
  fake_time += 4.0;
  EXPECT_TRUE(applier.feed_lost());
  EXPECT_NEAR(applier.staleness_seconds(), 5.0, 1e-9);

  // Lost feed degrades, it does not stop serving: the last replicated
  // version still answers queries; mutations stay refused.
  const auto version = standby_service.DatasetVersion("rep");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, frozen_version);
  EXPECT_TRUE(standby_service.ScoreBatch("rep", probe).ok());
  EXPECT_EQ(standby.Append(raw.Row(0)).status().code(),
            StatusCode::kFailedPrecondition);

  primary.Stop();
  standby.Stop();
  RemoveDir(primary_dir);
  RemoveDir(standby_dir);
}

TEST(ReplicationTest, CatchUpRetriesThroughALossyLinkDeterministically) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  const std::string primary_dir = MakeTempDir("primary");
  const std::string standby_dir = MakeTempDir("standby");

  StreamingRanker primary(nullptr, "rep", SerialOptions(primary_dir));
  ASSERT_TRUE(primary.Start(raw, alpha).ok());
  DrivePrimary(&primary, raw, 0, 25);

  LinkPair pair = MakeLoopbackPair();
  // Both directions lossy and damaging: requests and replies drop,
  // duplicate and truncate. The protocol must grind through regardless.
  FaultPlan plan;
  plan.drop = 0.3;
  plan.duplicate = 0.2;
  plan.truncate = 0.15;
  plan.seed = 1234;
  auto standby_link = WrapWithFaults(std::move(pair.standby), plan);
  plan.seed = 4321;  // independent fault stream for the reply direction
  auto primary_link = WrapWithFaults(std::move(pair.primary), plan);

  ReplicationSourceOptions source_options;
  source_options.dir = primary_dir;
  source_options.d = 3;
  source_options.max_batch_records = 4;
  ReplicationSource source(
      primary_link.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  ServeThread serving(&source);

  StreamingRanker standby(nullptr, "rep", SerialOptions(standby_dir));
  ReplicaApplierOptions applier_options = ApplierOptions(standby_dir);
  applier_options.request_timeout_seconds = 0.02;  // fail fast, retry fast
  applier_options.retry.max_attempts = 0;          // unlimited attempts
  applier_options.retry.deadline_seconds = 30.0;   // bounded by wall clock
  int sleeps = 0;
  applier_options.sleep = [&](double) { ++sleeps; };
  ReplicaApplier applier(&standby, standby_link.get(), applier_options);
  ASSERT_TRUE(applier.Init().ok());

  const std::uint64_t tip = primary.wal_synced_seq();
  ASSERT_TRUE(applier.CatchUpTo(tip).ok());
  EXPECT_EQ(applier.durable_seq(), tip);
  EXPECT_GT(sleeps, 0);  // the lossy link really did force backoffs
  ExpectSnapshotsBitIdentical(standby.snapshot(), primary.snapshot(),
                              "through faults");

  standby_link->Close();
  primary.Stop();
  standby.Stop();
  RemoveDir(primary_dir);
  RemoveDir(standby_dir);
}

}  // namespace
}  // namespace rpc::replica
