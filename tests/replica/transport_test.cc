// replica transport: loopback pipe semantics (FIFO delivery, per-receive
// deadlines surfacing as kDeadlineExceeded, close waking blocked peers
// with kUnavailable) and the deterministic fault wrapper the failover
// property tests are built on — each fault mode must do exactly what it
// says, replayably per seed.
#include "replica/transport.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replica/wire.h"

namespace rpc::replica {
namespace {

TEST(LoopbackTest, DeliversInOrderBothDirections) {
  LinkPair pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.primary->Send("to-standby-1").ok());
  ASSERT_TRUE(pair.primary->Send("to-standby-2").ok());
  ASSERT_TRUE(pair.standby->Send("to-primary").ok());

  auto first = pair.standby->Receive(0.1);
  auto second = pair.standby->Receive(0.1);
  auto back = pair.primary->Receive(0.1);
  ASSERT_TRUE(first.ok() && second.ok() && back.ok());
  EXPECT_EQ(*first, "to-standby-1");
  EXPECT_EQ(*second, "to-standby-2");
  EXPECT_EQ(*back, "to-primary");
}

TEST(LoopbackTest, ReceiveDeadlineSurfacesAsDeadlineExceeded) {
  LinkPair pair = MakeLoopbackPair();
  const auto result = pair.standby->Receive(0.01);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(LoopbackTest, CloseWakesBlockedReceiverWithUnavailable) {
  LinkPair pair = MakeLoopbackPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.primary->Close();
  });
  // Blocked well past the close instant: must wake with kUnavailable, not
  // sit out the full deadline.
  const auto result = pair.standby->Receive(5.0);
  closer.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // And sends refuse from then on, both sides.
  EXPECT_EQ(pair.standby->Send("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(pair.primary->Send("x").code(), StatusCode::kUnavailable);
}

TEST(FaultyLinkTest, ZeroProbabilitiesPassEverythingThrough) {
  LinkPair pair = MakeLoopbackPair();
  auto faulty = WrapWithFaults(std::move(pair.primary), FaultPlan{});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(faulty->Send("frame-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto got = pair.standby->Receive(0.1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "frame-" + std::to_string(i));
  }
}

TEST(FaultyLinkTest, DropLosesFramesDeterministicallyPerSeed) {
  const auto deliveries = [](std::uint64_t seed) {
    LinkPair pair = MakeLoopbackPair();
    FaultPlan plan;
    plan.drop = 0.5;
    plan.seed = seed;
    auto faulty = WrapWithFaults(std::move(pair.primary), plan);
    std::vector<std::string> got;
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(faulty->Send("f" + std::to_string(i)).ok());
    }
    while (true) {
      auto frame = pair.standby->Receive(0.01);
      if (!frame.ok()) break;
      got.push_back(*frame);
    }
    return got;
  };
  const auto a = deliveries(11);
  const auto b = deliveries(11);
  const auto c = deliveries(12);
  EXPECT_EQ(a, b);  // same seed, same losses
  EXPECT_NE(a, c);
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 40u);  // some frames must actually vanish
}

TEST(FaultyLinkTest, DuplicateDeliversTheSameFrameTwice) {
  LinkPair pair = MakeLoopbackPair();
  FaultPlan plan;
  plan.duplicate = 1.0;
  auto faulty = WrapWithFaults(std::move(pair.primary), plan);
  ASSERT_TRUE(faulty->Send("dup-me").ok());
  auto first = pair.standby->Receive(0.1);
  auto second = pair.standby->Receive(0.1);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, "dup-me");
  EXPECT_EQ(*second, "dup-me");
}

TEST(FaultyLinkTest, ReorderSwapsAdjacentFrames) {
  LinkPair pair = MakeLoopbackPair();
  FaultPlan plan;
  plan.reorder = 1.0;
  auto faulty = WrapWithFaults(std::move(pair.primary), plan);
  ASSERT_TRUE(faulty->Send("first").ok());   // held back
  ASSERT_TRUE(faulty->Send("second").ok());  // flushes: second, then first
  auto a = pair.standby->Receive(0.1);
  auto b = pair.standby->Receive(0.1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, "second");
  EXPECT_EQ(*b, "first");
}

TEST(FaultyLinkTest, DelayHoldsAFrameButKeepsOrder) {
  LinkPair pair = MakeLoopbackPair();
  FaultPlan plan;
  plan.delay = 1.0;
  auto faulty = WrapWithFaults(std::move(pair.primary), plan);
  ASSERT_TRUE(faulty->Send("late").ok());  // held back
  // Nothing on the wire yet: the receiver times out like a slow network.
  EXPECT_EQ(pair.standby->Receive(0.01).status().code(),
            StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(faulty->Send("pusher").ok());  // flushes: late, then pusher
  auto a = pair.standby->Receive(0.1);
  auto b = pair.standby->Receive(0.1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, "late");
  EXPECT_EQ(*b, "pusher");
}

TEST(FaultyLinkTest, TruncateCutsFramesSoTheCrcCatchesThem) {
  LinkPair pair = MakeLoopbackPair();
  FaultPlan plan;
  plan.truncate = 1.0;
  auto faulty = WrapWithFaults(std::move(pair.primary), plan);
  Message message;
  message.type = MessageType::kWalBatch;
  message.epoch = 3;
  message.payload = "some payload worth protecting";
  ASSERT_TRUE(faulty->Send(EncodeMessage(message)).ok());
  auto frame = pair.standby->Receive(0.1);
  ASSERT_TRUE(frame.ok());
  const auto decoded = DecodeMessage(*frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FaultyLinkTest, HeldFrameDiesWithClose) {
  LinkPair pair = MakeLoopbackPair();
  FaultPlan plan;
  plan.delay = 1.0;
  auto faulty = WrapWithFaults(std::move(pair.primary), plan);
  ASSERT_TRUE(faulty->Send("stranded").ok());
  faulty->Close();
  EXPECT_EQ(pair.standby->Receive(0.05).status().code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace rpc::replica
