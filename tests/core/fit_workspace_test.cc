// The Step 5 update pipeline's three contracts: (1) streaming Gram/cross
// accumulation reproduces the dense design-matrix formulation bit for bit,
// (2) the segmented parallel accumulation is bit-identical to the serial
// single-pass sweep for every thread count, and (3) whole fits driven
// through the workspace are bit-identical across 1/2/8 threads — J, control
// points and the final ranking (the guarantee the projection engine already
// made, now extended to the update stage).
#include "core/fit_workspace.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/rpc_learner.h"
#include "curve/bernstein.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/pinv.h"
#include "opt/richardson.h"
#include "order/orientation.h"
#include "rank/ranking_list.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix RandomUnitData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(0.0, 1.0);
  }
  return data;
}

Vector RandomScores(int n, uint64_t seed) {
  Rng rng(seed);
  Vector scores(n);
  for (int i = 0; i < n; ++i) scores[i] = rng.Uniform(0.0, 1.0);
  return scores;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c)) << what << " entry (" << r << "," << c
                                  << ")";
    }
  }
}

// The historical allocating formulation of the normal equations, kept here
// as the reference the streaming accumulator must reproduce exactly.
void DenseNormalEquations(const Matrix& data, const Vector& scores,
                          int degree, Matrix* gram, Matrix* cross) {
  const Matrix design = curve::BernsteinDesign(degree, scores);
  *gram = linalg::TimesTranspose(design, design);
  *cross = linalg::TransposeTimes(data, design.Transposed());
}

TEST(FitWorkspaceTest, StreamingMatchesDenseDesignBitForBit) {
  // n below kFitSegmentRows: the streaming sweep runs one segment, whose
  // per-entry accumulation order equals the dense path's row-ordered sums.
  for (int degree : {1, 3, 5}) {
    const int n = 257;
    const int d = 4;
    const Matrix data = RandomUnitData(n, d, 11);
    const Vector scores = RandomScores(n, 12);

    Matrix dense_gram, dense_cross;
    DenseNormalEquations(data, scores, degree, &dense_gram, &dense_cross);

    FitWorkspace workspace;
    workspace.Bind(n, d, degree);
    workspace.AccumulateNormalEquations(data, scores, nullptr);
    ExpectBitIdentical(workspace.gram(), dense_gram, "gram");
    ExpectBitIdentical(workspace.cross(), dense_cross, "cross");
  }
}

TEST(FitWorkspaceTest, SegmentedAccumulationIsThreadCountInvariant) {
  // n spanning several fixed segments: the partial sums and their ordered
  // reduction do not depend on which worker ran which segment.
  const int n = kFitSegmentRows * 2 + 513;
  const int d = 3;
  const Matrix data = RandomUnitData(n, d, 21);
  const Vector scores = RandomScores(n, 22);

  FitWorkspace serial;
  serial.Bind(n, d, 3);
  serial.AccumulateNormalEquations(data, scores, nullptr);

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    FitWorkspace parallel;
    parallel.Bind(n, d, 3);
    parallel.AccumulateNormalEquations(data, scores, &pool);
    ExpectBitIdentical(parallel.gram(), serial.gram(), "gram");
    ExpectBitIdentical(parallel.cross(), serial.cross(), "cross");
  }
}

TEST(FitWorkspaceTest, RichardsonUpdateMatchesLegacyFormulation) {
  const int n = 300;
  const int d = 5;
  const int degree = 3;
  const Matrix data = RandomUnitData(n, d, 31);
  const Vector scores = RandomScores(n, 32);
  Matrix dense_gram, dense_cross;
  DenseNormalEquations(data, scores, degree, &dense_gram, &dense_cross);

  Matrix start(d, degree + 1);
  Rng rng(33);
  for (int i = 0; i < d; ++i) {
    for (int r = 0; r <= degree; ++r) start(i, r) = rng.Uniform(0.0, 1.0);
  }

  ControlUpdateOptions options;
  options.richardson_steps = 4;

  // Legacy: the pure-function step iterated on fresh matrices.
  Matrix legacy = start;
  for (int step = 0; step < options.richardson_steps; ++step) {
    auto next =
        opt::RichardsonStep(legacy, dense_gram, dense_cross,
                            options.richardson);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    legacy = std::move(next).value();
  }

  FitWorkspace workspace;
  workspace.Bind(n, d, degree);
  workspace.AccumulateNormalEquations(data, scores, nullptr);
  Matrix control = start;
  const Status status = workspace.UpdateControlPoints(options, &control);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectBitIdentical(control, legacy, "richardson control");
}

TEST(FitWorkspaceTest, PinvUpdateMatchesLegacyFormulation) {
  const int n = 280;
  const int d = 4;
  const int degree = 3;
  const Matrix data = RandomUnitData(n, d, 41);
  const Vector scores = RandomScores(n, 42);
  Matrix dense_gram, dense_cross;
  DenseNormalEquations(data, scores, degree, &dense_gram, &dense_cross);

  auto gram_pinv = linalg::PseudoInverseSymmetric(dense_gram);
  ASSERT_TRUE(gram_pinv.ok()) << gram_pinv.status().ToString();
  const Matrix legacy = dense_cross * gram_pinv.value();

  FitWorkspace workspace;
  workspace.Bind(n, d, degree);
  workspace.AccumulateNormalEquations(data, scores, nullptr);
  ControlUpdateOptions options;
  options.use_pseudo_inverse_update = true;
  Matrix control(d, degree + 1);  // overwritten by the Eq. (26) solve
  const Status status = workspace.UpdateControlPoints(options, &control);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectBitIdentical(control, legacy, "pinv control");
}

// End-to-end: the whole alternating fit — projection AND the segmented
// update accumulation — is bit-identical for every thread count, in both
// reprojection modes. n spans multiple segments so the parallel reduction
// actually runs.
TEST(FitWorkspaceTest, FitIsBitIdenticalAcrossThreadCounts) {
  const int n = kFitSegmentRows + 777;
  const int d = 3;
  const Orientation alpha = Orientation::AllBenefit(d);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
              .seed = 51});
  auto normalizer = data::Normalizer::Fit(sample.data);
  ASSERT_TRUE(normalizer.ok());
  const Matrix data = normalizer->Transform(sample.data);

  for (ReprojectionMode mode :
       {ReprojectionMode::kFull, ReprojectionMode::kWarmStart}) {
    RpcLearnOptions base;
    base.max_iterations = 8;
    base.seed = 77;
    base.reprojection = mode;
    base.num_threads = 1;
    const auto reference = RpcLearner(base).Fit(data, alpha);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::vector<int> reference_order =
        rank::RankingList(reference->scores).OrderedIndices();

    for (int threads : {2, 8}) {
      RpcLearnOptions options = base;
      options.num_threads = threads;
      const auto fit = RpcLearner(options).Fit(data, alpha);
      ASSERT_TRUE(fit.ok()) << fit.status().ToString();
      EXPECT_EQ(fit->final_j, reference->final_j) << "threads " << threads;
      EXPECT_EQ(fit->iterations, reference->iterations);
      ExpectBitIdentical(fit->curve.control_points(),
                         reference->curve.control_points(), "control");
      ASSERT_EQ(fit->scores.size(), reference->scores.size());
      for (int i = 0; i < fit->scores.size(); ++i) {
        ASSERT_EQ(fit->scores[i], reference->scores[i])
            << "threads " << threads << " row " << i;
      }
      EXPECT_EQ(rank::RankingList(fit->scores).OrderedIndices(),
                reference_order);
    }
  }
}

// Rebinding to the same shape must keep buffers (the restart path); a shape
// change must rebind cleanly.
TEST(FitWorkspaceTest, RebindAcrossShapesStaysCorrect) {
  FitWorkspace workspace;
  const Matrix small = RandomUnitData(64, 2, 61);
  const Vector small_scores = RandomScores(64, 62);
  workspace.Bind(64, 2, 3);
  workspace.AccumulateNormalEquations(small, small_scores, nullptr);
  Matrix gram_a = workspace.gram();

  const Matrix big = RandomUnitData(200, 6, 63);
  const Vector big_scores = RandomScores(200, 64);
  workspace.Bind(200, 6, 2);
  workspace.AccumulateNormalEquations(big, big_scores, nullptr);
  Matrix dense_gram, dense_cross;
  DenseNormalEquations(big, big_scores, 2, &dense_gram, &dense_cross);
  ExpectBitIdentical(workspace.gram(), dense_gram, "gram after rebind");
  ExpectBitIdentical(workspace.cross(), dense_cross, "cross after rebind");

  // Back to the first shape: accumulation restarts from zero.
  workspace.Bind(64, 2, 3);
  workspace.AccumulateNormalEquations(small, small_scores, nullptr);
  ExpectBitIdentical(workspace.gram(), gram_a, "gram after return rebind");
}

}  // namespace
}  // namespace rpc::core
