// End-to-end coverage of mixed benefit/cost orientations through the
// advanced core features (feature selection, persistence, degree
// selection) — the Example 2 setting where alpha mixes +1 and -1.
#include <gtest/gtest.h>

#include "core/feature_selection.h"
#include "core/model_io.h"
#include "core/model_selection.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "rank/metrics.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(MixedOrientationTest, FeatureSelectionOnCountryData) {
  const data::Dataset countries = data::GenerateCountryData(120, 19, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto selection =
      GreedySelectAttributes(countries, *alpha, /*target_tau=*/0.85);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_GE(selection->achieved_tau, 0.85);
  EXPECT_GE(selection->selected.size(), 1u);
  EXPECT_LT(selection->selected.size(), 4u);
}

TEST(MixedOrientationTest, AttributeImportancesCoverCostAttributes) {
  const data::Dataset countries = data::GenerateCountryData(120, 20, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  const auto ranker = RpcRanker::Fit(countries.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const auto importances = RankAttributes(*ranker, countries);
  ASSERT_TRUE(importances.ok());
  ASSERT_EQ(importances->size(), 4u);
  // Cost attributes (IMR/TB) anticorrelate with the score, but the
  // alignment measure is absolute — all four should carry real signal on
  // this data.
  for (const auto& imp : *importances) {
    EXPECT_GT(imp.score_alignment, 0.3) << imp.name;
  }
}

TEST(MixedOrientationTest, ModelRoundTripPreservesMixedAlpha) {
  const data::Dataset countries = data::GenerateCountryData(80, 21, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  const auto ranker = RpcRanker::Fit(countries.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  PortableRpcModel model;
  model.alpha = *alpha;
  model.mins = ranker->normalizer().mins();
  model.maxs = ranker->normalizer().maxs();
  model.control_points = ranker->PortableControlPoints();
  const auto reloaded = PortableRpcModel::Deserialize(model.Serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->alpha.sign(2), -1);
  // A dominated-in-every-attribute observation scores lower after reload.
  const auto poor = reloaded->Score(Vector{500.0, 45.0, 300.0, 200.0});
  const auto rich = reloaded->Score(Vector{60000.0, 80.0, 3.0, 3.0});
  ASSERT_TRUE(poor.ok());
  ASSERT_TRUE(rich.ok());
  EXPECT_LT(*poor, *rich);
}

TEST(MixedOrientationTest, DegreeSelectionWithMixedAlpha) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      *Orientation::FromSigns({1, -1}),
      {.n = 120, .noise_sigma = 0.05, .control_margin = 0.05, .seed = 23});
  auto norm = data::Normalizer::Fit(sample.data);
  ASSERT_TRUE(norm.ok());
  DegreeSelectionOptions options;
  options.candidate_degrees = {1, 3};
  options.folds = 4;
  const auto result = SelectDegreeByCrossValidation(
      norm->Transform(sample.data), *Orientation::FromSigns({1, -1}), {},
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->best_degree == 1 || result->best_degree == 3);
  for (const auto& score : result->scores) {
    EXPECT_TRUE(score.always_monotone) << "degree " << score.degree;
  }
}

TEST(MixedOrientationTest, UnitScoresOrientCorrectlyForAllCostAttributes) {
  // All-cost orientation: the smallest observation vector is the best.
  const auto alpha = Orientation::FromSigns({-1, -1});
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      *alpha,
      {.n = 100, .noise_sigma = 0.03, .control_margin = 0.1, .seed = 24});
  const auto ranker = RpcRanker::Fit(sample.data, *alpha);
  ASSERT_TRUE(ranker.ok());
  const double low = ranker->Score(Vector{-0.05, -0.05});
  const double high = ranker->Score(Vector{1.05, 1.05});
  EXPECT_GT(low, high);
}

}  // namespace
}  // namespace rpc::core
