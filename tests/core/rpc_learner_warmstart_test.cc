// Equivalence of ReprojectionMode::kWarmStart with kFull on the paper's
// synthetic fixtures: same final J within the learner tolerance and the
// identical ranking order, for every projection method and 1/2/8 threads —
// the acceptance contract of the warm-started incremental re-projection
// engine.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "order/orientation.h"
#include "rank/ranking_list.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

std::vector<int> RankingOrder(const Vector& scores) {
  return rank::RankingList(scores).OrderedIndices();
}

Matrix FixtureData(const Orientation& alpha, int n, uint64_t seed) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
              .seed = seed});
  const auto norm = data::Normalizer::Fit(sample.data);
  EXPECT_TRUE(norm.ok());
  return norm->Transform(sample.data);
}

TEST(RpcLearnerWarmStartTest, MatchesFullFitAcrossMethodsAndThreads) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1});
  const Matrix normalized = FixtureData(alpha, 240, 51);
  for (opt::ProjectionMethod method :
       {opt::ProjectionMethod::kGoldenSection,
        opt::ProjectionMethod::kQuinticRoots,
        opt::ProjectionMethod::kNewton}) {
    RpcLearnOptions options;
    options.projection.method = method;
    options.seed = 99;

    options.reprojection = ReprojectionMode::kFull;
    const auto full = RpcLearner(options).Fit(normalized, alpha);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    const std::vector<int> full_order = RankingOrder(full->scores);

    for (int threads : {1, 2, 8}) {
      options.reprojection = ReprojectionMode::kWarmStart;
      options.num_threads = threads;
      const auto warm = RpcLearner(options).Fit(normalized, alpha);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      // Same minimum: J within the learner's own convergence tolerance
      // (scaled to J's magnitude for safety; both fits refine s to 1e-10).
      EXPECT_NEAR(warm->final_j, full->final_j,
                  std::max(options.tolerance,
                           1e-6 * std::fabs(full->final_j)))
          << "method " << static_cast<int>(method) << " threads " << threads;
      EXPECT_EQ(RankingOrder(warm->scores), full_order)
          << "method " << static_cast<int>(method) << " threads " << threads;
    }
  }
}

// Warm-start fits are themselves bit-identical across thread counts (the
// incremental engine preserves the batch engine's determinism contract).
TEST(RpcLearnerWarmStartTest, WarmFitBitIdenticalAcrossThreadCounts) {
  const Orientation alpha = *Orientation::FromSigns({+1, -1});
  const Matrix normalized = FixtureData(alpha, 180, 61);
  RpcLearnOptions options;
  options.reprojection = ReprojectionMode::kWarmStart;
  options.seed = 7;

  options.num_threads = 1;
  const auto serial = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const auto parallel = RpcLearner(options).Fit(normalized, alpha);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->final_j, serial->final_j);
    ASSERT_EQ(parallel->scores.size(), serial->scores.size());
    for (int i = 0; i < serial->scores.size(); ++i) {
      EXPECT_EQ(parallel->scores[i], serial->scores[i])
          << "threads=" << threads << " row " << i;
    }
    EXPECT_EQ(parallel->iterations, serial->iterations);
  }
}

// Warm start composes with multi-restart fits (each restart owns its own
// incremental projector state).
TEST(RpcLearnerWarmStartTest, WarmStartWithRestartsMatchesFull) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix normalized = FixtureData(alpha, 150, 71);
  RpcLearnOptions options;
  options.restarts = 3;
  options.seed = 31;

  options.reprojection = ReprojectionMode::kFull;
  const auto full = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(full.ok());
  options.reprojection = ReprojectionMode::kWarmStart;
  const auto warm = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(warm.ok());
  EXPECT_NEAR(warm->final_j, full->final_j,
              std::max(options.tolerance, 1e-6 * std::fabs(full->final_j)));
  EXPECT_EQ(RankingOrder(warm->scores), RankingOrder(full->scores));
}

// Monotonicity and score bounds survive the warm-start path (Proposition 1
// invariants are properties of the learned curve, not of how Step 4 is
// scheduled).
TEST(RpcLearnerWarmStartTest, CoreGuaranteesHoldUnderWarmStart) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1, -1});
  const Matrix normalized = FixtureData(alpha, 200, 81);
  RpcLearnOptions options;
  options.reprojection = ReprojectionMode::kWarmStart;
  const auto fit = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->curve.CheckMonotonicity().strictly_monotone);
  for (int i = 0; i < fit->scores.size(); ++i) {
    EXPECT_GE(fit->scores[i], 0.0);
    EXPECT_LE(fit->scores[i], 1.0);
  }
  // The recorded (accepted) J sequence is non-increasing, warm or not.
  for (size_t t = 1; t < fit->j_history.size(); ++t) {
    EXPECT_LE(fit->j_history[t], fit->j_history[t - 1] + 1e-12) << "t=" << t;
  }
}

}  // namespace
}  // namespace rpc::core
