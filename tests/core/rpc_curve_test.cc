#include "core/rpc_curve.h"

#include <gtest/gtest.h>

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(RpcCurveTest, DiagonalCurveIsMonotoneAndEndsAtCorners) {
  const auto alpha = Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha.ok());
  const RpcCurve curve = RpcCurve::Diagonal(*alpha);
  EXPECT_TRUE(ApproxEqual(curve.Evaluate(0.0), alpha->WorstCorner(), 1e-12));
  EXPECT_TRUE(ApproxEqual(curve.Evaluate(1.0), alpha->BestCorner(), 1e-12));
  EXPECT_TRUE(curve.CheckMonotonicity().strictly_monotone);
}

TEST(RpcCurveTest, FromControlPointsValidatesCorners) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Matrix good{{0.0, 0.3, 0.7, 1.0}, {0.0, 0.2, 0.8, 1.0}};
  EXPECT_TRUE(RpcCurve::FromControlPoints(good, alpha).ok());
  Matrix bad_corner{{0.1, 0.3, 0.7, 1.0}, {0.0, 0.2, 0.8, 1.0}};
  EXPECT_FALSE(RpcCurve::FromControlPoints(bad_corner, alpha).ok());
}

TEST(RpcCurveTest, FromControlPointsRequiresInteriorControls) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Matrix on_boundary{{0.0, 0.0, 0.7, 1.0}, {0.0, 0.2, 0.8, 1.0}};
  EXPECT_FALSE(RpcCurve::FromControlPoints(on_boundary, alpha).ok());
  Matrix outside{{0.0, -0.1, 0.7, 1.0}, {0.0, 0.2, 0.8, 1.0}};
  EXPECT_FALSE(RpcCurve::FromControlPoints(outside, alpha).ok());
}

TEST(RpcCurveTest, FromControlPointsChecksShapes) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_FALSE(RpcCurve::FromControlPoints(Matrix(2, 1), alpha).ok());
  EXPECT_FALSE(
      RpcCurve::FromControlPoints(Matrix(3, 4, 0.5), alpha).ok());
}

TEST(RpcCurveTest, UncheckedAllowsFreeEndpointsInsideCube) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Matrix free_ends{{0.1, 0.3, 0.7, 0.9}, {0.2, 0.2, 0.8, 0.95}};
  EXPECT_TRUE(RpcCurve::FromControlPointsUnchecked(free_ends, alpha).ok());
  Matrix outside{{0.1, 0.3, 0.7, 1.2}, {0.2, 0.2, 0.8, 0.95}};
  EXPECT_FALSE(
      RpcCurve::FromControlPointsUnchecked(outside, alpha).ok());
}

TEST(RpcCurveTest, CostOrientedCurveDecreasesInCostCoordinates) {
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const RpcCurve curve = RpcCurve::Diagonal(*alpha);
  const Vector start = curve.Evaluate(0.0);
  const Vector end = curve.Evaluate(1.0);
  EXPECT_LT(start[0], end[0]);  // benefit rises
  EXPECT_GT(start[2], end[2]);  // cost falls
}

TEST(RpcCurveTest, SampleRowsFollowS) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const RpcCurve curve = RpcCurve::Diagonal(alpha);
  const Matrix samples = curve.Sample(4);
  ASSERT_EQ(samples.rows(), 5);
  EXPECT_TRUE(ApproxEqual(samples.Row(2), curve.Evaluate(0.5), 1e-12));
}

TEST(RpcCurveTest, DegreeFiveCurveAccepted) {
  const Orientation alpha = Orientation::AllBenefit(1);
  Matrix control(1, 6);
  control(0, 0) = 0.0;
  control(0, 5) = 1.0;
  for (int r = 1; r <= 4; ++r) control(0, r) = 0.2 * r;
  const auto curve = RpcCurve::FromControlPoints(control, alpha);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->degree(), 5);
}

}  // namespace
}  // namespace rpc::core
