#include "core/rpc_learner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/normalizer.h"
#include "rank/metrics.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix NormalizedLatentData(const Orientation& alpha, int n, double noise,
                            uint64_t seed, Vector* latent = nullptr) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = n, .noise_sigma = noise, .control_margin = 0.1,
              .seed = seed});
  auto norm = data::Normalizer::Fit(sample.data);
  EXPECT_TRUE(norm.ok());
  if (latent != nullptr) *latent = sample.latent;
  return norm->Transform(sample.data);
}

TEST(RpcLearnerTest, FitsMonotoneCloudWithLowResidual) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 200, 0.02, 31);
  const RpcLearner learner;
  const auto fit = learner.Fit(data, alpha);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_GT(fit->explained_variance, 0.9);
  EXPECT_TRUE(fit->curve.CheckMonotonicity().strictly_monotone);
}

TEST(RpcLearnerTest, RecoversLatentOrder) {
  const Orientation alpha = Orientation::AllBenefit(3);
  Vector latent;
  const Matrix data = NormalizedLatentData(alpha, 150, 0.02, 32, &latent);
  const RpcLearner learner;
  const auto fit = learner.Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(rank::KendallTauB(fit->scores, latent), 0.95);
}

TEST(RpcLearnerTest, JHistoryIsNonIncreasing) {
  // Proposition 2: the alternating iteration yields a decaying J sequence.
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 120, 0.05, 33);
  RpcLearnOptions options;
  options.record_history = true;
  const RpcLearner learner(options);
  const auto fit = learner.Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  ASSERT_GE(fit->j_history.size(), 2u);
  for (size_t i = 0; i + 1 < fit->j_history.size() - 1; ++i) {
    EXPECT_GE(fit->j_history[i] + 1e-9, fit->j_history[i + 1])
        << "iteration " << i;
  }
}

TEST(RpcLearnerTest, ScoresWithinUnitInterval) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 100, 0.05, 34);
  const auto fit = RpcLearner().Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  for (int i = 0; i < fit->scores.size(); ++i) {
    EXPECT_GE(fit->scores[i], 0.0);
    EXPECT_LE(fit->scores[i], 1.0);
  }
}

TEST(RpcLearnerTest, MixedOrientationEndpointsPinned) {
  const auto alpha = Orientation::FromSigns({1, -1, 1, -1});
  ASSERT_TRUE(alpha.ok());
  const Matrix data = NormalizedLatentData(*alpha, 150, 0.03, 35);
  const auto fit = RpcLearner().Fit(data, *alpha);
  ASSERT_TRUE(fit.ok());
  const Matrix& p = fit->curve.control_points();
  EXPECT_TRUE(ApproxEqual(p.Column(0), alpha->WorstCorner(), 1e-9));
  EXPECT_TRUE(ApproxEqual(p.Column(3), alpha->BestCorner(), 1e-9));
  EXPECT_TRUE(fit->curve.CheckMonotonicity().strictly_monotone);
}

TEST(RpcLearnerTest, LearnEndPointsVariantStaysInCube) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 150, 0.03, 36);
  RpcLearnOptions options;
  options.fix_end_points = false;
  const auto fit = RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  const Matrix& p = fit->curve.control_points();
  for (int j = 0; j < p.rows(); ++j) {
    for (int r = 0; r < p.cols(); ++r) {
      EXPECT_GE(p(j, r), 0.0);
      EXPECT_LE(p(j, r), 1.0);
    }
  }
}

TEST(RpcLearnerTest, PseudoInverseUpdateAlsoFits) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 150, 0.02, 37);
  RpcLearnOptions options;
  options.use_pseudo_inverse_update = true;
  const auto fit = RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->explained_variance, 0.85);
}

TEST(RpcLearnerTest, QuinticProjectionMatchesGss) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Vector latent;
  const Matrix data = NormalizedLatentData(alpha, 100, 0.02, 38, &latent);
  RpcLearnOptions gss_options;
  RpcLearnOptions quintic_options;
  quintic_options.projection.method = opt::ProjectionMethod::kQuinticRoots;
  const auto gss_fit = RpcLearner(gss_options).Fit(data, alpha);
  const auto quintic_fit = RpcLearner(quintic_options).Fit(data, alpha);
  ASSERT_TRUE(gss_fit.ok());
  ASSERT_TRUE(quintic_fit.ok());
  EXPECT_NEAR(gss_fit->final_j, quintic_fit->final_j,
              0.05 * (1.0 + gss_fit->final_j));
  EXPECT_GT(rank::KendallTauB(gss_fit->scores, quintic_fit->scores), 0.98);
}

TEST(RpcLearnerTest, DeterministicInitsAreDeterministic) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 80, 0.03, 39);
  for (RpcInit init : {RpcInit::kDiagonal, RpcInit::kQuantiles}) {
    RpcLearnOptions options;
    options.init = init;
    options.seed = 1;
    const auto a = RpcLearner(options).Fit(data, alpha);
    options.seed = 2;  // seed must not matter for deterministic inits
    const auto b = RpcLearner(options).Fit(data, alpha);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(ApproxEqual(a->curve.control_points(),
                            b->curve.control_points(), 1e-12));
  }
}

TEST(RpcLearnerTest, DegreeTwoAndFourFit) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Matrix data = NormalizedLatentData(alpha, 100, 0.03, 40);
  for (int degree : {2, 4}) {
    RpcLearnOptions options;
    options.degree = degree;
    const auto fit = RpcLearner(options).Fit(data, alpha);
    ASSERT_TRUE(fit.ok()) << "degree " << degree;
    EXPECT_EQ(fit->curve.degree(), degree);
    EXPECT_GT(fit->explained_variance, 0.6);
  }
}

TEST(RpcLearnerTest, InputValidation) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const RpcLearner learner;
  // Not normalised.
  Matrix raw{{10.0, 5.0}, {20.0, 2.0}, {30.0, 1.0}, {40.0, 0.5}};
  const auto fit = learner.Fit(raw, alpha);
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kFailedPrecondition);
  // Too few rows (pinned end points allow down to 2 rows; 1 is never
  // enough).
  Matrix tiny{{0.5, 0.5}};
  EXPECT_FALSE(learner.Fit(tiny, alpha).ok());
  // Free end points need degree + 1 rows.
  RpcLearnOptions free_ends;
  free_ends.fix_end_points = false;
  Matrix three{{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  EXPECT_FALSE(RpcLearner(free_ends).Fit(three, alpha).ok());
  // Wrong alpha dimension.
  const Matrix data = NormalizedLatentData(alpha, 50, 0.02, 41);
  EXPECT_FALSE(learner.Fit(data, Orientation::AllBenefit(3)).ok());
  // Bad degree.
  RpcLearnOptions bad_degree;
  bad_degree.degree = 0;
  EXPECT_FALSE(RpcLearner(bad_degree).Fit(data, alpha).ok());
}

TEST(RescaleToUnitTest, MapsRangeToUnit) {
  const Vector scores{0.2, 0.6, 0.4};
  const Vector rescaled = RescaleToUnit(scores);
  EXPECT_DOUBLE_EQ(rescaled[0], 0.0);
  EXPECT_DOUBLE_EQ(rescaled[1], 1.0);
  EXPECT_DOUBLE_EQ(rescaled[2], 0.5);
}

TEST(RescaleToUnitTest, DegenerateAndEmpty) {
  const Vector constant{0.5, 0.5};
  const Vector rescaled = RescaleToUnit(constant);
  EXPECT_DOUBLE_EQ(rescaled[0], 0.5);
  EXPECT_EQ(RescaleToUnit(Vector{}).size(), 0);
}

}  // namespace
}  // namespace rpc::core
