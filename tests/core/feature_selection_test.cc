#include "core/feature_selection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

// Dataset where attribute 2 is nearly pure noise while 0 and 1 carry the
// latent order.
data::Dataset InformativePlusNoise(int n, uint64_t seed) {
  Rng rng(seed);
  Matrix values(n, 3);
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform();
    values(i, 0) = t + rng.Gaussian(0.0, 0.01);
    values(i, 1) = t * t + rng.Gaussian(0.0, 0.01);
    values(i, 2) = rng.Uniform();  // uninformative
  }
  auto ds = data::Dataset::FromMatrix(values, {"strong", "curved", "noise"},
                                      {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(RankAttributesTest, InformativeAttributesRankFirst) {
  const data::Dataset ds = InformativePlusNoise(150, 51);
  const Orientation alpha = Orientation::AllBenefit(3);
  const auto ranker = RpcRanker::Fit(ds.values(), alpha);
  ASSERT_TRUE(ranker.ok());
  const auto importances = RankAttributes(*ranker, ds);
  ASSERT_TRUE(importances.ok());
  ASSERT_EQ(importances->size(), 3u);
  // The noise attribute must come last.
  EXPECT_EQ(importances->back().name, "noise");
  EXPECT_GT((*importances)[0].score_alignment, 0.8);
  EXPECT_LT(importances->back().score_alignment, 0.5);
}

TEST(RankAttributesTest, DimensionMismatchRejected) {
  const data::Dataset ds = InformativePlusNoise(60, 52);
  const Orientation alpha = Orientation::AllBenefit(3);
  const auto ranker = RpcRanker::Fit(ds.values(), alpha);
  ASSERT_TRUE(ranker.ok());
  const auto two_cols = ds.SelectAttributes({0, 1});
  ASSERT_TRUE(two_cols.ok());
  EXPECT_FALSE(RankAttributes(*ranker, *two_cols).ok());
}

TEST(GreedySelectTest, FindsSmallSubsetReachingTarget) {
  // The reference ranking is mildly influenced by the noise column too, so
  // a realistic target is ~0.8 tau, reachable from the informative pair.
  const data::Dataset ds = InformativePlusNoise(120, 53);
  const Orientation alpha = Orientation::AllBenefit(3);
  const auto result = GreedySelectAttributes(ds, alpha, 0.8);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->achieved_tau, 0.8);
  // The informative attributes suffice; the noise column is not needed.
  EXPECT_LE(result->selected.size(), 2u);
  // The first pick is not the noise column.
  EXPECT_NE(result->selected[0], 2);
}

TEST(GreedySelectTest, TauTrajectoryIsRecorded) {
  const data::Dataset ds = InformativePlusNoise(100, 54);
  const Orientation alpha = Orientation::AllBenefit(3);
  const auto result = GreedySelectAttributes(ds, alpha, 0.999);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected.size(), result->tau_trajectory.size());
  EXPECT_GE(result->tau_trajectory.back(), result->tau_trajectory.front());
}

TEST(GreedySelectTest, RejectsTooFewAttributes) {
  Matrix values(10, 1);
  for (int i = 0; i < 10; ++i) values(i, 0) = i;
  auto ds = data::Dataset::FromMatrix(values, {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(
      GreedySelectAttributes(*ds, Orientation::AllBenefit(1), 0.9).ok());
}

}  // namespace
}  // namespace rpc::core
