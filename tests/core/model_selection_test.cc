#include "core/model_selection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/bezier.h"
#include "data/generators.h"
#include "data/normalizer.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using order::Orientation;

// Strongly bent monotone data: the crescent (quarter arc) whose sagitta
// (~0.2 of the box) a straight chord cannot follow. Random latent-curve
// draws can be near-straight, which would make the degree comparison
// vacuous.
Matrix BentNormalizedData(int n, uint64_t seed) {
  const Matrix data = data::GenerateCrescent(n, 0.06, seed);
  auto norm = data::Normalizer::Fit(data);
  EXPECT_TRUE(norm.ok());
  return norm->Transform(data);
}

TEST(DegreeSelectionTest, PrefersCubicOnBentData) {
  const Matrix data = BentNormalizedData(150, 71);
  const auto result = SelectDegreeByCrossValidation(
      data, Orientation::AllBenefit(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Section 4.2's claim, automated: the winner is the cubic (higher
  // degrees don't clear the improvement margin; k < 3 underfits).
  EXPECT_EQ(result->best_degree, 3);
  ASSERT_EQ(result->scores.size(), 5u);
  // Degree 1 (a straight line) is clearly worse on bent data, and the
  // quintic overfits into non-monotonicity somewhere across the folds —
  // the two failure modes Section 4.2 names.
  double line_j = 0.0, cubic_j = 0.0;
  bool quintic_monotone = true;
  for (const auto& score : result->scores) {
    if (score.degree == 1) line_j = score.mean_holdout_j;
    if (score.degree == 3) cubic_j = score.mean_holdout_j;
    if (score.degree == 5) quintic_monotone = score.always_monotone;
  }
  EXPECT_GT(line_j, 2.0 * cubic_j);
  EXPECT_FALSE(quintic_monotone);
}

TEST(DegreeSelectionTest, RespectsCandidateList) {
  const Matrix data = BentNormalizedData(100, 72);
  DegreeSelectionOptions options;
  options.candidate_degrees = {2, 3};
  const auto result = SelectDegreeByCrossValidation(
      data, Orientation::AllBenefit(2), {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scores.size(), 2u);
  EXPECT_TRUE(result->best_degree == 2 || result->best_degree == 3);
}

TEST(DegreeSelectionTest, InputValidation) {
  const Matrix data = BentNormalizedData(60, 73);
  DegreeSelectionOptions bad_folds;
  bad_folds.folds = 1;
  EXPECT_FALSE(SelectDegreeByCrossValidation(
                   data, Orientation::AllBenefit(2), {}, bad_folds)
                   .ok());
  DegreeSelectionOptions no_candidates;
  no_candidates.candidate_degrees = {};
  EXPECT_FALSE(SelectDegreeByCrossValidation(
                   data, Orientation::AllBenefit(2), {}, no_candidates)
                   .ok());
  DegreeSelectionOptions too_small;
  too_small.folds = 40;  // 60 rows cannot feed 40 folds at degree 5
  EXPECT_FALSE(SelectDegreeByCrossValidation(
                   data, Orientation::AllBenefit(2), {}, too_small)
                   .ok());
}

TEST(RestartTest, MoreRestartsNeverWorseJ) {
  const Matrix data = BentNormalizedData(120, 74);
  const Orientation alpha = Orientation::AllBenefit(2);
  RpcLearnOptions single;
  single.seed = 5;
  RpcLearnOptions multi = single;
  multi.restarts = 5;
  const auto one = RpcLearner(single).Fit(data, alpha);
  const auto five = RpcLearner(multi).Fit(data, alpha);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(five.ok());
  // The first restart uses the same seed, so the best-of-five can only
  // improve on the single run.
  EXPECT_LE(five->final_j, one->final_j + 1e-12);
}

TEST(RestartTest, InvalidRestartCountRejected) {
  const Matrix data = BentNormalizedData(40, 75);
  RpcLearnOptions options;
  options.restarts = 0;
  EXPECT_FALSE(
      RpcLearner(options).Fit(data, Orientation::AllBenefit(2)).ok());
}

}  // namespace
}  // namespace rpc::core
