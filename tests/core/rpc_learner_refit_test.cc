// RpcLearner::Refit — the streaming tier's warm-refresh primitive: seeded
// from a previous fit's control points and per-row s*, it must converge to
// the same optimum as a cold fit (measured by the same final full
// projection), be deterministic across thread counts, and cost markedly
// fewer outer iterations than the cold fit it replaces.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "order/orientation.h"
#include "rank/ranking_list.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix FixtureData(const Orientation& alpha, int n, uint64_t seed) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
              .seed = seed});
  const auto norm = data::Normalizer::Fit(sample.data);
  EXPECT_TRUE(norm.ok());
  return norm->Transform(sample.data);
}

RpcLearnOptions WarmOptions() {
  RpcLearnOptions options;
  options.reprojection = ReprojectionMode::kWarmStart;
  options.reprojection_adaptive_brackets = true;
  options.seed = 17;
  return options;
}

TEST(RpcLearnerRefitTest, SeededRefitReconvergesToTheColdOptimum) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix normalized = FixtureData(alpha, 200, 91);
  const RpcLearner learner(WarmOptions());
  const auto cold = learner.Fit(normalized, alpha);
  ASSERT_TRUE(cold.ok());

  RpcWarmStartState seed;
  seed.control_points = cold->curve.control_points();
  seed.scores = cold->scores;
  const auto refit = learner.Refit(normalized, alpha, seed);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();

  // Restarting at the optimum: J cannot get worse (same final full
  // projection measures both), the ranking is unchanged, and convergence
  // is near-immediate.
  EXPECT_LE(refit->final_j, cold->final_j + 1e-9);
  EXPECT_EQ(rank::RankingList(refit->scores).OrderedIndices(),
            rank::RankingList(cold->scores).OrderedIndices());
  EXPECT_LE(refit->iterations, 3);
  EXPECT_LT(refit->iterations, cold->iterations);
}

TEST(RpcLearnerRefitTest, RefitBitIdenticalAcrossThreadCounts) {
  const Orientation alpha = *Orientation::FromSigns({+1, -1});
  const Matrix normalized = FixtureData(alpha, 160, 93);
  RpcLearnOptions options = WarmOptions();
  const auto cold = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(cold.ok());

  RpcWarmStartState seed;
  seed.control_points = cold->curve.control_points();
  seed.scores = cold->scores;
  // Perturb the seed slightly so the refit has real work to do.
  for (int j = 0; j < seed.control_points.rows(); ++j) {
    seed.control_points(j, 1) =
        std::min(0.95, seed.control_points(j, 1) + 0.02);
  }

  options.num_threads = 1;
  const auto serial = RpcLearner(options).Refit(normalized, alpha, seed);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const auto parallel = RpcLearner(options).Refit(normalized, alpha, seed);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->final_j, serial->final_j) << "threads " << threads;
    ASSERT_EQ(parallel->scores.size(), serial->scores.size());
    for (int i = 0; i < serial->scores.size(); ++i) {
      EXPECT_EQ(parallel->scores[i], serial->scores[i])
          << "threads " << threads << " row " << i;
    }
    EXPECT_EQ(parallel->iterations, serial->iterations);
  }
}

TEST(RpcLearnerRefitTest, RefitWithoutScoresSeedsControlPointsOnly) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix normalized = FixtureData(alpha, 120, 95);
  const RpcLearner learner(WarmOptions());
  const auto cold = learner.Fit(normalized, alpha);
  ASSERT_TRUE(cold.ok());

  RpcWarmStartState seed;
  seed.control_points = cold->curve.control_points();
  const auto refit = learner.Refit(normalized, alpha, seed);
  ASSERT_TRUE(refit.ok());
  EXPECT_NEAR(refit->final_j, cold->final_j,
              std::max(1e-7, 1e-6 * std::fabs(cold->final_j)));
}

TEST(RpcLearnerRefitTest, RefitUnderFullReprojectionStillWorks) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix normalized = FixtureData(alpha, 100, 97);
  RpcLearnOptions options;
  options.reprojection = ReprojectionMode::kFull;
  options.seed = 29;
  const RpcLearner learner(options);
  const auto cold = learner.Fit(normalized, alpha);
  ASSERT_TRUE(cold.ok());
  RpcWarmStartState seed;
  seed.control_points = cold->curve.control_points();
  seed.scores = cold->scores;  // ignored by kFull, must not break
  const auto refit = learner.Refit(normalized, alpha, seed);
  ASSERT_TRUE(refit.ok());
  EXPECT_LE(refit->final_j, cold->final_j + 1e-9);
}

TEST(RpcLearnerRefitTest, RejectsMalformedSeeds) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix normalized = FixtureData(alpha, 60, 99);
  const RpcLearner learner(WarmOptions());

  RpcWarmStartState bad_shape;
  bad_shape.control_points = Matrix(3, 4);  // d mismatch
  EXPECT_FALSE(learner.Refit(normalized, alpha, bad_shape).ok());

  RpcWarmStartState bad_scores;
  bad_scores.control_points = Matrix(2, 4);
  bad_scores.scores = Vector(7);  // neither 0 nor n
  EXPECT_FALSE(learner.Refit(normalized, alpha, bad_scores).ok());
}

// The fused projection+accumulation pass and the adaptive warm-start
// brackets both ride the ordinary Fit path; a fit with adaptive brackets
// must agree with the fixed-bracket fit on the measured optimum (same
// final full projection) and the ranking, for every thread count.
TEST(RpcLearnerRefitTest, AdaptiveBracketsMatchFixedBrackets) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1});
  const Matrix normalized = FixtureData(alpha, 220, 101);
  RpcLearnOptions options;
  options.reprojection = ReprojectionMode::kWarmStart;
  options.seed = 55;

  options.reprojection_adaptive_brackets = false;
  const auto fixed = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(fixed.ok());

  options.reprojection_adaptive_brackets = true;
  options.num_threads = 1;
  const auto adaptive_serial = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(adaptive_serial.ok());
  EXPECT_NEAR(adaptive_serial->final_j, fixed->final_j,
              std::max(1e-7, 1e-6 * std::fabs(fixed->final_j)));
  EXPECT_EQ(rank::RankingList(adaptive_serial->scores).OrderedIndices(),
            rank::RankingList(fixed->scores).OrderedIndices());

  // Adaptive fits stay bit-identical across thread counts.
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const auto adaptive = RpcLearner(options).Fit(normalized, alpha);
    ASSERT_TRUE(adaptive.ok());
    EXPECT_EQ(adaptive->final_j, adaptive_serial->final_j);
    for (int i = 0; i < adaptive_serial->scores.size(); ++i) {
      EXPECT_EQ(adaptive->scores[i], adaptive_serial->scores[i]);
    }
  }
}

}  // namespace
}  // namespace rpc::core
