#include "core/model_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/rpc_ranker.h"
#include "data/generators.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

PortableRpcModel FittedModel() {
  const data::Dataset ds = data::GenerateCountryData(60, 3, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  EXPECT_TRUE(ranker.ok());
  PortableRpcModel model;
  model.alpha = *alpha;
  model.mins = ranker->normalizer().mins();
  model.maxs = ranker->normalizer().maxs();
  model.control_points = ranker->PortableControlPoints();
  return model;
}

TEST(ModelIoTest, SerializeDeserializeRoundTrip) {
  const PortableRpcModel model = FittedModel();
  const std::string text = model.Serialize();
  const auto parsed = PortableRpcModel::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ApproxEqual(parsed->control_points, model.control_points,
                          1e-15));
  EXPECT_TRUE(ApproxEqual(parsed->mins, model.mins, 1e-15));
  EXPECT_TRUE(ApproxEqual(parsed->maxs, model.maxs, 1e-15));
  EXPECT_EQ(parsed->alpha, model.alpha);
}

TEST(ModelIoTest, ScoresSurviveTheRoundTrip) {
  const data::Dataset ds = data::GenerateCountryData(60, 3, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  PortableRpcModel model;
  model.alpha = *alpha;
  model.mins = ranker->normalizer().mins();
  model.maxs = ranker->normalizer().maxs();
  model.control_points = ranker->PortableControlPoints();
  const auto reloaded = PortableRpcModel::Deserialize(model.Serialize());
  ASSERT_TRUE(reloaded.ok());
  for (int i = 0; i < 10; ++i) {
    const Vector x = ds.row(i);
    const auto score = reloaded->Score(x);
    ASSERT_TRUE(score.ok());
    EXPECT_NEAR(*score, ranker->Score(x), 1e-9) << "row " << i;
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const PortableRpcModel model = FittedModel();
  const std::string path = testing::TempDir() + "/rpc_model_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(ApproxEqual(loaded->control_points, model.control_points,
                          1e-15));
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadModel("/nonexistent/rpc_model.txt").ok());
}

TEST(ModelIoTest, RejectsCorruptInputs) {
  const PortableRpcModel model = FittedModel();
  const std::string good = model.Serialize();
  // Header missing.
  EXPECT_FALSE(PortableRpcModel::Deserialize("dimension 2\n").ok());
  // Garbage line.
  EXPECT_FALSE(
      PortableRpcModel::Deserialize(good + "mystery 42\n").ok());
  // Truncated: drop the last control point line.
  const size_t cut = good.rfind("control");
  EXPECT_FALSE(PortableRpcModel::Deserialize(good.substr(0, cut)).ok());
  // Alpha entry corrupted.
  std::string bad_alpha = good;
  const size_t pos = bad_alpha.find("+1");
  bad_alpha.replace(pos, 2, "+7");
  EXPECT_FALSE(PortableRpcModel::Deserialize(bad_alpha).ok());
}

TEST(ModelIoTest, RejectsDegenerateBounds) {
  PortableRpcModel model = FittedModel();
  model.maxs[0] = model.mins[0];  // zero range
  EXPECT_FALSE(PortableRpcModel::Deserialize(model.Serialize()).ok());
}

TEST(ModelIoTest, RejectsDimensionMismatchInScore) {
  const PortableRpcModel model = FittedModel();
  EXPECT_FALSE(model.Score(Vector{1.0, 2.0}).ok());
}

TEST(ModelIoTest, DeserializeValidatesGeometry) {
  // Control point outside [0,1] must be rejected even in a well-formed
  // file.
  PortableRpcModel model = FittedModel();
  model.control_points(0, 1) = 1.5;
  EXPECT_FALSE(PortableRpcModel::Deserialize(model.Serialize()).ok());
}

}  // namespace
}  // namespace rpc::core
