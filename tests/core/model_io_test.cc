#include "core/model_io.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

PortableRpcModel FittedModel() {
  const data::Dataset ds = data::GenerateCountryData(60, 3, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  EXPECT_TRUE(ranker.ok());
  PortableRpcModel model;
  model.alpha = *alpha;
  model.mins = ranker->normalizer().mins();
  model.maxs = ranker->normalizer().maxs();
  model.control_points = ranker->PortableControlPoints();
  return model;
}

TEST(ModelIoTest, SerializeDeserializeRoundTrip) {
  const PortableRpcModel model = FittedModel();
  const std::string text = model.Serialize();
  const auto parsed = PortableRpcModel::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ApproxEqual(parsed->control_points, model.control_points,
                          1e-15));
  EXPECT_TRUE(ApproxEqual(parsed->mins, model.mins, 1e-15));
  EXPECT_TRUE(ApproxEqual(parsed->maxs, model.maxs, 1e-15));
  EXPECT_EQ(parsed->alpha, model.alpha);
}

TEST(ModelIoTest, ScoresSurviveTheRoundTrip) {
  const data::Dataset ds = data::GenerateCountryData(60, 3, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  PortableRpcModel model;
  model.alpha = *alpha;
  model.mins = ranker->normalizer().mins();
  model.maxs = ranker->normalizer().maxs();
  model.control_points = ranker->PortableControlPoints();
  const auto reloaded = PortableRpcModel::Deserialize(model.Serialize());
  ASSERT_TRUE(reloaded.ok());
  for (int i = 0; i < 10; ++i) {
    const Vector x = ds.row(i);
    const auto score = reloaded->Score(x);
    ASSERT_TRUE(score.ok());
    EXPECT_NEAR(*score, ranker->Score(x), 1e-9) << "row " << i;
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const PortableRpcModel model = FittedModel();
  const std::string path = testing::TempDir() + "/rpc_model_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(ApproxEqual(loaded->control_points, model.control_points,
                          1e-15));
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadModel("/nonexistent/rpc_model.txt").ok());
}

TEST(ModelIoTest, RejectsCorruptInputs) {
  const PortableRpcModel model = FittedModel();
  const std::string good = model.Serialize();
  // Header missing.
  EXPECT_FALSE(PortableRpcModel::Deserialize("dimension 2\n").ok());
  // Garbage line.
  EXPECT_FALSE(
      PortableRpcModel::Deserialize(good + "mystery 42\n").ok());
  // Truncated: drop the last control point line.
  const size_t cut = good.rfind("control");
  EXPECT_FALSE(PortableRpcModel::Deserialize(good.substr(0, cut)).ok());
  // Alpha entry corrupted.
  std::string bad_alpha = good;
  const size_t pos = bad_alpha.find("+1");
  bad_alpha.replace(pos, 2, "+7");
  EXPECT_FALSE(PortableRpcModel::Deserialize(bad_alpha).ok());
}

TEST(ModelIoTest, RejectsDegenerateBounds) {
  PortableRpcModel model = FittedModel();
  model.maxs[0] = model.mins[0];  // zero range
  EXPECT_FALSE(PortableRpcModel::Deserialize(model.Serialize()).ok());
}

TEST(ModelIoTest, RejectsDimensionMismatchInScore) {
  const PortableRpcModel model = FittedModel();
  EXPECT_FALSE(model.Score(Vector{1.0, 2.0}).ok());
}

TEST(ModelIoTest, DeserializeValidatesGeometry) {
  // Control point outside [0,1] must be rejected even in a well-formed
  // file.
  PortableRpcModel model = FittedModel();
  model.control_points(0, 1) = 1.5;
  EXPECT_FALSE(PortableRpcModel::Deserialize(model.Serialize()).ok());
}

// Versioned snapshots (the streaming tier's published models) round-trip
// the version; unversioned files keep the pre-versioning byte format.
TEST(ModelIoTest, VersionRoundTripsAndStaysOptional) {
  PortableRpcModel model = FittedModel();
  EXPECT_EQ(model.Serialize().find("version"), std::string::npos);

  model.version = 42;
  const std::string text = model.Serialize();
  EXPECT_NE(text.find("version 42"), std::string::npos);
  const auto parsed = PortableRpcModel::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, 42u);

  EXPECT_FALSE(
      PortableRpcModel::Deserialize("rpc-model v1\nversion -3\n").ok());
  EXPECT_FALSE(
      PortableRpcModel::Deserialize("rpc-model v1\nversion x\n").ok());
}

// Round-trip fuzz across random degrees, dimensions, orientations, bounds
// and versions: Serialize -> Deserialize must reproduce every field
// bit-exactly (%.17g is lossless for doubles) and scoring through the
// reloaded model must equal the original bit for bit.
TEST(ModelIoTest, RoundTripFuzzAcrossDegreesAndDimensions) {
  Rng rng(20260726);
  int accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(8));
    const int degree = 1 + static_cast<int>(rng.UniformInt(6));

    std::vector<int> signs(static_cast<size_t>(d));
    for (int j = 0; j < d; ++j) {
      signs[static_cast<size_t>(j)] = rng.Uniform() < 0.5 ? -1 : 1;
    }
    const auto alpha = Orientation::FromSigns(signs);
    ASSERT_TRUE(alpha.ok());

    PortableRpcModel model;
    model.alpha = *alpha;
    model.version = rng.UniformInt(1u << 30);
    model.mins = Vector(d);
    model.maxs = Vector(d);
    for (int j = 0; j < d; ++j) {
      model.mins[j] = rng.Uniform(-1e3, 1e3);
      model.maxs[j] = model.mins[j] + rng.Uniform(1e-3, 1e3);
    }
    // A monotone control polygon from the worst to the best corner keeps
    // the geometry valid for every degree (Proposition 1 shape).
    model.control_points = Matrix(d, degree + 1);
    const Vector worst = alpha->WorstCorner();
    const Vector best = alpha->BestCorner();
    for (int j = 0; j < d; ++j) {
      for (int r = 0; r <= degree; ++r) {
        const double frac =
            degree == 0 ? 0.0 : static_cast<double>(r) / degree;
        double v = worst[j] + frac * (best[j] - worst[j]);
        if (r > 0 && r < degree) {
          v = std::clamp(v + rng.Uniform(-0.05, 0.05), 0.01, 0.99);
        }
        model.control_points(j, r) = v;
      }
    }

    const auto parsed = PortableRpcModel::Deserialize(model.Serialize());
    ASSERT_TRUE(parsed.ok())
        << "trial " << trial << " d=" << d << " degree=" << degree << ": "
        << parsed.status().ToString();
    ++accepted;
    EXPECT_EQ(parsed->version, model.version);
    EXPECT_EQ(parsed->alpha, model.alpha);
    for (int j = 0; j < d; ++j) {
      EXPECT_EQ(parsed->mins[j], model.mins[j]) << "trial " << trial;
      EXPECT_EQ(parsed->maxs[j], model.maxs[j]) << "trial " << trial;
      for (int r = 0; r <= degree; ++r) {
        EXPECT_EQ(parsed->control_points(j, r), model.control_points(j, r))
            << "trial " << trial;
      }
    }
    // Scoring equivalence on a random probe (exact: same parsed doubles).
    Vector probe(d);
    for (int j = 0; j < d; ++j) {
      probe[j] = rng.Uniform(model.mins[j], model.maxs[j]);
    }
    const auto score_original = model.Score(probe);
    const auto score_reloaded = parsed->Score(probe);
    ASSERT_TRUE(score_original.ok() && score_reloaded.ok());
    EXPECT_EQ(*score_original, *score_reloaded) << "trial " << trial;
  }
  EXPECT_EQ(accepted, 60);
}

// Corruption fuzz: the checksum line covers every byte before itself, so
// any damage inside that coverage — truncation, a single flipped bit,
// appended garbage — must be rejected, never half-parsed into a model.
// (The final newline sits after the covered bytes and after the checksum
// digits; it is the one byte whose mutation is semantically invisible.)
TEST(ModelIoTest, EveryTruncationOfSerializedModelIsRejected) {
  const std::string good = FittedModel().Serialize();
  ASSERT_TRUE(PortableRpcModel::Deserialize(good).ok());
  // Dropping only the final '\n' leaves the checksum line intact and its
  // coverage unchanged: still a valid model.
  ASSERT_TRUE(
      PortableRpcModel::Deserialize(good.substr(0, good.size() - 1)).ok());
  // Every shorter prefix loses checksum digits or covered bytes: rejected.
  for (size_t length = 0; length + 1 < good.size(); ++length) {
    EXPECT_FALSE(PortableRpcModel::Deserialize(good.substr(0, length)).ok())
        << "prefix of length " << length;
  }
}

TEST(ModelIoTest, EverySingleBitFlipInSerializedModelIsRejected) {
  std::string text = FittedModel().Serialize();
  for (size_t byte = 0; byte + 1 < text.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      text[byte] ^= static_cast<char>(1 << bit);
      EXPECT_FALSE(PortableRpcModel::Deserialize(text).ok())
          << "byte " << byte << " bit " << bit;
      text[byte] ^= static_cast<char>(1 << bit);
    }
  }
  // Sanity: the restored buffer still parses.
  EXPECT_TRUE(PortableRpcModel::Deserialize(text).ok());
}

TEST(ModelIoTest, TrailingGarbageAfterChecksumIsRejected) {
  const std::string good = FittedModel().Serialize();
  EXPECT_FALSE(PortableRpcModel::Deserialize(good + "x\n").ok());
  EXPECT_FALSE(PortableRpcModel::Deserialize(good + "dimension 3\n").ok());
  // Even a second, self-consistent checksum line is garbage.
  EXPECT_FALSE(
      PortableRpcModel::Deserialize(good + "crc32c deadbeef\n").ok());
  EXPECT_FALSE(
      PortableRpcModel::Deserialize(good + std::string(64, '\0')).ok());
  // A full second model appended is garbage, not a concatenation format.
  EXPECT_FALSE(PortableRpcModel::Deserialize(good + good).ok());
}

}  // namespace
}  // namespace rpc::core
