#include "core/rpc_ranker.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "linalg/stats.h"
#include "rank/metrics.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(RpcRankerTest, FitsRawDataEndToEnd) {
  // Raw (unnormalised) country-like magnitudes.
  const data::Dataset ds = data::GenerateCountryData(80, 3, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  EXPECT_EQ(ranker->ParameterCount().value(), 16);  // 4d with d = 4
  EXPECT_EQ(ranker->name(), "RPC");
}

TEST(RpcRankerTest, ScoreIncreasesTowardBestCorner) {
  const data::Dataset ds = data::GenerateCountryData(80, 4, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  // A dominated observation scores below a dominating one.
  const Vector poor{500.0, 45.0, 300.0, 200.0};
  const Vector rich{60000.0, 80.0, 3.0, 3.0};
  EXPECT_LT(ranker->Score(poor), ranker->Score(rich));
}

TEST(RpcRankerTest, FitDatasetFiltersMissingRows) {
  data::Dataset ds = data::GenerateJournalData(100, 20, 5, false);
  const Orientation alpha = Orientation::AllBenefit(5);
  const auto ranker = RpcRanker::FitDataset(ds, alpha);
  ASSERT_TRUE(ranker.ok());
  // Scores defined for all complete rows.
  const data::Dataset complete = ds.FilterCompleteRows();
  const Vector scores = ranker->ScoreRows(complete.values());
  EXPECT_EQ(scores.size(), complete.num_objects());
}

TEST(RpcRankerTest, UnitScoresSpanZeroToOne) {
  const data::Dataset ds = data::GenerateCountryData(60, 6, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const Vector unit = ranker->UnitScores();
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < unit.size(); ++i) {
    lo = std::min(lo, unit[i]);
    hi = std::max(hi, unit[i]);
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(RpcRankerTest, ControlPointsReportedInOriginalUnits) {
  const data::Dataset ds = data::GenerateCountryData(60, 7, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const Matrix points = ranker->ControlPointsInOriginalSpace();
  EXPECT_EQ(points.rows(), 4);  // p0..p3
  EXPECT_EQ(points.cols(), 4);  // four indicators
  // p0 is the worst corner: min GDP, min LEB, max IMR, max TB.
  const Matrix& raw = ds.values();
  EXPECT_NEAR(points(0, 0), linalg::ColumnMins(raw)[0], 1e-6);
  EXPECT_NEAR(points(0, 2), linalg::ColumnMaxs(raw)[2], 1e-6);
  // p3 is the best corner.
  EXPECT_NEAR(points(3, 0), linalg::ColumnMaxs(raw)[0], 1e-6);
  EXPECT_NEAR(points(3, 2), linalg::ColumnMins(raw)[2], 1e-6);
}

TEST(RpcRankerTest, RankDatasetKeepsLabels) {
  const data::Dataset ds = data::GenerateCountryData(40, 8, true);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(ds);
  EXPECT_EQ(list.size(), 40);
  // Every item's label must come from the dataset.
  for (const auto& item : list.items()) {
    EXPECT_EQ(item.label, ds.label(item.index));
  }
}

TEST(RpcRankerTest, SkeletonStaysInsideDataBox) {
  const data::Dataset ds = data::GenerateCountryData(60, 9, false);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const Matrix skeleton = ranker->SampleSkeletonRaw(32);
  const Vector mins = linalg::ColumnMins(ds.values());
  const Vector maxs = linalg::ColumnMaxs(ds.values());
  for (int i = 0; i < skeleton.rows(); ++i) {
    for (int j = 0; j < skeleton.cols(); ++j) {
      EXPECT_GE(skeleton(i, j), mins[j] - 1e-6);
      EXPECT_LE(skeleton(i, j), maxs[j] + 1e-6);
    }
  }
}

TEST(RpcRankerTest, RejectsConstantAttribute) {
  Matrix data(10, 2);
  for (int i = 0; i < 10; ++i) {
    data(i, 0) = i;
    data(i, 1) = 42.0;
  }
  const auto ranker =
      RpcRanker::Fit(data, Orientation::AllBenefit(2));
  EXPECT_FALSE(ranker.ok());
}

TEST(RpcRankerTest, RejectsAllMissingDataset) {
  data::Dataset ds;
  ds.AppendRow("x", Vector{1.0, 2.0}, {true, false});
  ds.AppendRow("y", Vector{3.0, 4.0}, {false, true});
  const auto ranker =
      RpcRanker::FitDataset(ds, Orientation::AllBenefit(2));
  EXPECT_FALSE(ranker.ok());
}

}  // namespace
}  // namespace rpc::core
