#include "core/interpretation.h"

#include <gtest/gtest.h>

namespace rpc::core {
namespace {

using linalg::Matrix;
using order::Orientation;

RpcCurve CurveWith(double b1x, double b2x, double b1y, double b2y) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Matrix control{{0.0, b1x, b2x, 1.0}, {0.0, b1y, b2y, 1.0}};
  auto curve = RpcCurve::FromControlPoints(control, alpha);
  EXPECT_TRUE(curve.ok());
  return std::move(curve).value();
}

TEST(InterpretationTest, LinearShapeDetected) {
  const RpcCurve curve = CurveWith(1.0 / 3.0, 2.0 / 3.0, 1.0 / 3.0,
                                   2.0 / 3.0);
  const auto interps = InterpretCurve(curve);
  ASSERT_EQ(interps.size(), 2u);
  EXPECT_EQ(interps[0].shape, CurveShape::kLinear);
  EXPECT_NEAR(interps[0].nonlinearity, 0.0, 1e-9);
}

TEST(InterpretationTest, FourBasicShapesOfFig4) {
  // Convex: both control values pulled toward the start.
  EXPECT_EQ(InterpretCurve(CurveWith(0.05, 0.4, 1.0 / 3.0, 2.0 / 3.0))[0]
                .shape,
            CurveShape::kConvex);
  // Concave: both pulled toward the end.
  EXPECT_EQ(InterpretCurve(CurveWith(0.6, 0.95, 1.0 / 3.0, 2.0 / 3.0))[0]
                .shape,
            CurveShape::kConcave);
  // S: below then above the diagonal.
  EXPECT_EQ(InterpretCurve(CurveWith(0.1, 0.9, 1.0 / 3.0, 2.0 / 3.0))[0]
                .shape,
            CurveShape::kSShape);
  // Inverse S: above then below.
  EXPECT_EQ(InterpretCurve(CurveWith(0.6, 0.4, 1.0 / 3.0, 2.0 / 3.0))[0]
                .shape,
            CurveShape::kInverseS);
}

TEST(InterpretationTest, CostAttributeClassifiedOnOrientedAxis) {
  const auto alpha_result = Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha_result.ok());
  // Cost coordinate runs 1 -> 0; control values 0.95/0.6 along raw axis are
  // 0.05/0.4 along the oriented axis -> convex improvement.
  Matrix control{{0.0, 0.05, 0.4, 1.0}, {1.0, 0.95, 0.6, 0.0}};
  const auto curve = RpcCurve::FromControlPoints(control, *alpha_result);
  ASSERT_TRUE(curve.ok());
  const auto interps = InterpretCurve(*curve);
  EXPECT_EQ(interps[1].shape, CurveShape::kConvex);
  EXPECT_NEAR(interps[1].b1, 0.05, 1e-12);
}

TEST(InterpretationTest, NonlinearityGrowsWithBend) {
  const double straight =
      InterpretCurve(CurveWith(1.0 / 3.0, 2.0 / 3.0, 0.3, 0.6))[0]
          .nonlinearity;
  const double bent =
      InterpretCurve(CurveWith(0.05, 0.95, 0.3, 0.6))[0].nonlinearity;
  EXPECT_LT(straight, 1e-9);
  EXPECT_GT(bent, 0.05);
}

TEST(InterpretationTest, ReportMentionsNamesAndShapes) {
  const RpcCurve curve = CurveWith(0.05, 0.4, 0.6, 0.95);
  const std::string report =
      InterpretationReport(curve, {"GDP", "LEB"});
  EXPECT_NE(report.find("GDP"), std::string::npos);
  EXPECT_NE(report.find("LEB"), std::string::npos);
  EXPECT_NE(report.find("convex"), std::string::npos);
  EXPECT_NE(report.find("concave"), std::string::npos);
}

TEST(InterpretationTest, ShapeNamesAreStable) {
  EXPECT_STREQ(CurveShapeToString(CurveShape::kLinear), "linear");
  EXPECT_NE(std::string(CurveShapeToString(CurveShape::kSShape)).find("S-"),
            std::string::npos);
}

}  // namespace
}  // namespace rpc::core
