#include <gtest/gtest.h>

#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::core {
namespace {

using linalg::Matrix;
using order::Orientation;

Matrix MakeData(int n, int d, uint64_t seed) {
  const Orientation alpha = Orientation::AllBenefit(d);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
              .seed = seed});
  auto normalizer = data::Normalizer::Fit(sample.data);
  return normalizer->Transform(sample.data);
}

RpcLearnOptions BaseOptions() {
  RpcLearnOptions options;
  options.max_iterations = 40;
  options.seed = 2024;
  return options;
}

// Fitting with a thread pool must reproduce the serial fit bit for bit:
// per-row projections are independent, the J reduction is ordered, and the
// restart selection scans in restart order.
TEST(RpcLearnerParallelTest, ThreadedSingleRestartMatchesSerialBitwise) {
  const Matrix data = MakeData(120, 3, 5);
  const Orientation alpha = Orientation::AllBenefit(3);

  RpcLearnOptions serial = BaseOptions();
  serial.num_threads = 1;
  RpcLearnOptions threaded = BaseOptions();
  threaded.num_threads = 8;

  const auto serial_fit = RpcLearner(serial).Fit(data, alpha);
  const auto threaded_fit = RpcLearner(threaded).Fit(data, alpha);
  ASSERT_TRUE(serial_fit.ok()) << serial_fit.status().ToString();
  ASSERT_TRUE(threaded_fit.ok()) << threaded_fit.status().ToString();

  EXPECT_EQ(serial_fit->final_j, threaded_fit->final_j);
  EXPECT_EQ(serial_fit->iterations, threaded_fit->iterations);
  ASSERT_EQ(serial_fit->scores.size(), threaded_fit->scores.size());
  for (int i = 0; i < serial_fit->scores.size(); ++i) {
    EXPECT_EQ(serial_fit->scores[i], threaded_fit->scores[i]) << "row " << i;
  }
}

TEST(RpcLearnerParallelTest, ParallelRestartsMatchSerialBitwise) {
  const Matrix data = MakeData(90, 4, 6);
  const Orientation alpha = Orientation::AllBenefit(4);

  RpcLearnOptions serial = BaseOptions();
  serial.restarts = 6;
  serial.num_threads = 1;
  RpcLearnOptions threaded = serial;
  threaded.num_threads = 8;

  const auto serial_fit = RpcLearner(serial).Fit(data, alpha);
  const auto threaded_fit = RpcLearner(threaded).Fit(data, alpha);
  ASSERT_TRUE(serial_fit.ok()) << serial_fit.status().ToString();
  ASSERT_TRUE(threaded_fit.ok()) << threaded_fit.status().ToString();

  EXPECT_EQ(serial_fit->final_j, threaded_fit->final_j);
  ASSERT_EQ(serial_fit->scores.size(), threaded_fit->scores.size());
  for (int i = 0; i < serial_fit->scores.size(); ++i) {
    EXPECT_EQ(serial_fit->scores[i], threaded_fit->scores[i]) << "row " << i;
  }
}

// Two parallel multi-restart fits with the same seed are identical — the
// determinism contract of RpcLearnOptions::num_threads.
TEST(RpcLearnerParallelTest, RepeatedParallelRestartFitsAreIdentical) {
  const Matrix data = MakeData(100, 3, 9);
  const Orientation alpha = Orientation::AllBenefit(3);

  RpcLearnOptions options = BaseOptions();
  options.restarts = 5;
  options.num_threads = 8;

  const auto first = RpcLearner(options).Fit(data, alpha);
  const auto second = RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(first->final_j, second->final_j);
  EXPECT_EQ(first->iterations, second->iterations);
  ASSERT_EQ(first->scores.size(), second->scores.size());
  for (int i = 0; i < first->scores.size(); ++i) {
    EXPECT_EQ(first->scores[i], second->scores[i]) << "row " << i;
  }
}

// num_threads = 0 (hardware concurrency) is accepted and converges.
TEST(RpcLearnerParallelTest, HardwareConcurrencyDefaultWorks) {
  const Matrix data = MakeData(60, 2, 13);
  const Orientation alpha = Orientation::AllBenefit(2);
  RpcLearnOptions options = BaseOptions();
  options.num_threads = 0;
  const auto fit = RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_GT(fit->explained_variance, 0.5);
}

}  // namespace
}  // namespace rpc::core
