// Asserts the fit pipeline's steady-state contract: once the persistent
// workspaces are bound and the first (allocating) iteration has settled
// every buffer, a full outer iteration — warm-started projection, streaming
// normal-equation accumulation, control-point update, constraint clamping
// and the in-place curve rebind — performs zero heap allocations, for both
// the Richardson (Eq. 27) and pseudo-inverse (Eq. 26) update rules and
// through a periodic full-projection resync. Same instrumented
// operator-new pattern as tests/opt/projection_allocation_test.cc.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fit_workspace.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/incremental_projector.h"

namespace {

std::atomic<std::int64_t> g_allocations{0};

}  // namespace

// Program-wide replacements: every new/new[] in the binary (library code
// included) funnels through here.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rpc::core {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

Matrix UnitData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(0.0, 1.0);
  }
  return data;
}

Matrix MonotoneCubicControl(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return control;
}

// One steady-state outer iteration, mirroring RpcLearner::FitOnce's loop
// body: Step 4 through the warm-start engine, Step 5 through the workspace,
// Proposition 1 clamping, in-place curve rebind.
void OuterIteration(const Matrix& data, opt::IncrementalProjector* projector,
                    FitWorkspace* workspace,
                    const ControlUpdateOptions& options, Vector* scores,
                    Matrix* control, BezierCurve* bezier, double* j) {
  projector->ProjectInto(*bezier, scores, j);
  workspace->AccumulateNormalEquations(data, *scores, nullptr);
  const Status status = workspace->UpdateControlPoints(options, control);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const int d = control->rows();
  const int k = control->cols() - 1;
  for (int row = 0; row < d; ++row) {
    for (int r = 1; r < k; ++r) {
      (*control)(row, r) = std::clamp((*control)(row, r), 1e-3, 1.0 - 1e-3);
    }
    (*control)(row, 0) = 0.0;
    (*control)(row, k) = 1.0;
  }
  bezier->SetControlPoints(*control);
}

TEST(FitAllocationTest, SteadyStateOuterIterationIsAllocationFree) {
  const int n = 256;
  const int d = 4;
  const Matrix data = UnitData(n, d, 7);

  for (const bool use_pinv : {false, true}) {
    Matrix control = MonotoneCubicControl(d, 8);
    BezierCurve bezier(control);

    opt::IncrementalProjectorOptions projector_options;
    // Period 3 puts a full-projection resync inside the measured window, so
    // both the warm and the full Step 4 paths are covered.
    projector_options.resync_period = 3;
    opt::IncrementalProjector projector;
    projector.Bind(data, projector_options, /*pool=*/nullptr);

    FitWorkspace workspace;
    workspace.Bind(n, d, /*degree=*/3);

    ControlUpdateOptions update_options;
    update_options.use_pseudo_inverse_update = use_pinv;

    Vector scores;
    double j = 0.0;
    // Two settling iterations: the first call allocates the score buffer
    // and the projector's per-curve state; afterwards every buffer is
    // capacity-stable.
    OuterIteration(data, &projector, &workspace, update_options, &scores,
                   &control, &bezier, &j);
    OuterIteration(data, &projector, &workspace, update_options, &scores,
                   &control, &bezier, &j);

    const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int iter = 0; iter < 6; ++iter) {
      OuterIteration(data, &projector, &workspace, update_options, &scores,
                     &control, &bezier, &j);
    }
    const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << (use_pinv ? "pseudo-inverse" : "Richardson")
        << " update allocated in steady state (J " << j << ")";
    EXPECT_GT(j, 0.0);
  }
}

// The update stage alone — the acceptance criterion's hard guarantee —
// checked for a non-cubic degree too (general de Casteljau path).
TEST(FitAllocationTest, UpdateStageIsAllocationFreeForGeneralDegree) {
  const int n = 500;
  const int d = 3;
  const int degree = 5;
  const Matrix data = UnitData(n, d, 17);
  Rng rng(18);
  Vector scores(n);
  for (int i = 0; i < n; ++i) scores[i] = rng.Uniform(0.0, 1.0);

  FitWorkspace workspace;
  workspace.Bind(n, d, degree);
  Matrix control(d, degree + 1);
  for (int i = 0; i < d; ++i) {
    for (int r = 0; r <= degree; ++r) {
      control(i, r) = static_cast<double>(r) / degree;
    }
  }
  ControlUpdateOptions options;
  workspace.AccumulateNormalEquations(data, scores, nullptr);
  ASSERT_TRUE(workspace.UpdateControlPoints(options, &control).ok());

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int iter = 0; iter < 5; ++iter) {
    workspace.AccumulateNormalEquations(data, scores, nullptr);
    const Status status = workspace.UpdateControlPoints(options, &control);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "update stage allocated in steady state";
}

}  // namespace
}  // namespace rpc::core
