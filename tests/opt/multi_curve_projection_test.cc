#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "opt/batch_projection.h"

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

BezierCurve RandomCurve(int d, int k, Rng* rng) {
  Matrix control(d, k + 1);
  for (int i = 0; i < d; ++i) {
    for (int r = 0; r <= k; ++r) control(i, r) = rng->Uniform(-0.2, 1.2);
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, Rng* rng) {
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng->Uniform(-0.3, 1.3);
  }
  return data;
}

// Element m of the batch-of-curves call is specified to be bit-identical to
// the single-curve batch over curve m — scores and totals — for every
// method, including the kQuinticRoots per-curve fallback.
TEST(MultiCurveProjectionTest, MatchesSingleCurveBatchesSerial) {
  Rng rng(11);
  const int d = 5;
  const int n = 173;  // not a multiple of the block size
  const Matrix data = RandomData(n, d, &rng);
  std::vector<BezierCurve> owned;
  owned.reserve(4);
  for (int k : {3, 3, 2, 5}) owned.push_back(RandomCurve(d, k, &rng));
  std::vector<const BezierCurve*> curves;
  for (const BezierCurve& c : owned) curves.push_back(&c);

  for (ProjectionMethod method :
       {ProjectionMethod::kGoldenSection, ProjectionMethod::kGridOnly,
        ProjectionMethod::kNewton, ProjectionMethod::kQuinticRoots}) {
    ProjectionOptions options;
    options.method = method;
    std::vector<double> totals;
    const std::vector<Vector> scores =
        ProjectRowsBatchMultiCurve(curves, data, options, nullptr, &totals);
    ASSERT_EQ(scores.size(), curves.size());
    ASSERT_EQ(totals.size(), curves.size());
    for (size_t m = 0; m < curves.size(); ++m) {
      double expected_total = 0.0;
      const Vector expected = ProjectRowsBatch(*curves[m], data, options,
                                               nullptr, &expected_total);
      ASSERT_EQ(scores[m].size(), expected.size());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(scores[m][i], expected[i])
            << "method " << static_cast<int>(method) << " curve " << m
            << " row " << i;
      }
      ASSERT_EQ(totals[m], expected_total)
          << "method " << static_cast<int>(method) << " curve " << m;
    }
  }
}

// Thread count must not change a single bit (the determinism contract the
// single-curve batch already holds).
TEST(MultiCurveProjectionTest, ParallelMatchesSerialBitwise) {
  Rng rng(23);
  const int d = 3;
  const int n = 301;
  const Matrix data = RandomData(n, d, &rng);
  std::vector<BezierCurve> owned;
  for (int k : {3, 4, 1}) owned.push_back(RandomCurve(d, k, &rng));
  std::vector<const BezierCurve*> curves;
  for (const BezierCurve& c : owned) curves.push_back(&c);

  ProjectionOptions options;
  std::vector<double> serial_totals;
  const std::vector<Vector> serial = ProjectRowsBatchMultiCurve(
      curves, data, options, nullptr, &serial_totals);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> totals;
    const std::vector<Vector> parallel =
        ProjectRowsBatchMultiCurve(curves, data, options, &pool, &totals);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t m = 0; m < serial.size(); ++m) {
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(parallel[m][i], serial[m][i])
            << threads << " threads, curve " << m << " row " << i;
      }
      ASSERT_EQ(totals[m], serial_totals[m]) << threads << " threads";
    }
  }
}

TEST(MultiCurveProjectionTest, HandlesEmptyInputs) {
  Rng rng(5);
  const Matrix data = RandomData(7, 2, &rng);
  ProjectionOptions options;

  std::vector<double> totals{1.0, 2.0};
  EXPECT_TRUE(ProjectRowsBatchMultiCurve({}, data, options, nullptr, &totals)
                  .empty());
  EXPECT_TRUE(totals.empty());

  const BezierCurve curve = RandomCurve(2, 3, &rng);
  const Matrix empty(0, 2);
  const std::vector<Vector> scores = ProjectRowsBatchMultiCurve(
      {&curve}, empty, options, nullptr, &totals);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].size(), 0);
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0], 0.0);
}

}  // namespace
}  // namespace rpc::opt
