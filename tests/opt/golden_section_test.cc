#include "opt/golden_section.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rpc::opt {
namespace {

TEST(GoldenSectionTest, QuadraticMinimum) {
  const auto f = [](double x) { return (x - 0.3) * (x - 0.3); };
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(r.x, 0.3, 1e-9);
  EXPECT_NEAR(r.fx, 0.0, 1e-15);
}

TEST(GoldenSectionTest, MinimumAtLeftBoundary) {
  const auto f = [](double x) { return x; };
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(r.x, 0.0, 1e-9);
}

TEST(GoldenSectionTest, MinimumAtRightBoundary) {
  const auto f = [](double x) { return -x; };
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(r.x, 1.0, 1e-9);
}

TEST(GoldenSectionTest, NonSymmetricUnimodal) {
  const auto f = [](double x) { return std::exp(x) - 2.0 * x; };
  // Minimum where e^x = 2 -> x = ln 2.
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(r.x, std::log(2.0), 1e-8);
}

TEST(GoldenSectionTest, DegenerateBracket) {
  const auto f = [](double x) { return x * x; };
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.5, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.x, 0.5);
  EXPECT_DOUBLE_EQ(r.fx, 0.25);
}

TEST(GoldenSectionTest, EvaluationCountBounded) {
  int count = 0;
  const auto f = [&count](double x) {
    ++count;
    return (x - 0.42) * (x - 0.42);
  };
  const ScalarMinResult r = GoldenSectionMinimize(f, 0.0, 1.0, 1e-10, 200);
  EXPECT_EQ(r.evaluations, count);
  // Golden section gains one digit per ~4.78 evals; 1e-10 needs < 60.
  EXPECT_LT(count, 70);
}

TEST(GoldenSectionTest, RespectsIterationCap) {
  const auto f = [](double x) { return x * x; };
  const ScalarMinResult r = GoldenSectionMinimize(f, -1.0, 1.0, 0.0, 5);
  // With only 5 iterations the answer is coarse but within the bracket.
  EXPECT_GE(r.x, -1.0);
  EXPECT_LE(r.x, 1.0);
}

}  // namespace
}  // namespace rpc::opt
