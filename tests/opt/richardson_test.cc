#include "opt/richardson.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/solve.h"

namespace rpc::opt {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(RichardsonTest, PreconditionerIsColumnNorms) {
  const Matrix gram{{3.0, 0.0}, {0.0, 4.0}};
  const Vector d = RichardsonPreconditioner(gram);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(RichardsonTest, FixedPointIsLeastSquaresSolution) {
  // If P A = B exactly, the step leaves P unchanged.
  const Matrix a{{2.0, 0.5}, {0.5, 1.0}};
  const Matrix p{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = p * a;
  const auto next = RichardsonStep(p, a, b);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(ApproxEqual(next.value(), p, 1e-12));
}

TEST(RichardsonTest, IterationConvergesToSolution) {
  Rng rng(9);
  const int d = 3;
  const int k = 4;
  Matrix a(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.Uniform(-0.5, 0.5);
  }
  a = linalg::TimesTranspose(a, a) + 0.5 * Matrix::Identity(k);  // SPD
  Matrix truth(d, k);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < k; ++j) truth(i, j) = rng.Uniform(-1.0, 1.0);
  }
  const Matrix b = truth * a;

  Matrix p(d, k, 0.0);
  RichardsonOptions options;
  options.use_preconditioner = false;  // pure Richardson convergence theory
  for (int iter = 0; iter < 500; ++iter) {
    auto next = RichardsonStep(p, a, b, options);
    ASSERT_TRUE(next.ok());
    p = std::move(next).value();
  }
  EXPECT_TRUE(ApproxEqual(p, truth, 1e-6));
}

TEST(RichardsonTest, PreconditionedIterationAlsoConverges) {
  Rng rng(10);
  const int k = 4;
  Matrix a(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.Uniform(-0.5, 0.5);
  }
  a = linalg::TimesTranspose(a, a) + 0.1 * Matrix::Identity(k);
  Matrix truth(2, k);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < k; ++j) truth(i, j) = rng.Uniform(-1.0, 1.0);
  }
  const Matrix b = truth * a;
  Matrix p(2, k, 0.5);
  RichardsonOptions options;  // preconditioner on, auto gamma
  double prev_residual = (p * a - b).FrobeniusNorm();
  for (int iter = 0; iter < 2000; ++iter) {
    auto next = RichardsonStep(p, a, b, options);
    ASSERT_TRUE(next.ok());
    p = std::move(next).value();
  }
  const double residual = (p * a - b).FrobeniusNorm();
  EXPECT_LT(residual, 1e-6 * (1.0 + prev_residual));
}

TEST(RichardsonTest, ExplicitGammaUsed) {
  const Matrix a = Matrix::Identity(2);
  const Matrix p{{1.0, 1.0}};
  const Matrix b{{0.0, 0.0}};
  RichardsonOptions options;
  options.gamma = 1.0;
  options.use_preconditioner = false;
  // P' = P - 1.0 * (P I - 0) = 0.
  const auto next = RichardsonStep(p, a, b, options);
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(next.value().MaxAbs(), 0.0, 1e-15);
}

TEST(RichardsonTest, RejectsShapeMismatch) {
  const Matrix a = Matrix::Identity(3);
  const Matrix p(2, 4);
  const Matrix b(2, 4);
  EXPECT_FALSE(RichardsonStep(p, a, b).ok());
  EXPECT_FALSE(RichardsonStep(Matrix(2, 3), Matrix(3, 3), Matrix(2, 4)).ok());
}

TEST(RichardsonTest, RejectsNonPositiveSpectrum) {
  // Zero Gram matrix -> lambda_min + lambda_max = 0.
  const Matrix a(2, 2, 0.0);
  const Matrix p(1, 2, 1.0);
  const Matrix b(1, 2, 0.0);
  const auto next = RichardsonStep(p, a, b);
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNumericalError);
}

TEST(RichardsonWorkspaceTest, StepMatchesPureFunctionBitwise) {
  Rng rng(21);
  const int d = 4;
  const int k = 3;
  Matrix gram(k + 1, k + 1);
  for (int i = 0; i <= k; ++i) {
    for (int j = 0; j <= k; ++j) gram(i, j) = rng.Uniform(-0.5, 0.5);
  }
  gram = linalg::TimesTranspose(gram, gram) +
         0.25 * Matrix::Identity(k + 1);  // SPD
  Matrix cross(d, k + 1);
  Matrix start(d, k + 1);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j <= k; ++j) {
      cross(i, j) = rng.Uniform(-1.0, 1.0);
      start(i, j) = rng.Uniform(0.0, 1.0);
    }
  }

  for (const bool preconditioned : {true, false}) {
    RichardsonOptions options;
    options.use_preconditioner = preconditioned;

    Matrix pure = start;
    RichardsonWorkspace workspace;
    workspace.Bind(d, k);
    Matrix in_place = start;
    // Several chained steps: the workspace iterates in place, the pure
    // function on fresh copies; both trajectories must agree to the bit.
    for (int step = 0; step < 3; ++step) {
      auto next = RichardsonStep(pure, gram, cross, options);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      pure = std::move(next).value();
      ASSERT_TRUE(workspace.Step(gram, cross, options, &in_place).ok());
      for (int i = 0; i < d; ++i) {
        for (int j = 0; j <= k; ++j) {
          ASSERT_EQ(in_place(i, j), pure(i, j))
              << "precond=" << preconditioned << " step=" << step;
        }
      }
    }
  }
}

TEST(RichardsonWorkspaceTest, RejectsShapeMismatch) {
  RichardsonWorkspace workspace;
  workspace.Bind(2, 2);
  Matrix control(2, 3);
  EXPECT_FALSE(
      workspace.Step(Matrix(3, 2), Matrix(2, 3), {}, &control).ok());
  Matrix wrong(2, 4);
  EXPECT_FALSE(
      workspace.Step(Matrix::Identity(3), Matrix(2, 3), {}, &wrong).ok());
}

}  // namespace
}  // namespace rpc::opt
