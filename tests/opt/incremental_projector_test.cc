#include "opt/incremental_projector.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "opt/batch_projection.h"
#include "opt/curve_projection.h"

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

BezierCurve MonotoneCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return data;
}

// Nudges the interior control points by `step`, mimicking one outer
// iteration of the alternating scheme.
BezierCurve Perturbed(const BezierCurve& curve, double step, uint64_t seed) {
  Rng rng(seed);
  Matrix control = curve.control_points();
  for (int i = 0; i < control.rows(); ++i) {
    control(i, 1) += rng.Uniform(-step, step);
    control(i, 2) += rng.Uniform(-step, step);
  }
  return BezierCurve(control);
}

// The first call (and any full resync) must reproduce ProjectRowsBatch
// bitwise: same per-row arithmetic, same ordered J reduction.
TEST(IncrementalProjectorTest, FirstCallMatchesBatchBitwise) {
  const BezierCurve curve = MonotoneCubic(3, 7);
  const Matrix data = RandomData(157, 3, 8);
  for (ProjectionMethod method :
       {ProjectionMethod::kGoldenSection, ProjectionMethod::kQuinticRoots,
        ProjectionMethod::kGridOnly, ProjectionMethod::kNewton}) {
    ProjectionOptions projection;
    projection.method = method;
    double batch_j = 0.0;
    const Vector batch =
        ProjectRowsBatch(curve, data, projection, nullptr, &batch_j);

    IncrementalProjector incremental;
    IncrementalProjectorOptions options;
    options.projection = projection;
    incremental.Bind(data, options, nullptr);
    double j = 0.0;
    const Vector scores = incremental.Project(curve, &j);
    EXPECT_TRUE(incremental.last_was_full());
    ASSERT_EQ(scores.size(), batch.size());
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], batch[i]) << "row " << i;
    }
    EXPECT_EQ(j, batch_j);
  }
}

// Warm-started calls are bit-identical for every thread count — the
// ProjectRowsBatch determinism contract extends to the incremental engine.
TEST(IncrementalProjectorTest, WarmCallsBitIdenticalAcrossThreadCounts) {
  const BezierCurve start = MonotoneCubic(4, 17);
  const Matrix data = RandomData(211, 4, 18);  // odd n: ragged chunks

  // Reference: serial trajectory over three slightly moving curves.
  IncrementalProjector serial;
  serial.Bind(data, {}, nullptr);
  Vector ref_scores;
  double ref_j = 0.0;
  BezierCurve curve = start;
  for (int t = 0; t < 3; ++t) {
    ref_scores = serial.Project(curve, &ref_j);
    curve = Perturbed(curve, 2e-3, 100 + static_cast<uint64_t>(t));
  }

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    IncrementalProjector incremental;
    incremental.Bind(data, {}, &pool);
    Vector scores;
    double j = 0.0;
    BezierCurve moving = start;
    for (int t = 0; t < 3; ++t) {
      scores = incremental.Project(moving, &j);
      moving = Perturbed(moving, 2e-3, 100 + static_cast<uint64_t>(t));
    }
    EXPECT_FALSE(incremental.last_was_full());
    ASSERT_EQ(scores.size(), ref_scores.size());
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], ref_scores[i]) << "threads=" << threads
                                          << " row " << i;
    }
    EXPECT_EQ(j, ref_j) << "threads=" << threads;
  }
}

// After a small curve move the warm projection must agree with the full
// global search to projection tolerance — the locality assumption the
// engine exploits, on the regime it targets.
TEST(IncrementalProjectorTest, WarmMatchesFullSearchAfterSmallMove) {
  const BezierCurve start = MonotoneCubic(3, 27);
  const Matrix data = RandomData(300, 3, 28);
  IncrementalProjector incremental;
  incremental.Bind(data, {}, nullptr);
  double j = 0.0;
  incremental.Project(start, &j);

  const BezierCurve moved = Perturbed(start, 1e-3, 29);
  double warm_j = 0.0;
  const Vector warm = incremental.Project(moved, &warm_j);
  EXPECT_FALSE(incremental.last_was_full());

  double full_j = 0.0;
  const Vector full = ProjectRowsBatch(moved, data, {}, nullptr, &full_j);
  for (int i = 0; i < warm.size(); ++i) {
    // Same basin: the indices agree to well under a grid cell. At shallow
    // minima Newton (|g| < tol) and GSS (bracket < tol) stop up to ~1e-5
    // apart in s, so the binding check is on the objective: the warm
    // distance matches the global optimum's.
    EXPECT_NEAR(warm[i], full[i], 1e-3) << "row " << i;
    const double warm_dist = moved.SquaredDistanceAt(data.Row(i), warm[i]);
    const double full_dist = moved.SquaredDistanceAt(data.Row(i), full[i]);
    EXPECT_NEAR(warm_dist, full_dist, 1e-9 * (1.0 + full_dist))
        << "row " << i;
  }
  EXPECT_NEAR(warm_j, full_j, 1e-8 * (1.0 + full_j));
}

// A large curve move invalidates every local bracket; the suspect checks
// must kick rows back to the global search rather than silently keeping a
// wrong local minimum, so warm results still match the full search.
TEST(IncrementalProjectorTest, LargeMoveFallsBackToGlobalSearch) {
  const BezierCurve start = MonotoneCubic(2, 37);
  const Matrix data = RandomData(200, 2, 38);
  IncrementalProjectorOptions options;
  options.resync_period = 1000;  // never resync: only the fallbacks guard
  IncrementalProjector incremental;
  incremental.Bind(data, options, nullptr);
  double j = 0.0;
  incremental.Project(start, &j);

  const BezierCurve moved = Perturbed(start, 0.3, 39);
  double warm_j = 0.0;
  const Vector warm = incremental.Project(moved, &warm_j);
  EXPECT_GT(incremental.last_fallback_count(), 0);

  double full_j = 0.0;
  const Vector full = ProjectRowsBatch(moved, data, {}, nullptr, &full_j);
  for (int i = 0; i < warm.size(); ++i) {
    EXPECT_NEAR(warm[i], full[i], 1e-3) << "row " << i;
    const double warm_dist = moved.SquaredDistanceAt(data.Row(i), warm[i]);
    const double full_dist = moved.SquaredDistanceAt(data.Row(i), full[i]);
    EXPECT_NEAR(warm_dist, full_dist, 1e-9 * (1.0 + full_dist))
        << "row " << i;
  }
}

// resync_period <= 1 degenerates to the full path on every call.
TEST(IncrementalProjectorTest, ResyncEveryCallMatchesBatch) {
  const BezierCurve start = MonotoneCubic(3, 47);
  const Matrix data = RandomData(120, 3, 48);
  IncrementalProjectorOptions options;
  options.resync_period = 1;
  IncrementalProjector incremental;
  incremental.Bind(data, options, nullptr);
  BezierCurve curve = start;
  for (int t = 0; t < 3; ++t) {
    double j = 0.0;
    const Vector scores = incremental.Project(curve, &j);
    EXPECT_TRUE(incremental.last_was_full());
    double batch_j = 0.0;
    const Vector batch = ProjectRowsBatch(curve, data, {}, nullptr, &batch_j);
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], batch[i]) << "t=" << t << " row " << i;
    }
    EXPECT_EQ(j, batch_j);
    curve = Perturbed(curve, 5e-3, 200 + static_cast<uint64_t>(t));
  }
}

}  // namespace
}  // namespace rpc::opt
