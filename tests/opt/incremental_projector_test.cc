#include "opt/incremental_projector.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "curve/bernstein.h"
#include "opt/batch_projection.h"
#include "opt/curve_projection.h"

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

BezierCurve MonotoneCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return data;
}

// Nudges the interior control points by `step`, mimicking one outer
// iteration of the alternating scheme.
BezierCurve Perturbed(const BezierCurve& curve, double step, uint64_t seed) {
  Rng rng(seed);
  Matrix control = curve.control_points();
  for (int i = 0; i < control.rows(); ++i) {
    control(i, 1) += rng.Uniform(-step, step);
    control(i, 2) += rng.Uniform(-step, step);
  }
  return BezierCurve(control);
}

// The first call (and any full resync) must reproduce ProjectRowsBatch
// bitwise: same per-row arithmetic, same ordered J reduction.
TEST(IncrementalProjectorTest, FirstCallMatchesBatchBitwise) {
  const BezierCurve curve = MonotoneCubic(3, 7);
  const Matrix data = RandomData(157, 3, 8);
  for (ProjectionMethod method :
       {ProjectionMethod::kGoldenSection, ProjectionMethod::kQuinticRoots,
        ProjectionMethod::kGridOnly, ProjectionMethod::kNewton}) {
    ProjectionOptions projection;
    projection.method = method;
    double batch_j = 0.0;
    const Vector batch =
        ProjectRowsBatch(curve, data, projection, nullptr, &batch_j);

    IncrementalProjector incremental;
    IncrementalProjectorOptions options;
    options.projection = projection;
    incremental.Bind(data, options, nullptr);
    double j = 0.0;
    const Vector scores = incremental.Project(curve, &j);
    EXPECT_TRUE(incremental.last_was_full());
    ASSERT_EQ(scores.size(), batch.size());
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], batch[i]) << "row " << i;
    }
    EXPECT_EQ(j, batch_j);
  }
}

// Warm-started calls are bit-identical for every thread count — the
// ProjectRowsBatch determinism contract extends to the incremental engine.
TEST(IncrementalProjectorTest, WarmCallsBitIdenticalAcrossThreadCounts) {
  const BezierCurve start = MonotoneCubic(4, 17);
  const Matrix data = RandomData(211, 4, 18);  // odd n: ragged chunks

  // Reference: serial trajectory over three slightly moving curves.
  IncrementalProjector serial;
  serial.Bind(data, {}, nullptr);
  Vector ref_scores;
  double ref_j = 0.0;
  BezierCurve curve = start;
  for (int t = 0; t < 3; ++t) {
    ref_scores = serial.Project(curve, &ref_j);
    curve = Perturbed(curve, 2e-3, 100 + static_cast<uint64_t>(t));
  }

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    IncrementalProjector incremental;
    incremental.Bind(data, {}, &pool);
    Vector scores;
    double j = 0.0;
    BezierCurve moving = start;
    for (int t = 0; t < 3; ++t) {
      scores = incremental.Project(moving, &j);
      moving = Perturbed(moving, 2e-3, 100 + static_cast<uint64_t>(t));
    }
    EXPECT_FALSE(incremental.last_was_full());
    ASSERT_EQ(scores.size(), ref_scores.size());
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], ref_scores[i]) << "threads=" << threads
                                          << " row " << i;
    }
    EXPECT_EQ(j, ref_j) << "threads=" << threads;
  }
}

// After a small curve move the warm projection must agree with the full
// global search to projection tolerance — the locality assumption the
// engine exploits, on the regime it targets.
TEST(IncrementalProjectorTest, WarmMatchesFullSearchAfterSmallMove) {
  const BezierCurve start = MonotoneCubic(3, 27);
  const Matrix data = RandomData(300, 3, 28);
  IncrementalProjector incremental;
  incremental.Bind(data, {}, nullptr);
  double j = 0.0;
  incremental.Project(start, &j);

  const BezierCurve moved = Perturbed(start, 1e-3, 29);
  double warm_j = 0.0;
  const Vector warm = incremental.Project(moved, &warm_j);
  EXPECT_FALSE(incremental.last_was_full());

  double full_j = 0.0;
  const Vector full = ProjectRowsBatch(moved, data, {}, nullptr, &full_j);
  for (int i = 0; i < warm.size(); ++i) {
    // Same basin: the indices agree to well under a grid cell. At shallow
    // minima Newton (|g| < tol) and GSS (bracket < tol) stop up to ~1e-5
    // apart in s, so the binding check is on the objective: the warm
    // distance matches the global optimum's.
    EXPECT_NEAR(warm[i], full[i], 1e-3) << "row " << i;
    const double warm_dist = moved.SquaredDistanceAt(data.Row(i), warm[i]);
    const double full_dist = moved.SquaredDistanceAt(data.Row(i), full[i]);
    EXPECT_NEAR(warm_dist, full_dist, 1e-9 * (1.0 + full_dist))
        << "row " << i;
  }
  EXPECT_NEAR(warm_j, full_j, 1e-8 * (1.0 + full_j));
}

// A large curve move invalidates every local bracket; the suspect checks
// must kick rows back to the global search rather than silently keeping a
// wrong local minimum, so warm results still match the full search.
TEST(IncrementalProjectorTest, LargeMoveFallsBackToGlobalSearch) {
  const BezierCurve start = MonotoneCubic(2, 37);
  const Matrix data = RandomData(200, 2, 38);
  IncrementalProjectorOptions options;
  options.resync_period = 1000;  // never resync: only the fallbacks guard
  IncrementalProjector incremental;
  incremental.Bind(data, options, nullptr);
  double j = 0.0;
  incremental.Project(start, &j);

  const BezierCurve moved = Perturbed(start, 0.3, 39);
  double warm_j = 0.0;
  const Vector warm = incremental.Project(moved, &warm_j);
  EXPECT_GT(incremental.last_fallback_count(), 0);

  double full_j = 0.0;
  const Vector full = ProjectRowsBatch(moved, data, {}, nullptr, &full_j);
  for (int i = 0; i < warm.size(); ++i) {
    EXPECT_NEAR(warm[i], full[i], 1e-3) << "row " << i;
    const double warm_dist = moved.SquaredDistanceAt(data.Row(i), warm[i]);
    const double full_dist = moved.SquaredDistanceAt(data.Row(i), full[i]);
    EXPECT_NEAR(warm_dist, full_dist, 1e-9 * (1.0 + full_dist))
        << "row " << i;
  }
}

// resync_period <= 1 degenerates to the full path on every call.
TEST(IncrementalProjectorTest, ResyncEveryCallMatchesBatch) {
  const BezierCurve start = MonotoneCubic(3, 47);
  const Matrix data = RandomData(120, 3, 48);
  IncrementalProjectorOptions options;
  options.resync_period = 1;
  IncrementalProjector incremental;
  incremental.Bind(data, options, nullptr);
  BezierCurve curve = start;
  for (int t = 0; t < 3; ++t) {
    double j = 0.0;
    const Vector scores = incremental.Project(curve, &j);
    EXPECT_TRUE(incremental.last_was_full());
    double batch_j = 0.0;
    const Vector batch = ProjectRowsBatch(curve, data, {}, nullptr, &batch_j);
    for (int i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], batch[i]) << "t=" << t << " row " << i;
    }
    EXPECT_EQ(j, batch_j);
    curve = Perturbed(curve, 5e-3, 200 + static_cast<uint64_t>(t));
  }
}

// Exported warm-start state re-imported into a fresh projector must make
// its first call warm and land on the same per-row results the original
// trajectory would have produced — the streaming tier's refresh seeding.
TEST(IncrementalProjectorTest, ImportedStateWarmStartsBitIdentically) {
  const BezierCurve start = MonotoneCubic(3, 57);
  const Matrix data = RandomData(140, 3, 58);
  IncrementalProjectorOptions options;

  IncrementalProjector original;
  original.Bind(data, options, nullptr);
  double j0 = 0.0;
  const Vector s0 = original.Project(start, &j0);
  const BezierCurve moved = Perturbed(start, 2e-3, 59);
  double j1 = 0.0;
  const Vector s1 = original.Project(moved, &j1);
  EXPECT_FALSE(original.last_was_full());

  Vector exported_s, exported_dist;
  original.ExportState(&exported_s, &exported_dist);
  ASSERT_EQ(exported_s.size(), data.rows());
  ASSERT_EQ(exported_dist.size(), data.rows());
  for (int i = 0; i < s1.size(); ++i) EXPECT_EQ(exported_s[i], s1[i]);

  // A fresh projector seeded with the *first* call's state replays the
  // second call warm. The imported path has no previous-distance
  // certificate (infinity sentinel), so results can differ from the
  // original warm call only where the original fell back on the distance
  // check; with this small a move there are none and the replay must be
  // bitwise identical.
  IncrementalProjector seeded;
  seeded.Bind(data, options, nullptr);
  seeded.ImportState(s0, start.control_points());
  double j_seeded = 0.0;
  const Vector s_seeded = seeded.Project(moved, &j_seeded);
  EXPECT_FALSE(seeded.last_was_full());
  for (int i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s_seeded[i], s1[i]) << "row " << i;
  }
  EXPECT_EQ(j_seeded, j1);
}

// Fused accumulation: attaching per-segment accumulators must not change
// any projection output, and the segment-merged Gram/cross totals must be
// bit-identical to a separate BernsteinDesignAccumulator sweep over the
// same scores — for 1 and more worker threads, warm and full calls alike.
TEST(IncrementalProjectorTest, FusedAccumulationMatchesSeparateSweep) {
  const int n = 150;
  const int d = 3;
  const int segment_rows = 64;  // several segments at this n
  const BezierCurve start = MonotoneCubic(d, 67);
  const Matrix data = RandomData(n, d, 68);
  const int num_segments = (n + segment_rows - 1) / segment_rows;

  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    IncrementalProjector plain;
    IncrementalProjector fused;
    IncrementalProjectorOptions options;
    plain.Bind(data, options, &pool);
    fused.Bind(data, options, &pool);
    std::vector<curve::BernsteinDesignAccumulator> segments(
        static_cast<size_t>(num_segments));
    for (auto& segment : segments) segment.Bind(3, d);
    fused.SetFusedAccumulators(&segments, segment_rows);

    BezierCurve curve = start;
    for (int t = 0; t < 3; ++t) {
      double j_plain = 0.0, j_fused = 0.0;
      const Vector s_plain = plain.Project(curve, &j_plain);
      const Vector s_fused = fused.Project(curve, &j_fused);
      EXPECT_EQ(j_plain, j_fused) << "threads " << threads << " t " << t;
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(s_plain[i], s_fused[i])
            << "threads " << threads << " t " << t << " row " << i;
      }
      // Segment-ordered merge == the separate sweep with the same fixed
      // segmentation, bit for bit (float addition is not associative, so
      // the reference must segment identically).
      curve::BernsteinDesignAccumulator merged;
      merged.Bind(3, d);
      for (const auto& segment : segments) merged.Merge(segment);
      curve::BernsteinDesignAccumulator reference;
      reference.Bind(3, d);
      for (int seg = 0; seg < num_segments; ++seg) {
        curve::BernsteinDesignAccumulator partial;
        partial.Bind(3, d);
        const int begin = seg * segment_rows;
        const int end = std::min(n, begin + segment_rows);
        for (int i = begin; i < end; ++i) {
          partial.AccumulateRow(s_plain[i], data.RowPtr(i));
        }
        reference.Merge(partial);
      }
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          EXPECT_EQ(merged.gram()(a, b), reference.gram()(a, b));
        }
        for (int b = 0; b < d; ++b) {
          EXPECT_EQ(merged.cross()(b, a), reference.cross()(b, a));
        }
      }
      curve = Perturbed(curve, 3e-3, 300 + static_cast<uint64_t>(t));
    }
  }
}

// Adaptive brackets: once rows settle the probe is skipped, yet results
// stay pinned to the full search by the certified-bound fallback — the
// final projection of a converged trajectory matches the global search.
TEST(IncrementalProjectorTest, AdaptiveBracketsSettleAndStayCorrect) {
  const BezierCurve start = MonotoneCubic(4, 77);
  const Matrix data = RandomData(200, 4, 78);
  IncrementalProjectorOptions options;
  options.adaptive_brackets = true;
  options.resync_period = 1000;  // no resync inside this test
  IncrementalProjector adaptive;
  adaptive.Bind(data, options, nullptr);

  // A stationary curve: after two calls every row's drift is ~0, so call
  // three onward must use the probe-free fast path for almost all rows.
  double j = 0.0;
  (void)adaptive.Project(start, &j);
  (void)adaptive.Project(start, &j);
  EXPECT_EQ(adaptive.last_probe_skip_count(), 0);  // drift history not yet set
  (void)adaptive.Project(start, &j);
  EXPECT_GE(adaptive.last_probe_skip_count(), data.rows() * 9 / 10);

  const Vector scores = adaptive.Project(start, &j);
  double j_batch = 0.0;
  const Vector batch = ProjectRowsBatch(start, data, {}, nullptr, &j_batch);
  for (int i = 0; i < scores.size(); ++i) {
    // The probe-free Newton path refines to the same stationary point the
    // full search found (both stop at tol 1e-10; allow that slack).
    EXPECT_NEAR(scores[i], batch[i], 1e-6) << "row " << i;
  }
  EXPECT_NEAR(j, j_batch, 1e-9 * (1.0 + std::fabs(j_batch)));
}

}  // namespace
}  // namespace rpc::opt
