#include "opt/polynomial.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::opt {
namespace {

TEST(PolynomialTest, EvaluateHorner) {
  // 1 + 2x + 3x^2 at x = 2 -> 17.
  const Polynomial p({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(0.0), 1.0);
}

TEST(PolynomialTest, DegreeTrimsLeadingZeros) {
  const Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1);
  const Polynomial zero({0.0, 0.0});
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.degree(), 0);
}

TEST(PolynomialTest, Derivative) {
  // d/dx (1 + 2x + 3x^2 + 4x^3) = 2 + 6x + 12x^2.
  const Polynomial p({1.0, 2.0, 3.0, 4.0});
  const Polynomial d = p.Derivative();
  EXPECT_EQ(d.degree(), 2);
  EXPECT_DOUBLE_EQ(d.Evaluate(1.0), 20.0);
}

TEST(PolynomialTest, Arithmetic) {
  const Polynomial a({1.0, 1.0});        // 1 + x
  const Polynomial b({0.0, 0.0, 1.0});   // x^2
  const Polynomial sum = a + b;
  EXPECT_DOUBLE_EQ(sum.Evaluate(2.0), 7.0);
  const Polynomial prod = a * b;         // x^2 + x^3
  EXPECT_DOUBLE_EQ(prod.Evaluate(2.0), 12.0);
  const Polynomial diff = prod - b;      // x^3
  EXPECT_DOUBLE_EQ(diff.Evaluate(3.0), 27.0);
}

TEST(PolynomialTest, RemainderMatchesDivision) {
  // (x^2 - 1) mod (x - 1) = 0; (x^2) mod (x - 1) = 1.
  const Polynomial x2m1({-1.0, 0.0, 1.0});
  const Polynomial xm1({-1.0, 1.0});
  EXPECT_TRUE(x2m1.Remainder(xm1).IsZero());
  const Polynomial x2({0.0, 0.0, 1.0});
  const Polynomial rem = x2.Remainder(xm1);
  EXPECT_EQ(rem.degree(), 0);
  EXPECT_DOUBLE_EQ(rem.Evaluate(0.0), 1.0);
}

TEST(PolynomialRootsTest, LinearRoot) {
  const Polynomial p({-0.5, 1.0});  // x - 0.5
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.5, 1e-10);
}

TEST(PolynomialRootsTest, QuadraticTwoRoots) {
  // (x - 0.25)(x - 0.75) = x^2 - x + 0.1875.
  const Polynomial p({0.1875, -1.0, 1.0});
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 0.25, 1e-9);
  EXPECT_NEAR(roots[1], 0.75, 1e-9);
}

TEST(PolynomialRootsTest, RootsOutsideIntervalIgnored) {
  // Roots at 2 and -1.
  const Polynomial p({-2.0, -1.0, 1.0});
  EXPECT_TRUE(p.RealRootsInInterval(0.0, 1.0).empty());
}

TEST(PolynomialRootsTest, NoRealRoots) {
  const Polynomial p({1.0, 0.0, 1.0});  // x^2 + 1
  EXPECT_TRUE(p.RealRootsInInterval(-10.0, 10.0).empty());
}

TEST(PolynomialRootsTest, RootAtEndpoint) {
  const Polynomial p({0.0, 1.0});  // x
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.0, 1e-9);
}

TEST(PolynomialRootsTest, DoubleRootReportedOnce) {
  // (x - 0.5)^2.
  const Polynomial p({0.25, -1.0, 1.0});
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.5, 1e-6);
}

TEST(PolynomialRootsTest, QuinticWithKnownRoots) {
  // (x-0.1)(x-0.3)(x-0.5)(x-0.7)(x-0.9) expanded via repeated products.
  Polynomial p({1.0});
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    p = p * Polynomial({-r, 1.0});
  }
  EXPECT_EQ(p.degree(), 5);
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 5u);
  const double expected[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(roots[i], expected[i], 1e-8);
  }
}

TEST(PolynomialRootsTest, RandomCubicsFindAllPlantedRoots) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    // Three distinct roots in (0, 1).
    double r1 = rng.Uniform(0.05, 0.3);
    double r2 = rng.Uniform(0.4, 0.6);
    double r3 = rng.Uniform(0.7, 0.95);
    Polynomial p({1.0});
    for (double r : {r1, r2, r3}) p = p * Polynomial({-r, 1.0});
    const auto roots = p.RealRootsInInterval(0.0, 1.0, 1e-13);
    ASSERT_EQ(roots.size(), 3u) << "trial " << trial;
    EXPECT_NEAR(roots[0], r1, 1e-8);
    EXPECT_NEAR(roots[1], r2, 1e-8);
    EXPECT_NEAR(roots[2], r3, 1e-8);
  }
}

TEST(PolynomialRootsTest, ScalesWithLargeCoefficients) {
  // 1e8 * (x - 0.5).
  const Polynomial p({-5e7, 1e8});
  const auto roots = p.RealRootsInInterval(0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.5, 1e-9);
}

TEST(PolynomialTest, ToStringReadable) {
  const Polynomial p({1.0, -2.0});
  EXPECT_EQ(p.ToString(), "1 + -2*x^1");
}

// ---- PolynomialRootWorkspace ----------------------------------------------

// One reused workspace must produce exactly the allocating path's roots over
// a battery of quintics (and lower degrees): random coefficients, known
// factored roots, multiple roots, extreme scaling. Reuse across calls is the
// point — stale chain state from a previous polynomial would surface here.
TEST(PolynomialRootWorkspaceTest, MatchesAllocatingPathOnQuinticBattery) {
  Rng rng(2026);
  PolynomialRootWorkspace workspace;
  double roots[PolynomialRootWorkspace::kMaxDegree];

  const auto check = [&](const Polynomial& p, const char* label) {
    const std::vector<double> expected = p.RealRootsInInterval(0.0, 1.0);
    const int count = p.RealRootsInInterval(
        0.0, 1.0, 1e-12, &workspace, roots,
        PolynomialRootWorkspace::kMaxDegree);
    ASSERT_EQ(count, static_cast<int>(expected.size())) << label;
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(roots[i], expected[static_cast<size_t>(i)])
          << label << " root " << i;
    }
  };

  // Random dense quintics (some with no roots in [0,1], some with several).
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> coeffs(6);
    for (double& c : coeffs) c = rng.Uniform(-2.0, 2.0);
    check(Polynomial(coeffs), "random quintic");
  }
  // Factored quintics with known interior roots.
  for (int trial = 0; trial < 50; ++trial) {
    Polynomial p({1.0});
    for (int r = 0; r < 5; ++r) {
      p = p * Polynomial({-rng.Uniform(-0.5, 1.5), 1.0});
    }
    check(p, "factored quintic");
  }
  // Multiple roots: (x - 1/3)^2 (x - 2/3)^3.
  Polynomial multiple({1.0});
  multiple = multiple * Polynomial({-1.0 / 3.0, 1.0});
  multiple = multiple * Polynomial({-1.0 / 3.0, 1.0});
  for (int i = 0; i < 3; ++i) {
    multiple = multiple * Polynomial({-2.0 / 3.0, 1.0});
  }
  check(multiple, "multiple roots");
  // Extreme coefficient scale.
  check(Polynomial({-5e7, 1e8}), "large scale linear");
  check(Polynomial({0.0}), "zero polynomial");
  check(Polynomial({1.0}), "constant");
  // Degrees 2-4 as used by the degree-ablation stationarity polynomials.
  for (int degree = 2; degree <= 4; ++degree) {
    std::vector<double> coeffs(static_cast<size_t>(degree) + 1);
    for (double& c : coeffs) c = rng.Uniform(-1.0, 1.0);
    check(Polynomial(coeffs), "low degree");
  }
}

// Degrees beyond the fixed capacity fall back to the allocating path.
TEST(PolynomialRootWorkspaceTest, OverCapacityDegreeFallsBack) {
  std::vector<double> coeffs(
      static_cast<size_t>(PolynomialRootWorkspace::kMaxDegree) + 2, 0.0);
  coeffs[0] = -0.5;
  coeffs[1] = 1.0;
  coeffs.back() = 1e-3;  // degree kMaxDegree + 1
  const Polynomial p(coeffs);
  ASSERT_GT(p.degree(), PolynomialRootWorkspace::kMaxDegree);

  PolynomialRootWorkspace workspace;
  double roots[PolynomialRootWorkspace::kMaxDegree];
  const int direct = workspace.RealRootsInInterval(
      p.coefficients().data(), static_cast<int>(p.coefficients().size()), 0.0,
      1.0, 1e-12, roots, PolynomialRootWorkspace::kMaxDegree);
  EXPECT_EQ(direct, -1);

  const std::vector<double> expected = p.RealRootsInInterval(0.0, 1.0);
  const int count =
      p.RealRootsInInterval(0.0, 1.0, 1e-12, &workspace, roots,
                            PolynomialRootWorkspace::kMaxDegree);
  ASSERT_EQ(count, static_cast<int>(expected.size()));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(roots[i], expected[static_cast<size_t>(i)]);
  }
}

// The evaluation counter advances during isolation (the honesty fix for
// ProjectionResult::evaluations) and resets cleanly.
TEST(PolynomialRootWorkspaceTest, CountsChainEvaluations) {
  PolynomialRootWorkspace workspace;
  double roots[PolynomialRootWorkspace::kMaxDegree];
  // (x - 0.25)(x - 0.5)(x - 0.75) expanded: 3 interior roots.
  const Polynomial p =
      Polynomial({-0.25, 1.0}) * Polynomial({-0.5, 1.0}) *
      Polynomial({-0.75, 1.0});
  const int count =
      p.RealRootsInInterval(0.0, 1.0, 1e-12, &workspace, roots,
                            PolynomialRootWorkspace::kMaxDegree);
  EXPECT_EQ(count, 3);
  EXPECT_GT(workspace.polynomial_evaluations(), 0);
  workspace.ResetEvaluationCount();
  EXPECT_EQ(workspace.polynomial_evaluations(), 0);
}

}  // namespace
}  // namespace rpc::opt
