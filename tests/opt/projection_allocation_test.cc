// Asserts the projection hot path's core contract: after Bind(), projecting
// a point performs zero heap allocations — for every method, including
// kQuinticRoots, whose Sturm root isolation runs inside the fixed-capacity
// PolynomialRootWorkspace since this PR. The whole test binary's operator
// new/delete are instrumented with a counter; the per-point loops below
// assert the counter does not move.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "opt/curve_projection.h"
#include "opt/incremental_projector.h"

namespace {

std::atomic<std::int64_t> g_allocations{0};

}  // namespace

// Program-wide replacements: every new/new[] in the binary (library code
// included) funnels through here.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;

BezierCurve MonotoneCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return data;
}

TEST(ProjectionAllocationTest, ProjectIsAllocationFreeForEveryMethod) {
  const BezierCurve curve = MonotoneCubic(4, 3);
  const Matrix data = RandomData(256, 4, 4);
  for (ProjectionMethod method :
       {ProjectionMethod::kGoldenSection, ProjectionMethod::kQuinticRoots,
        ProjectionMethod::kGridOnly, ProjectionMethod::kNewton}) {
    ProjectionOptions options;
    options.method = method;
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    // Touch every row once so any lazily-initialised state settles.
    for (int i = 0; i < data.rows(); ++i) {
      (void)workspace.Project(data.RowPtr(i));
    }
    const std::int64_t before =
        g_allocations.load(std::memory_order_relaxed);
    double checksum = 0.0;
    for (int i = 0; i < data.rows(); ++i) {
      checksum += workspace.Project(data.RowPtr(i)).s;
    }
    const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << "method " << static_cast<int>(method) << " allocated on the "
        << "per-point path (checksum " << checksum << ")";
  }
}

// The warm-start local refinement is part of the same per-point hot loop.
TEST(ProjectionAllocationTest, ProjectLocalIsAllocationFree) {
  const BezierCurve curve = MonotoneCubic(3, 13);
  const Matrix data = RandomData(128, 3, 14);
  for (ProjectionMethod method :
       {ProjectionMethod::kGoldenSection, ProjectionMethod::kQuinticRoots,
        ProjectionMethod::kNewton}) {
    ProjectionOptions options;
    options.method = method;
    options.enable_local_refinement = true;  // ProjectLocal needs hodographs
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    // Seed per-row s from a full projection outside the measured region.
    std::vector<double> warm(static_cast<size_t>(data.rows()));
    for (int i = 0; i < data.rows(); ++i) {
      warm[static_cast<size_t>(i)] = workspace.Project(data.RowPtr(i)).s;
    }
    const std::int64_t before =
        g_allocations.load(std::memory_order_relaxed);
    double checksum = 0.0;
    for (int i = 0; i < data.rows(); ++i) {
      const double s = warm[static_cast<size_t>(i)];
      bool hit_edge = false;
      checksum += workspace
                      .ProjectLocal(data.RowPtr(i),
                                    std::max(0.0, s - 1.0 / 32.0),
                                    std::min(1.0, s + 1.0 / 32.0), &hit_edge)
                      .s;
    }
    const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << "method " << static_cast<int>(method) << " (checksum " << checksum
        << ")";
  }
}

}  // namespace
}  // namespace rpc::opt
