#include "opt/curve_projection.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

// Straight diagonal line in 2-D as a degree-3 curve.
BezierCurve DiagonalCubic() {
  return BezierCurve(Matrix{{0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0},
                            {0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}});
}

// The S-shaped monotone cubic used in several tests.
BezierCurve SShapeCubic() {
  return BezierCurve(Matrix{{0.0, 0.45, 0.55, 1.0}, {0.0, 0.05, 0.95, 1.0}});
}

TEST(ProjectionTest, PointOnLineProjectsToItself) {
  const BezierCurve line = DiagonalCubic();
  // On a straight unit-speed-in-s diagonal the parameter equals position.
  const ProjectionResult r =
      ProjectOntoCurve(line, Vector{0.25, 0.25});
  EXPECT_NEAR(r.s, 0.25, 1e-7);
  EXPECT_NEAR(r.squared_distance, 0.0, 1e-12);
}

TEST(ProjectionTest, OrthogonalPointProjectsToFoot) {
  const BezierCurve line = DiagonalCubic();
  // (0.5, 0) projects to (0.25, 0.25), i.e. s = 0.25.
  const ProjectionResult r = ProjectOntoCurve(line, Vector{0.5, 0.0});
  EXPECT_NEAR(r.s, 0.25, 1e-6);
  EXPECT_NEAR(r.squared_distance, 0.125, 1e-9);
}

TEST(ProjectionTest, BeyondEndsClampsToEndpoints) {
  const BezierCurve line = DiagonalCubic();
  EXPECT_NEAR(ProjectOntoCurve(line, Vector{-1.0, -1.0}).s, 0.0, 1e-9);
  EXPECT_NEAR(ProjectOntoCurve(line, Vector{2.0, 2.0}).s, 1.0, 1e-9);
}

TEST(ProjectionTest, MethodsAgreeOnSmoothCurve) {
  const BezierCurve curve = SShapeCubic();
  Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const Vector x{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    ProjectionOptions gss;
    gss.method = ProjectionMethod::kGoldenSection;
    ProjectionOptions quintic;
    quintic.method = ProjectionMethod::kQuinticRoots;
    const ProjectionResult a = ProjectOntoCurve(curve, x, gss);
    const ProjectionResult b = ProjectOntoCurve(curve, x, quintic);
    // The two solvers must find equally good minima.
    EXPECT_NEAR(a.squared_distance, b.squared_distance, 1e-7)
        << "x=" << x.ToString();
    EXPECT_NEAR(a.s, b.s, 1e-4) << "x=" << x.ToString();
  }
}

TEST(ProjectionTest, NewtonAgreesWithExactSolver) {
  const BezierCurve curve = SShapeCubic();
  Rng rng(56);
  ProjectionOptions newton;
  newton.method = ProjectionMethod::kNewton;
  ProjectionOptions quintic;
  quintic.method = ProjectionMethod::kQuinticRoots;
  for (int trial = 0; trial < 100; ++trial) {
    const Vector x{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    const ProjectionResult a = ProjectOntoCurve(curve, x, newton);
    const ProjectionResult b = ProjectOntoCurve(curve, x, quintic);
    EXPECT_NEAR(a.squared_distance, b.squared_distance, 1e-7)
        << "x=" << x.ToString();
  }
}

TEST(ProjectionTest, NewtonHandlesEndpointsAndOnCurvePoints) {
  const BezierCurve curve = SShapeCubic();
  ProjectionOptions newton;
  newton.method = ProjectionMethod::kNewton;
  EXPECT_NEAR(ProjectOntoCurve(curve, Vector{-0.5, -0.5}, newton).s, 0.0,
              1e-6);
  EXPECT_NEAR(ProjectOntoCurve(curve, Vector{1.5, 1.5}, newton).s, 1.0,
              1e-6);
  for (double s : {0.2, 0.5, 0.8}) {
    const ProjectionResult r =
        ProjectOntoCurve(curve, curve.Evaluate(s), newton);
    EXPECT_NEAR(r.s, s, 1e-5);
    EXPECT_NEAR(r.squared_distance, 0.0, 1e-10);
  }
}

TEST(ProjectionTest, GridOnlyIsCoarser) {
  const BezierCurve curve = SShapeCubic();
  ProjectionOptions grid;
  grid.method = ProjectionMethod::kGridOnly;
  grid.grid_points = 8;
  const Vector x{0.31, 0.4};
  const ProjectionResult coarse = ProjectOntoCurve(curve, x, grid);
  const ProjectionResult fine = ProjectOntoCurve(curve, x);
  EXPECT_GE(coarse.squared_distance, fine.squared_distance - 1e-12);
  // Grid answers are multiples of 1/8.
  EXPECT_NEAR(coarse.s * 8.0, std::round(coarse.s * 8.0), 1e-12);
}

TEST(ProjectionTest, SupTieBreakOnEquidistantPoint) {
  // For the symmetric S curve, the point (0.5, 0.5) sits at the centre;
  // perturbing to an exactly ambiguous configuration exercises the sup rule
  // on the diagonal line instead: any point equidistant to two branches.
  // Here: a straight horizontal segment y = 0 from (0,0) to (1,0) and the
  // query (0.5, 1): all of s have distance >= 1, the minimum at s = 0.5 is
  // unique, but for the *flat* curve below every s is equally distant and
  // the sup rule must return s = 1.
  const BezierCurve flat(
      Matrix{{0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}, {0.0, 0.0, 0.0, 0.0}});
  // Project a point equidistant from the entire segment in y only: pick
  // x-coordinate outside so the distance strictly decreases toward s=1?
  // No: choose the query directly above the segment's interior is nearest
  // at its own x. Instead use a query far above so the y-term dominates and
  // x variation is negligible? The clean equidistant case is the segment
  // degenerate to a point:
  const BezierCurve degenerate(
      Matrix{{0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}});
  const ProjectionResult r =
      ProjectOntoCurve(degenerate, Vector{0.9, 0.1});
  EXPECT_NEAR(r.s, 1.0, 1e-9);  // sup of the (everything-ties) argmin set
}

TEST(ProjectionTest, QuinticSolvesStationarity) {
  const BezierCurve curve = SShapeCubic();
  ProjectionOptions quintic;
  quintic.method = ProjectionMethod::kQuinticRoots;
  const Vector x{0.4, 0.7};
  const ProjectionResult r = ProjectOntoCurve(curve, x, quintic);
  if (r.s > 1e-9 && r.s < 1.0 - 1e-9) {
    // Interior minimiser must satisfy f'(s) . (x - f(s)) = 0 (Eq. 20).
    const Vector deriv = curve.Derivative(r.s);
    const Vector residual = x - curve.Evaluate(r.s);
    EXPECT_NEAR(linalg::Dot(deriv, residual), 0.0, 1e-7);
  }
}

TEST(ProjectRowsTest, AccumulatesResidual) {
  const BezierCurve line = DiagonalCubic();
  Matrix data{{0.0, 0.0}, {0.5, 0.5}, {1.0, 0.0}};
  double total = 0.0;
  const Vector scores = ProjectRows(line, data, {}, &total);
  EXPECT_EQ(scores.size(), 3);
  EXPECT_NEAR(scores[0], 0.0, 1e-7);
  EXPECT_NEAR(scores[1], 0.5, 1e-6);
  // Third point: distance^2 to (0.5,0.5) = 0.5.
  EXPECT_NEAR(total, 0.5, 1e-6);
}

TEST(ProjectionTest, HigherDimensionalCurve) {
  // 4-D monotone cubic; projection of an on-curve point recovers s.
  Matrix control(4, 4);
  for (int j = 0; j < 4; ++j) {
    control(j, 0) = 0.0;
    control(j, 1) = 0.3 + 0.1 * j;
    control(j, 2) = 0.6 + 0.05 * j;
    control(j, 3) = 1.0;
  }
  const BezierCurve curve(control);
  for (double s : {0.1, 0.42, 0.77}) {
    const ProjectionResult r = ProjectOntoCurve(curve, curve.Evaluate(s));
    EXPECT_NEAR(r.s, s, 1e-6);
    EXPECT_NEAR(r.squared_distance, 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace rpc::opt
