#include "opt/batch_projection.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "opt/curve_projection.h"

namespace rpc::opt {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

constexpr ProjectionMethod kAllMethods[] = {
    ProjectionMethod::kGoldenSection, ProjectionMethod::kQuinticRoots,
    ProjectionMethod::kGridOnly, ProjectionMethod::kNewton};

const char* MethodName(ProjectionMethod method) {
  switch (method) {
    case ProjectionMethod::kGoldenSection: return "GoldenSection";
    case ProjectionMethod::kQuinticRoots: return "QuinticRoots";
    case ProjectionMethod::kGridOnly: return "GridOnly";
    case ProjectionMethod::kNewton: return "Newton";
  }
  return "?";
}

// A monotone-ish random cubic in d dimensions (the Horner fast path).
BezierCurve RandomCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.5);
    control(i, 2) = rng.Uniform(0.5, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

// A random quadratic (degree != 3 exercises the de Casteljau scratch path).
BezierCurve RandomQuadratic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 3);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.2, 0.8);
    control(i, 2) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      data(i, j) = rng.Uniform(-0.2, 1.2);  // includes beyond-end points
    }
  }
  return data;
}

// Batch scores and total J must be bit-identical to the serial path for
// every method and any thread count (the engine's core contract).
TEST(BatchProjectionTest, BitIdenticalToSerialAcrossMethodsAndThreads) {
  const int n = 257;  // odd, so chunks are ragged
  for (const BezierCurve& curve :
       {RandomCubic(3, 11), RandomQuadratic(3, 12)}) {
    const Matrix data = RandomData(n, curve.dimension(), 99);
    for (ProjectionMethod method : kAllMethods) {
      ProjectionOptions options;
      options.method = method;
      double serial_total = 0.0;
      const Vector serial =
          ProjectRows(curve, data, options, &serial_total);
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        double batch_total = 0.0;
        const Vector batch =
            ProjectRowsBatch(curve, data, options, &pool, &batch_total);
        ASSERT_EQ(batch.size(), n);
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(batch[i], serial[i])
              << MethodName(method) << " threads=" << threads << " row " << i;
        }
        EXPECT_EQ(batch_total, serial_total)
            << MethodName(method) << " threads=" << threads;
      }
    }
  }
}

// The per-call convenience wrapper agrees bitwise with the batch engine.
TEST(BatchProjectionTest, MatchesProjectOntoCurvePerPoint) {
  const BezierCurve curve = RandomCubic(4, 21);
  const Matrix data = RandomData(64, 4, 22);
  for (ProjectionMethod method : kAllMethods) {
    ProjectionOptions options;
    options.method = method;
    const Vector batch = ProjectRowsBatch(curve, data, options, nullptr);
    for (int i = 0; i < data.rows(); ++i) {
      const ProjectionResult single =
          ProjectOntoCurve(curve, data.Row(i), options);
      EXPECT_EQ(batch[i], single.s) << MethodName(method) << " row " << i;
    }
  }
}

TEST(BatchProjectionTest, NullPoolAndSerialPoolAgree) {
  const BezierCurve curve = RandomCubic(2, 31);
  const Matrix data = RandomData(50, 2, 32);
  ThreadPool serial_pool(1);
  double a = 0.0;
  double b = 0.0;
  const Vector no_pool = ProjectRowsBatch(curve, data, {}, nullptr, &a);
  const Vector one_thread =
      ProjectRowsBatch(curve, data, {}, &serial_pool, &b);
  for (int i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(no_pool[i], one_thread[i]);
  }
  EXPECT_EQ(a, b);
}

TEST(BatchProjectionTest, EmptyDataReturnsEmptyScores) {
  const BezierCurve curve = RandomCubic(3, 41);
  ThreadPool pool(4);
  double total = -1.0;
  const Vector scores =
      ProjectRowsBatch(curve, Matrix(0, 3), {}, &pool, &total);
  EXPECT_EQ(scores.size(), 0);
  EXPECT_EQ(total, 0.0);
}

// ProjectionResult::evaluations must count every evaluation the solver
// performed — no more, no fewer. The workspace's own counters are the
// ground truth: objective (squared-distance) evaluations for all methods,
// plus stationarity evaluations for kNewton.
TEST(BatchProjectionTest, EvaluationAccountingConsistentAcrossMethods) {
  const BezierCurve curve = RandomCubic(3, 51);
  const Matrix data = RandomData(40, 3, 52);
  for (ProjectionMethod method : kAllMethods) {
    ProjectionOptions options;
    options.method = method;
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    std::int64_t reported = 0;
    for (int i = 0; i < data.rows(); ++i) {
      reported += workspace.Project(data.RowPtr(i)).evaluations;
    }
    EXPECT_EQ(reported, workspace.objective_evaluations() +
                            workspace.stationarity_evaluations())
        << MethodName(method);
  }
}

// Regression for the double-counted s = 1 endpoint probe in the Newton
// method: for a point past the best end of a straight diagonal the grid
// pass costs g+1 objective evaluations and the single boundary bracket's
// final candidate one more — the boundary probe must reuse the grid value
// instead of evaluating (and counting) s = 1 again.
TEST(BatchProjectionTest, NewtonBoundaryProbeIsNotDoubleCounted) {
  const BezierCurve line =
      BezierCurve(Matrix{{0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0},
                         {0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}});
  ProjectionOptions options;
  options.method = ProjectionMethod::kNewton;
  const int g = options.grid_points;
  ProjectionWorkspace workspace;
  workspace.Bind(line, options);
  const double x[2] = {2.0, 2.0};
  const ProjectionResult result = workspace.Project(x);
  EXPECT_NEAR(result.s, 1.0, 1e-7);
  EXPECT_EQ(workspace.objective_evaluations(), g + 2);
  EXPECT_EQ(result.evaluations, workspace.objective_evaluations() +
                                    workspace.stationarity_evaluations());
}

// Larger s wins ties through the batch path too (the sup of Eq. A-2).
TEST(BatchProjectionTest, SupTieBreakSurvivesBatch) {
  // Symmetric arch: (0.5, far above) is equidistant from both flanks.
  const BezierCurve arch =
      BezierCurve(Matrix{{0.0, 0.25, 0.75, 1.0}, {0.0, 1.0, 1.0, 0.0}});
  Matrix data(1, 2);
  data(0, 0) = 0.5;
  data(0, 1) = 5.0;
  ThreadPool pool(2);
  const Vector scores = ProjectRowsBatch(arch, data, {}, &pool);
  const ProjectionResult single = ProjectOntoCurve(arch, data.Row(0), {});
  EXPECT_EQ(scores[0], single.s);
  EXPECT_GT(scores[0], 0.5);
}

// The fused projection+accumulation pass must reproduce ProjectRowsBatch's
// scores/J bitwise and its segment accumulators, merged in order, must
// equal a serial accumulator sweep — for every thread count.
TEST(BatchProjectionTest, FusedVariantMatchesPlainBatchAndSerialSweep) {
  Rng rng(77);
  const int n = 333;
  const int d = 3;
  const int segment_rows = 128;
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  const BezierCurve curve(control);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }

  double j_plain = 0.0;
  const Vector plain = ProjectRowsBatch(curve, data, {}, nullptr, &j_plain);
  // Reference: the separate (unfused) sweep with the same fixed
  // segmentation and segment-ordered merge — the exact reduction the fit
  // workspace runs. (A flat n-row sweep would differ in the last bits:
  // float addition is not associative; the *segmented* order is the
  // contract.)
  const int num_segments = (n + segment_rows - 1) / segment_rows;
  curve::BernsteinDesignAccumulator reference;
  reference.Bind(3, d);
  for (int seg = 0; seg < num_segments; ++seg) {
    curve::BernsteinDesignAccumulator partial;
    partial.Bind(3, d);
    const int begin = seg * segment_rows;
    const int end = std::min(n, begin + segment_rows);
    for (int i = begin; i < end; ++i) {
      partial.AccumulateRow(plain[i], data.RowPtr(i));
    }
    reference.Merge(partial);
  }
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<curve::BernsteinDesignAccumulator> segments(
        static_cast<size_t>(num_segments));
    for (auto& segment : segments) segment.Bind(3, d);
    double j_fused = 0.0;
    const Vector fused = ProjectRowsBatchFused(
        curve, data, {}, &pool, &segments, segment_rows, &j_fused);
    EXPECT_EQ(j_fused, j_plain) << "threads " << threads;
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(fused[i], plain[i]) << "threads " << threads << " row " << i;
    }
    curve::BernsteinDesignAccumulator merged;
    merged.Bind(3, d);
    for (const auto& segment : segments) merged.Merge(segment);
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(merged.gram()(a, b), reference.gram()(a, b))
            << "threads " << threads;
      }
      for (int b = 0; b < d; ++b) {
        EXPECT_EQ(merged.cross()(b, a), reference.cross()(b, a))
            << "threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace rpc::opt
