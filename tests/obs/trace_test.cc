#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rpc::obs {
namespace {

#ifdef RPC_OBS_DISABLED

TEST(TraceTest, DisabledBuildIsInert) {
  EXPECT_EQ(NewTraceId(), 0u);
  EXPECT_FALSE(TracingEnabled());
  EmitSpan(42, "noop", 1, 2);
  { Span span(42, "noop_raii"); }
  EXPECT_TRUE(CollectSpans().empty());
  EXPECT_TRUE(CollectTrace(42).empty());
}

#else  // !RPC_OBS_DISABLED

TEST(TraceTest, EmitAndCollectRoundtrip) {
  const TraceId trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  EmitSpan(trace, "alpha", 100, 200);
  EmitSpan(trace, "beta", 150, 250);
  EmitSpan(trace, "gamma", 50, 120);
  const std::vector<SpanRecord> spans = CollectTrace(trace);
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start time.
  EXPECT_STREQ(spans[0].name, "gamma");
  EXPECT_STREQ(spans[1].name, "alpha");
  EXPECT_STREQ(spans[2].name, "beta");
  EXPECT_EQ(spans[0].start_ns, 50);
  EXPECT_EQ(spans[0].end_ns, 120);
  for (const SpanRecord& span : spans) EXPECT_EQ(span.trace_id, trace);
}

TEST(TraceTest, SpanRaiiEmitsOnDestruction) {
  const TraceId trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  { Span span(trace, "raii_scope"); }
  const std::vector<SpanRecord> spans = CollectTrace(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "raii_scope");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(TraceTest, TraceZeroIsNeverRecorded) {
  EmitSpan(0, "untraced", 1, 2);
  { Span span(0, "untraced_raii"); }
  EXPECT_TRUE(CollectTrace(0).empty());
}

TEST(TraceTest, RuntimeSwitchGatesIdAllocationOnly) {
  SetTracingEnabled(false);
  EXPECT_FALSE(TracingEnabled());
  EXPECT_EQ(NewTraceId(), 0u);
  // An explicitly propagated nonzero id still records while the switch is
  // off — that is how a caller forces tracing for one query.
  const TraceId forced = 0xF0ECEDF0ECEDull;
  EmitSpan(forced, "forced", 10, 20);
  SetTracingEnabled(true);
  EXPECT_TRUE(TracingEnabled());
  EXPECT_NE(NewTraceId(), 0u);
  const std::vector<SpanRecord> spans = CollectTrace(forced);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "forced");
}

TEST(TraceTest, RingWraparoundKeepsNewestSpans) {
  const TraceId trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  constexpr int kEmitted = 6000;  // > ring capacity (4096)
  for (int i = 0; i < kEmitted; ++i) {
    EmitSpan(trace, "wrap", i, i + 1);
  }
  const std::vector<SpanRecord> spans = CollectTrace(trace);
  EXPECT_LE(spans.size(), 4096u);
  EXPECT_GE(spans.size(), 1u);
  // The newest span survives the wrap; the oldest were overwritten.
  std::int64_t max_start = -1;
  for (const SpanRecord& span : spans) {
    max_start = std::max(max_start, span.start_ns);
  }
  EXPECT_EQ(max_start, kEmitted - 1);
}

TEST(TraceTest, PerThreadRingsMergeAcrossThreads) {
  const TraceId trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([trace, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const std::int64_t base = 1000 * t + i;
        EmitSpan(trace, "mt", base, base + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<SpanRecord> spans = CollectTrace(trace);
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(),
      [](const SpanRecord& a, const SpanRecord& b) {
        return a.start_ns < b.start_ns;
      }));
}

TEST(TraceTest, CollectTraceFiltersOtherTraces) {
  const TraceId a = NewTraceId();
  const TraceId b = NewTraceId();
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EmitSpan(a, "mine", 1, 2);
  EmitSpan(b, "theirs", 3, 4);
  for (const SpanRecord& span : CollectTrace(a)) {
    EXPECT_EQ(span.trace_id, a);
    EXPECT_STREQ(span.name, "mine");
  }
  ASSERT_EQ(CollectTrace(a).size(), 1u);
}

#endif  // RPC_OBS_DISABLED

TEST(TraceTest, TraceNowNsIsMonotoneNonDecreasing) {
  // Available in every build, including RPC_OBS_DISABLED.
  const std::int64_t a = TraceNowNs();
  const std::int64_t b = TraceNowNs();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace rpc::obs
