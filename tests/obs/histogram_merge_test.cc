#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/buckets.h"
#include "obs/metrics.h"

namespace rpc::obs {
namespace {

// Deterministic integer-valued sample stream. Integer values keep the
// atomic-double sum accumulation exact and associative, so the sharded
// concurrent histogram must match the single-threaded reference to the
// last bit, not just approximately.
std::int64_t SampleValue(int thread, int i) {
  const std::uint64_t x =
      (static_cast<std::uint64_t>(thread) * 2654435761u + i) * 0x9e3779b97f4a7c15ull;
  // Spread across the latency bucket range: 0 .. ~2^20 us.
  return static_cast<std::int64_t>((x >> 17) % (1u << 20));
}

TEST(HistogramMergeTest, ConcurrentShardsMatchSingleThreadedReference) {
  constexpr int kThreads = 8;  // covers every shard (kMetricShards = 8)
  constexpr int kSamplesPerThread = 50000;

  Registry registry;
  const std::vector<double> bounds = LatencyBucketUpperBoundsUs();
  Histogram concurrent = registry.GetHistogram("concurrent", bounds);
  Histogram reference = registry.GetHistogram("reference", bounds);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        concurrent.Record(static_cast<double>(SampleValue(t, i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // The reference sees the identical multiset, recorded by one thread.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kSamplesPerThread; ++i) {
      reference.Record(static_cast<double>(SampleValue(t, i)));
    }
  }

  const HistogramSnapshot merged = concurrent.Merge();
  const HistogramSnapshot expected = reference.Merge();

  EXPECT_EQ(merged.count,
            static_cast<std::int64_t>(kThreads) * kSamplesPerThread);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);  // exact: integer-valued samples
  ASSERT_EQ(merged.counts.size(), expected.counts.size());
  for (std::size_t b = 0; b < merged.counts.size(); ++b) {
    EXPECT_EQ(merged.counts[b], expected.counts[b]) << "bucket " << b;
  }
}

TEST(HistogramMergeTest, QuantileUpperBoundIsMonotone) {
  Registry registry;
  Histogram histogram =
      registry.GetHistogram("quantiles", LatencyBucketUpperBoundsUs());
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 10000; ++i) {
      histogram.Record(static_cast<double>(SampleValue(t, i)));
    }
  }
  const HistogramSnapshot snapshot = histogram.Merge();
  double previous = snapshot.QuantileUpperBound(0.0);
  for (int step = 1; step <= 100; ++step) {
    const double q = static_cast<double>(step) / 100.0;
    const double bound = snapshot.QuantileUpperBound(q);
    EXPECT_GE(bound, previous) << "q = " << q;
    previous = bound;
  }
}

TEST(HistogramMergeTest, EmptyHistogramMergesToZero) {
  Registry registry;
  Histogram histogram = registry.GetHistogram("empty", {1.0, 2.0});
  const HistogramSnapshot snapshot = histogram.Merge();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.sum, 0.0);
  for (const std::int64_t c : snapshot.counts) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace rpc::obs
