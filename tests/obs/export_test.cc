#include "obs/export.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace rpc::obs {
namespace {

// All exporter tests use local Registry instances: the global registry is
// shared by every test in this binary and its contents depend on which
// subsystems other tests have touched.

TEST(PrometheusTextTest, CounterAndGaugeSamples) {
  Registry registry;
  registry.GetCounter("exp_requests_total", {}, "Requests served.").Add(7);
  registry.GetGauge("exp_depth", {{"svc", "0"}}).Set(3);
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# HELP exp_requests_total Requests served.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("exp_depth{svc=\"0\"} 3\n"), std::string::npos);
}

TEST(PrometheusTextTest, TypeLineAppearsOncePerFamily) {
  Registry registry;
  registry.GetCounter("exp_family_total", {{"k", "a"}}).Increment();
  registry.GetCounter("exp_family_total", {{"k", "b"}}).Increment();
  const std::string text = PrometheusText(registry);
  const std::string type_line = "# TYPE exp_family_total counter";
  const std::size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
  EXPECT_NE(text.find("exp_family_total{k=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("exp_family_total{k=\"b\"} 1\n"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramIsCumulativeWithInfBucket) {
  Registry registry;
  Histogram histogram = registry.GetHistogram("exp_lat_us", {1.0, 10.0});
  histogram.Record(0.5);    // [<1)
  histogram.Record(5.0);    // [1,10)
  histogram.Record(5.5);    // [1,10)
  histogram.Record(100.0);  // overflow
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE exp_lat_us histogram\n"), std::string::npos);
  // Buckets are cumulative in le order and end with +Inf == _count.
  EXPECT_NE(text.find("exp_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("exp_lat_us_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("exp_lat_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_lat_us_sum 111\n"), std::string::npos);
  EXPECT_NE(text.find("exp_lat_us_count 4\n"), std::string::npos);
}

TEST(PrometheusTextTest, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("exp_esc_total", {{"path", "a\"b\\c\nd"}}).Increment();
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("exp_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(JsonSnapshotTest, StructureAndValues) {
  Registry registry;
  registry.GetCounter("exp_json_total", {{"k", "v"}}).Add(2);
  Histogram histogram = registry.GetHistogram("exp_json_us", {4.0});
  histogram.Record(3.0);
  histogram.Record(9.0);
  const std::string json = JsonSnapshot(registry, /*include_spans=*/false);
  EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"exp_json_total\",\"type\":\"counter\","
                      "\"labels\":{\"k\":\"v\"},\"value\":2"),
            std::string::npos);
  // JSON histograms carry per-bucket (not cumulative) counts.
  EXPECT_NE(json.find("\"name\":\"exp_json_us\",\"type\":\"histogram\","
                      "\"labels\":{},\"bounds\":[4],\"counts\":[1,1],"
                      "\"sum\":12,\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos);
}

TEST(JsonSnapshotTest, AppendJsonEscapedHandlesControls) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");
}

TEST(SinkTest, VectorSinkKeepsOrderAndFiltersByKind) {
  VectorSink sink;
  sink.Emit("metrics", "{\"a\":1}");
  sink.Emit("slow_query", "{\"b\":2}");
  sink.Emit("metrics", "{\"c\":3}");
  ASSERT_EQ(sink.events().size(), 3u);
  const std::vector<VectorSink::Event> metrics = sink.EventsOfKind("metrics");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].payload, "{\"a\":1}");
  EXPECT_EQ(metrics[1].payload, "{\"c\":3}");
  ASSERT_EQ(sink.EventsOfKind("slow_query").size(), 1u);
  EXPECT_TRUE(sink.EventsOfKind("absent").empty());
}

TEST(SinkTest, FileSinkWritesTabSeparatedLines) {
  const std::string path =
      testing::TempDir() + "/obs_export_file_sink_test.log";
  std::remove(path.c_str());
  {
    FileSink sink(path);
    sink.Emit("metrics", "{\"x\":1}");
    sink.Emit("slow_query", "{\"y\":2}");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "metrics\t{\"x\":1}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "slow_query\t{\"y\":2}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(PeriodicFlusherTest, FinalFlushOnDestruction) {
  Registry registry;
  registry.GetCounter("exp_flush_total").Add(5);
  VectorSink sink;
  {
    PeriodicFlusher::Options options;
    options.period = std::chrono::milliseconds(3600 * 1000);  // never fires
    PeriodicFlusher flusher(&sink, options, &registry);
  }
  const std::vector<VectorSink::Event> events = sink.EventsOfKind("metrics");
  ASSERT_GE(events.size(), 1u);
  EXPECT_NE(events.back().payload.find("\"name\":\"exp_flush_total\""),
            std::string::npos);
  EXPECT_NE(events.back().payload.find("\"value\":5"), std::string::npos);
}

TEST(PeriodicFlusherTest, PeriodicEmissionAndFlushNow) {
  Registry registry;
  registry.GetGauge("exp_live").Set(1);
  VectorSink sink;
  PeriodicFlusher::Options options;
  options.period = std::chrono::milliseconds(5);
  PeriodicFlusher flusher(&sink, options, &registry);
  flusher.FlushNow();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink.EventsOfKind("metrics").size() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sink.EventsOfKind("metrics").size(), 2u);
}

}  // namespace
}  // namespace rpc::obs
