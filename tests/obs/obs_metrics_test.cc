#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rpc::obs {
namespace {

TEST(CounterTest, SameSeriesSharesCells) {
  Registry registry;
  Counter a = registry.GetCounter("c_shared", {{"k", "v"}});
  Counter b = registry.GetCounter("c_shared", {{"k", "v"}});
  a.Add(3);
  b.Increment();
  EXPECT_EQ(a.Value(), 4);
  EXPECT_EQ(b.Value(), 4);
}

TEST(CounterTest, LabelOrderDoesNotSplitTheSeries) {
  Registry registry;
  Counter a = registry.GetCounter("c_order", {{"a", "1"}, {"b", "2"}});
  Counter b = registry.GetCounter("c_order", {{"b", "2"}, {"a", "1"}});
  a.Increment();
  EXPECT_EQ(b.Value(), 1);
}

TEST(CounterTest, DifferentLabelsAreDifferentSeries) {
  Registry registry;
  Counter a = registry.GetCounter("c_split", {{"k", "a"}});
  Counter b = registry.GetCounter("c_split", {{"k", "b"}});
  a.Add(5);
  EXPECT_EQ(a.Value(), 5);
  EXPECT_EQ(b.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsAllLand) {
  Registry registry;
  Counter counter = registry.GetCounter("c_mt");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::int64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge gauge = registry.GetGauge("g");
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(4.5);
  EXPECT_EQ(gauge.Value(), 4.5);
  gauge.Add(0.5);
  EXPECT_EQ(gauge.Value(), 5.0);
}

TEST(HandleTest, DefaultConstructedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.Add(7);
  gauge.Set(1.0);
  histogram.Record(2.0);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.TotalCount(), 0);
}

TEST(RegistryTest, TypeConflictReturnsDetachedButWorkingCells) {
  Registry registry;
  Counter counter = registry.GetCounter("conflict");
  counter.Add(2);
  // Same name, different type: the handle must still work (no crash, no
  // corruption of the original series) but must not join the counter.
  Gauge gauge = registry.GetGauge("conflict");
  gauge.Set(9.0);
  EXPECT_EQ(gauge.Value(), 9.0);
  EXPECT_EQ(counter.Value(), 2);
  int conflict_series = 0;
  for (const Registry::Sample& sample : registry.Snapshot()) {
    if (sample.name == "conflict") {
      ++conflict_series;
      EXPECT_EQ(sample.type, MetricType::kCounter);
      EXPECT_EQ(sample.value, 2.0);
    }
  }
  EXPECT_EQ(conflict_series, 1);
}

TEST(RegistryTest, CallbackGaugeLifecycle) {
  Registry registry;
  double live_value = 1.5;
  {
    Registry::CallbackHandle handle = registry.GetCallbackGauge(
        "cb", {}, [&live_value] { return live_value; });
    live_value = 7.25;
    bool found = false;
    for (const Registry::Sample& sample : registry.Snapshot()) {
      if (sample.name != "cb") continue;
      found = true;
      EXPECT_EQ(sample.type, MetricType::kGauge);
      EXPECT_EQ(sample.value, 7.25);
    }
    EXPECT_TRUE(found);
  }
  // Handle destroyed: the series unregisters (its callback would dangle).
  for (const Registry::Sample& sample : registry.Snapshot()) {
    EXPECT_NE(sample.name, "cb");
  }
}

TEST(RegistryTest, SnapshotIsSortedByNameThenLabels) {
  Registry registry;
  registry.GetCounter("zz");
  registry.GetCounter("aa", {{"k", "2"}});
  registry.GetCounter("aa", {{"k", "1"}});
  registry.GetGauge("mm");
  const std::vector<Registry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "aa");
  EXPECT_EQ(samples[0].labels, (Labels{{"k", "1"}}));
  EXPECT_EQ(samples[1].name, "aa");
  EXPECT_EQ(samples[1].labels, (Labels{{"k", "2"}}));
  EXPECT_EQ(samples[2].name, "mm");
  EXPECT_EQ(samples[3].name, "zz");
}

TEST(RegistryTest, HistogramSnapshotInSamples) {
  Registry registry;
  Histogram histogram = registry.GetHistogram("h", {1.0, 10.0});
  histogram.Record(0.5);   // bucket 0: [<1)
  histogram.Record(5.0);   // bucket 1: [1, 10)
  histogram.Record(100.0); // bucket 2: +Inf
  for (const Registry::Sample& sample : registry.Snapshot()) {
    if (sample.name != "h") continue;
    ASSERT_EQ(sample.histogram.counts.size(), 3u);
    EXPECT_EQ(sample.histogram.counts[0], 1);
    EXPECT_EQ(sample.histogram.counts[1], 1);
    EXPECT_EQ(sample.histogram.counts[2], 1);
    EXPECT_EQ(sample.histogram.count, 3);
    EXPECT_EQ(sample.histogram.sum, 105.5);
  }
}

TEST(RegistryTest, GlobalIsOneInstance) {
  Counter a = Registry::Global().GetCounter("metrics_test_global_probe");
  Counter b = Registry::Global().GetCounter("metrics_test_global_probe");
  a.Increment();
  EXPECT_EQ(b.Value(), a.Value());
}

}  // namespace
}  // namespace rpc::obs
