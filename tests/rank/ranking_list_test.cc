#include "rank/ranking_list.h"

#include <gtest/gtest.h>

namespace rpc::rank {
namespace {

using linalg::Vector;

TEST(RankingListTest, SortsDescendingByDefault) {
  const RankingList list(Vector{0.2, 0.9, 0.5});
  const auto order = list.OrderedIndices();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(list.PositionOf(1), 1);
  EXPECT_EQ(list.PositionOf(0), 3);
}

TEST(RankingListTest, AscendingMode) {
  const RankingList list(Vector{0.2, 0.9, 0.5}, /*higher_is_better=*/false);
  EXPECT_EQ(list.PositionOf(0), 1);
  EXPECT_EQ(list.PositionOf(1), 3);
}

TEST(RankingListTest, LabelsCarriedThrough) {
  const RankingList list(Vector{1.0, 2.0}, {"low", "high"});
  EXPECT_EQ(list.items()[0].label, "high");
  EXPECT_EQ(list.items()[1].label, "low");
}

TEST(RankingListTest, TiesShareAverageRank) {
  const RankingList list(Vector{0.5, 0.5, 0.1});
  // Positions 1 and 2 tied -> average 1.5 for both.
  EXPECT_DOUBLE_EQ(list.AverageRankOf(0), 1.5);
  EXPECT_DOUBLE_EQ(list.AverageRankOf(1), 1.5);
  EXPECT_DOUBLE_EQ(list.AverageRankOf(2), 3.0);
}

TEST(RankingListTest, TieBreaksAreDeterministicByIndex) {
  const RankingList list(Vector{0.5, 0.5});
  EXPECT_EQ(list.PositionOf(0), 1);
  EXPECT_EQ(list.PositionOf(1), 2);
}

TEST(RankingListTest, PositionsAreConsistentWithItems) {
  const RankingList list(Vector{3.0, 1.0, 2.0, 5.0});
  for (const RankedItem& item : list.items()) {
    EXPECT_EQ(list.PositionOf(item.index), item.position);
  }
}

TEST(RankingListTest, TableStringShowsTopRows) {
  const RankingList list(Vector{0.1, 0.9}, {"worst", "best"});
  const std::string table = list.ToTableString(1);
  EXPECT_NE(table.find("best"), std::string::npos);
  EXPECT_EQ(table.find("worst"), std::string::npos);
}

TEST(RankingListTest, EmptyList) {
  const RankingList list(Vector{});
  EXPECT_EQ(list.size(), 0);
  EXPECT_TRUE(list.OrderedIndices().empty());
}

}  // namespace
}  // namespace rpc::rank
