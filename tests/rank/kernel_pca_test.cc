#include "rank/kernel_pca.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "rank/metrics.h"

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

TEST(KernelPcaTest, RecoversOrderOnStraightCloud) {
  Rng rng(3);
  Matrix data(80, 2);
  Vector latent(80);
  for (int i = 0; i < 80; ++i) {
    const double t = rng.Uniform();
    latent[i] = t;
    data(i, 0) = 10.0 * t + rng.Gaussian(0.0, 0.05);
    data(i, 1) = 5.0 * t + rng.Gaussian(0.0, 0.05);
  }
  const auto ranker =
      KernelPcaRanker::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  const double tau = KendallTauB(ranker->ScoreRows(data), latent);
  // Kernel PCA folds ends slightly even on straight clouds; strong but not
  // near-perfect recovery is the expected behaviour.
  EXPECT_GT(tau, 0.85);
}

TEST(KernelPcaTest, FollowsCurvedCloudBetterThanNothing) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 150, .noise_sigma = 0.02, .control_margin = 0.05, .seed = 4});
  const auto ranker =
      KernelPcaRanker::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  const double tau =
      KendallTauB(ranker->ScoreRows(sample.data), sample.latent);
  EXPECT_GT(tau, 0.75);  // decent, though not the RPC's near-1
}

TEST(KernelPcaTest, NotOrderPreserving) {
  // Section 1's critique: the kernel map breaks strict monotonicity. On a
  // bent cloud the first kernel component folds the ends: comparable pairs
  // get inverted somewhere in the box.
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 150, .noise_sigma = 0.02, .control_margin = 0.05, .seed = 5});
  const auto ranker =
      KernelPcaRanker::Fit(sample.data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  // Probe a dense grid of comparable pairs across the unit box.
  Rng rng(6);
  int violations = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Vector x{rng.Uniform(), rng.Uniform()};
    Vector y{x[0] + rng.Uniform() * (1.0 - x[0]),
             x[1] + rng.Uniform() * (1.0 - x[1])};
    if (ranker->Score(x) > ranker->Score(y) + 1e-9) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(KernelPcaTest, SigmaHeuristicPositive) {
  Rng rng(7);
  Matrix data(30, 3);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 3; ++j) data(i, j) = rng.Uniform();
  }
  const auto ranker =
      KernelPcaRanker::Fit(data, Orientation::AllBenefit(3));
  ASSERT_TRUE(ranker.ok());
  EXPECT_GT(ranker->sigma(), 0.0);
  EXPECT_GT(ranker->explained_kernel_variance(), 0.0);
  EXPECT_LE(ranker->explained_kernel_variance(), 1.0);
}

TEST(KernelPcaTest, ExplicitSigmaRespected) {
  Rng rng(8);
  Matrix data(30, 2);
  for (int i = 0; i < 30; ++i) {
    data(i, 0) = rng.Uniform();
    data(i, 1) = rng.Uniform();
  }
  KernelPcaOptions options;
  options.sigma = 0.37;
  const auto ranker =
      KernelPcaRanker::Fit(data, Orientation::AllBenefit(2), options);
  ASSERT_TRUE(ranker.ok());
  EXPECT_DOUBLE_EQ(ranker->sigma(), 0.37);
}

TEST(KernelPcaTest, NoExplicitParameterCount) {
  Rng rng(9);
  Matrix data(20, 2);
  for (int i = 0; i < 20; ++i) {
    data(i, 0) = rng.Uniform();
    data(i, 1) = rng.Uniform();
  }
  const auto ranker =
      KernelPcaRanker::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  EXPECT_FALSE(ranker->ParameterCount().has_value());
}

TEST(KernelPcaTest, RejectsBadInput) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_FALSE(KernelPcaRanker::Fit(Matrix(2, 2), alpha).ok());
  KernelPcaOptions tiny_cap;
  tiny_cap.max_rows = 5;
  Matrix data(10, 2);
  for (int i = 0; i < 10; ++i) {
    data(i, 0) = i;
    data(i, 1) = i * i;
  }
  EXPECT_FALSE(KernelPcaRanker::Fit(data, alpha, tiny_cap).ok());
  const Matrix constant{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  EXPECT_FALSE(KernelPcaRanker::Fit(constant, alpha).ok());
}

}  // namespace
}  // namespace rpc::rank
