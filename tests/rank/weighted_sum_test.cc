#include "rank/weighted_sum.h"

#include <gtest/gtest.h>

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix SimpleData() {
  return Matrix{{0.0, 10.0}, {50.0, 20.0}, {100.0, 30.0}};
}

TEST(WeightedSumTest, EqualWeightsScoreRange) {
  const auto ranker = WeightedSumRanker::FitEqualWeights(
      SimpleData(), order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  EXPECT_NEAR(ranker->Score(Vector{0.0, 10.0}), 0.0, 1e-12);
  EXPECT_NEAR(ranker->Score(Vector{100.0, 30.0}), 1.0, 1e-12);
  EXPECT_NEAR(ranker->Score(Vector{50.0, 20.0}), 0.5, 1e-12);
}

TEST(WeightedSumTest, CostAttributeInverted) {
  const auto alpha = order::Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker =
      WeightedSumRanker::FitEqualWeights(SimpleData(), *alpha);
  ASSERT_TRUE(ranker.ok());
  // Best on attr 0, worst (highest) on attr 1 -> 0.5 each -> 0.5 total.
  EXPECT_NEAR(ranker->Score(Vector{100.0, 30.0}), 0.5, 1e-12);
  // Best on both: max attr0, min attr1.
  EXPECT_NEAR(ranker->Score(Vector{100.0, 10.0}), 1.0, 1e-12);
}

TEST(WeightedSumTest, WeightsAreNormalised) {
  const auto ranker = WeightedSumRanker::Fit(
      SimpleData(), order::Orientation::AllBenefit(2), Vector{2.0, 6.0});
  ASSERT_TRUE(ranker.ok());
  EXPECT_NEAR(ranker->weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(ranker->weights()[1], 0.75, 1e-12);
}

TEST(WeightedSumTest, DifferentWeightsDifferentLists) {
  // The introduction's critique: weight choice changes the ranking.
  const Matrix data{{0.0, 30.0}, {100.0, 10.0}};
  const auto favour_first = WeightedSumRanker::Fit(
      data, order::Orientation::AllBenefit(2), Vector{10.0, 1.0});
  const auto favour_second = WeightedSumRanker::Fit(
      data, order::Orientation::AllBenefit(2), Vector{1.0, 10.0});
  ASSERT_TRUE(favour_first.ok());
  ASSERT_TRUE(favour_second.ok());
  const double a0 = favour_first->Score(data.Row(0));
  const double a1 = favour_first->Score(data.Row(1));
  const double b0 = favour_second->Score(data.Row(0));
  const double b1 = favour_second->Score(data.Row(1));
  EXPECT_LT(a0, a1);  // first attribute dominates
  EXPECT_GT(b0, b1);  // second attribute dominates
}

TEST(WeightedSumTest, RejectsBadInputs) {
  const auto alpha = order::Orientation::AllBenefit(2);
  EXPECT_FALSE(
      WeightedSumRanker::Fit(SimpleData(), alpha, Vector{1.0}).ok());
  EXPECT_FALSE(
      WeightedSumRanker::Fit(SimpleData(), alpha, Vector{1.0, 0.0}).ok());
  EXPECT_FALSE(
      WeightedSumRanker::Fit(SimpleData(), alpha, Vector{1.0, -1.0}).ok());
  const Matrix constant{{1.0, 5.0}, {2.0, 5.0}};
  EXPECT_FALSE(WeightedSumRanker::FitEqualWeights(constant, alpha).ok());
  const auto alpha3 = order::Orientation::AllBenefit(3);
  EXPECT_FALSE(WeightedSumRanker::FitEqualWeights(SimpleData(), alpha3).ok());
}

TEST(WeightedSumTest, ParameterCountIsD) {
  const auto ranker = WeightedSumRanker::FitEqualWeights(
      SimpleData(), order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  EXPECT_EQ(ranker->ParameterCount().value(), 2);
  EXPECT_EQ(ranker->name(), "WeightedSum");
}

TEST(WeightedSumTest, ScoreRowsMatchesScore) {
  const auto ranker = WeightedSumRanker::FitEqualWeights(
      SimpleData(), order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  const Vector scores = ranker->ScoreRows(SimpleData());
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(scores[i], ranker->Score(SimpleData().Row(i)));
  }
}

}  // namespace
}  // namespace rpc::rank
