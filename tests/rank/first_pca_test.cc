#include "rank/first_pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "order/monotonicity.h"

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix ElongatedCloud(int n, uint64_t seed) {
  // Points along the diagonal with small orthogonal noise.
  Rng rng(seed);
  Matrix data(n, 2);
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform();
    const double noise = rng.Gaussian(0.0, 0.02);
    data(i, 0) = 10.0 * t + noise;
    data(i, 1) = 5.0 * t - noise;
  }
  return data;
}

TEST(FirstPcaTest, RecoversDominantDirectionOrdering) {
  const Matrix data = ElongatedCloud(100, 3);
  const auto ranker =
      FirstPcaRanker::Fit(data, order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  // Scores should increase along the latent t: check the extremes.
  const double low = ranker->Score(Vector{0.0, 0.0});
  const double high = ranker->Score(Vector{10.0, 5.0});
  EXPECT_LT(low, high);
  EXPECT_GT(ranker->explained_variance_ratio(), 0.95);
}

TEST(FirstPcaTest, OrientedTowardBestCorner) {
  // With cost orientation on both attributes the score of the "small"
  // corner must exceed the "large" corner.
  const Matrix data = ElongatedCloud(100, 4);
  const auto alpha = order::Orientation::FromSigns({-1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = FirstPcaRanker::Fit(data, *alpha);
  ASSERT_TRUE(ranker.ok());
  EXPECT_GT(ranker->Score(Vector{0.0, 0.0}),
            ranker->Score(Vector{10.0, 5.0}));
}

TEST(FirstPcaTest, AxisAlignedDirectionTiesExample1) {
  // When x2 carries almost no variance *after min-max normalisation* (a
  // tight cluster plus two range-setting outliers), the leading direction
  // w is parallel to the x1 axis, so two points differing only in x2 get
  // (almost) identical scores — Example 1's x1/x2 failure.
  Rng rng(5);
  Matrix data(52, 2);
  for (int i = 0; i < 50; ++i) {
    data(i, 0) = rng.Uniform(40.0, 90.0);
    data(i, 1) = 5.0 + 0.0001 * rng.Gaussian();  // tight cluster
  }
  data(50, 0) = 65.0;
  data(50, 1) = 4.0;  // outliers fix the normalisation range...
  data(51, 0) = 65.0;
  data(51, 1) = 6.0;  // ...without adding variance mass
  const auto ranker =
      FirstPcaRanker::Fit(data, order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  // The leading direction is (almost) axis aligned.
  EXPECT_GT(std::fabs(ranker->direction()[0]), 0.99);
  const double s1 = ranker->Score(Vector{58.0, 4.9});
  const double s2 = ranker->Score(Vector{58.0, 5.1});
  const double span = ranker->Score(Vector{90.0, 5.0}) -
                      ranker->Score(Vector{40.0, 5.0});
  // The x2 difference moves the score by a negligible fraction of the
  // x1 span.
  EXPECT_LT(std::fabs(s2 - s1), 0.02 * std::fabs(span));
}

TEST(FirstPcaTest, SkeletonIsStraightLine) {
  const Matrix data = ElongatedCloud(60, 6);
  const auto ranker =
      FirstPcaRanker::Fit(data, order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  const Matrix skeleton = ranker->SampleSkeleton(16);
  ASSERT_EQ(skeleton.rows(), 17);
  // Collinearity: second differences vanish.
  for (int i = 1; i + 1 < skeleton.rows(); ++i) {
    const Vector second =
        skeleton.Row(i + 1) - 2.0 * skeleton.Row(i) + skeleton.Row(i - 1);
    EXPECT_NEAR(second.Norm(), 0.0, 1e-9);
  }
}

TEST(FirstPcaTest, ParameterCountIs2d) {
  const Matrix data = ElongatedCloud(30, 7);
  const auto ranker =
      FirstPcaRanker::Fit(data, order::Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  EXPECT_EQ(ranker->ParameterCount().value(), 4);
}

TEST(FirstPcaTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(
      FirstPcaRanker::Fit(Matrix(1, 2), order::Orientation::AllBenefit(2))
          .ok());
  const Matrix constant{{1.0, 5.0}, {2.0, 5.0}};
  EXPECT_FALSE(
      FirstPcaRanker::Fit(constant, order::Orientation::AllBenefit(2)).ok());
}

TEST(FirstPcaTest, InvariantToAffineRescaling) {
  const Matrix data = ElongatedCloud(80, 8);
  const auto alpha = order::Orientation::AllBenefit(2);
  const auto base = FirstPcaRanker::Fit(data, alpha);
  ASSERT_TRUE(base.ok());
  Matrix transformed(data.rows(), 2);
  for (int i = 0; i < data.rows(); ++i) {
    transformed(i, 0) = 1000.0 * data(i, 0) - 5.0;
    transformed(i, 1) = 0.01 * data(i, 1) + 77.0;
  }
  const auto refit = FirstPcaRanker::Fit(transformed, alpha);
  ASSERT_TRUE(refit.ok());
  // Orders must agree.
  for (int i = 0; i + 1 < data.rows(); ++i) {
    const double a = base->Score(data.Row(i)) - base->Score(data.Row(i + 1));
    const double b = refit->Score(transformed.Row(i)) -
                     refit->Score(transformed.Row(i + 1));
    EXPECT_GT(a * b, -1e-12) << "pair " << i;
  }
}

}  // namespace
}  // namespace rpc::rank
