#include "rank/rank_aggregation.h"

#include <gtest/gtest.h>

#include "data/fixtures.h"

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(RanksFromScoresTest, AscendingPositions) {
  const Vector ranks = RanksFromScores(Vector{0.3, 0.25, 0.7});
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(RanksFromScoresTest, DescendingPositions) {
  const Vector ranks =
      RanksFromScores(Vector{0.3, 0.25, 0.7}, /*ascending=*/false);
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(RanksFromScoresTest, TiesGetAverageRank) {
  const Vector ranks = RanksFromScores(Vector{1.0, 1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(ranks[3], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 4.0);
}

TEST(AggregateRanksTest, MeanRankMatchesEq30) {
  // Table 1(a): A has positions (2, 1), B (1, 2), C (3, 3).
  const std::vector<Vector> lists = {Vector{2.0, 1.0, 3.0},
                                     Vector{1.0, 2.0, 3.0}};
  const auto agg = AggregateRanks(lists, AggregationMethod::kMeanRank);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], 1.5);
  EXPECT_DOUBLE_EQ((*agg)[1], 1.5);
  EXPECT_DOUBLE_EQ((*agg)[2], 3.0);
}

TEST(AggregateRanksTest, MedianRank) {
  const std::vector<Vector> lists = {Vector{1.0, 2.0}, Vector{3.0, 2.0},
                                     Vector{5.0, 2.0}};
  const auto agg = AggregateRanks(lists, AggregationMethod::kMedianRank);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], 3.0);
  EXPECT_DOUBLE_EQ((*agg)[1], 2.0);
}

TEST(AggregateRanksTest, MedianEvenListCount) {
  const std::vector<Vector> lists = {Vector{1.0}, Vector{4.0}};
  const auto agg = AggregateRanks(lists, AggregationMethod::kMedianRank);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], 2.5);
}

TEST(AggregateRanksTest, BordaSameOrderAsMean) {
  const std::vector<Vector> lists = {Vector{2.0, 1.0, 3.0},
                                     Vector{1.0, 2.0, 3.0}};
  const auto borda = AggregateRanks(lists, AggregationMethod::kBordaCount);
  ASSERT_TRUE(borda.ok());
  EXPECT_DOUBLE_EQ((*borda)[0], 1.0);
  EXPECT_DOUBLE_EQ((*borda)[1], 1.0);
  EXPECT_DOUBLE_EQ((*borda)[2], 4.0);
}

TEST(AggregateRanksTest, RejectsBadInput) {
  EXPECT_FALSE(AggregateRanks({}).ok());
  EXPECT_FALSE(AggregateRanks({Vector{1.0}, Vector{1.0, 2.0}}).ok());
}

TEST(AggregateAttributeRanksTest, ReproducesTable1a) {
  const Matrix data = data::Table1aMatrix();
  const auto agg = AggregateAttributeRanks(data, {1, 1});
  ASSERT_TRUE(agg.ok());
  const auto& rows = data::Table1a();
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*agg)[i], rows[static_cast<size_t>(i)].rankagg)
        << rows[static_cast<size_t>(i)].name;
  }
}

TEST(AggregateAttributeRanksTest, Table1bKeepsAandBTied) {
  // The paper's point: RankAgg cannot distinguish A' and B even after A
  // moved (Table 1(b)) because only per-attribute orders enter Eq. (30).
  const Matrix data = data::Table1bMatrix();
  const auto agg = AggregateAttributeRanks(data, {1, 1});
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], (*agg)[1]);
  EXPECT_DOUBLE_EQ((*agg)[0], 1.5);
}

TEST(AggregateAttributeRanksTest, CostAttributesUseInvertedRanks) {
  // One benefit, one cost: object dominating both gets the top aggregate.
  const Matrix data{{10.0, 5.0}, {20.0, 1.0}};
  const auto agg = AggregateAttributeRanks(data, {1, -1});
  ASSERT_TRUE(agg.ok());
  EXPECT_GT((*agg)[1], (*agg)[0]);
}

TEST(AggregateAttributeRanksTest, RejectsBadSigns) {
  const Matrix data{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_FALSE(AggregateAttributeRanks(data, {1}).ok());
  EXPECT_FALSE(AggregateAttributeRanks(data, {1, 0}).ok());
}

}  // namespace
}  // namespace rpc::rank
