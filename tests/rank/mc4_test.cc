#include <gtest/gtest.h>

#include "data/fixtures.h"
#include "rank/rank_aggregation.h"

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Mc4Test, UnanimousListsGiveUnanimousOrder) {
  // Three lists all saying object 2 > 1 > 0 (position n = best).
  const std::vector<Vector> lists = {Vector{1.0, 2.0, 3.0},
                                     Vector{1.0, 2.0, 3.0},
                                     Vector{1.0, 2.0, 3.0}};
  const auto pi = AggregateRanksMc4(lists);
  ASSERT_TRUE(pi.ok());
  EXPECT_GT((*pi)[2], (*pi)[1]);
  EXPECT_GT((*pi)[1], (*pi)[0]);
}

TEST(Mc4Test, StationaryDistributionIsProbability) {
  const std::vector<Vector> lists = {Vector{2.0, 1.0, 3.0},
                                     Vector{1.0, 3.0, 2.0}};
  const auto pi = AggregateRanksMc4(lists);
  ASSERT_TRUE(pi.ok());
  double total = 0.0;
  for (int i = 0; i < pi->size(); ++i) {
    EXPECT_GE((*pi)[i], 0.0);
    total += (*pi)[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Mc4Test, MajorityPreferenceWins) {
  // Two of three lists prefer object 1 over object 0.
  const std::vector<Vector> lists = {Vector{1.0, 2.0}, Vector{1.0, 2.0},
                                     Vector{2.0, 1.0}};
  const auto pi = AggregateRanksMc4(lists);
  ASSERT_TRUE(pi.ok());
  EXPECT_GT((*pi)[1], (*pi)[0]);
}

TEST(Mc4Test, TiesOnTable1RemainLikeMeanRank) {
  // MC4 on the Table 1(a) per-attribute lists still cannot split A and B:
  // one list prefers A, the other B (no majority either way).
  const Matrix data = data::Table1aMatrix();
  const std::vector<Vector> lists = {
      RanksFromScores(data.Column(0)),
      RanksFromScores(data.Column(1)),
  };
  const auto pi = AggregateRanksMc4(lists);
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], (*pi)[1], 1e-9);  // A and B symmetric
  EXPECT_GT((*pi)[2], (*pi)[0]);          // C clearly on top
}

TEST(Mc4Test, InputValidation) {
  EXPECT_FALSE(AggregateRanksMc4({}).ok());
  EXPECT_FALSE(
      AggregateRanksMc4({Vector{1.0}, Vector{1.0, 2.0}}).ok());
  Mc4Options bad;
  bad.damping = 0.0;
  EXPECT_FALSE(AggregateRanksMc4({Vector{1.0, 2.0}}, bad).ok());
  bad.damping = 1.0;
  EXPECT_FALSE(AggregateRanksMc4({Vector{1.0, 2.0}}, bad).ok());
}

TEST(Mc4Test, CondorcetWinnerGetsMostMass) {
  // Object 3 beats everyone pairwise across lists -> largest stationary
  // mass.
  const std::vector<Vector> lists = {Vector{1.0, 3.0, 2.0, 4.0},
                                     Vector{2.0, 1.0, 3.0, 4.0},
                                     Vector{3.0, 2.0, 1.0, 4.0}};
  const auto pi = AggregateRanksMc4(lists);
  ASSERT_TRUE(pi.ok());
  for (int i = 0; i < 3; ++i) EXPECT_GT((*pi)[3], (*pi)[i]);
}

}  // namespace
}  // namespace rpc::rank
