#include "rank/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/stats.h"

namespace rpc::rank {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(KendallTauTest, IdenticalOrderIsOne) {
  const Vector a{1.0, 2.0, 3.0, 4.0};
  const Vector b{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(KendallTauB(a, b), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauA(a, b), 1.0);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(KendallTauB(a, b), -1.0);
}

TEST(KendallTauTest, KnownPartialAgreement) {
  // One discordant pair of three: tau_a = (2 - 1) / 3.
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{1.0, 3.0, 2.0};
  EXPECT_NEAR(KendallTauA(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, TieCorrection) {
  const Vector a{1.0, 1.0, 2.0};
  const Vector b{1.0, 2.0, 3.0};
  // tau-b accounts for the tie in a; value = 2 / sqrt(2*3) ~ 0.8165.
  EXPECT_NEAR(KendallTauB(a, b), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTauTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(KendallTauB(Vector{}, Vector{}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauB(Vector{1.0, 1.0}, Vector{2.0, 3.0}), 0.0);
}

TEST(SpearmanTest, MonotoneTransformGivesOne) {
  const Vector a{0.1, 0.5, 0.7, 0.9};
  Vector b(4);
  for (int i = 0; i < 4; ++i) b[i] = std::exp(3.0 * a[i]);  // monotone map
  EXPECT_NEAR(SpearmanRho(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, FootruleZeroForSameOrder) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(SpearmanFootrule(a, b), 0.0);
}

TEST(SpearmanTest, FootruleMaxForReversal) {
  const Vector a{1.0, 2.0, 3.0, 4.0};
  const Vector b{4.0, 3.0, 2.0, 1.0};
  // |1-4|+|2-3|+|3-2|+|4-1| = 8.
  EXPECT_DOUBLE_EQ(SpearmanFootrule(a, b), 8.0);
}

TEST(OrderViolationsTest, PerfectScoresHaveNone) {
  const Matrix data{{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  const Vector scores{0.0, 0.5, 1.0};
  const auto report = CountOrderViolations(
      data, scores, order::Orientation::AllBenefit(2));
  EXPECT_EQ(report.comparable_pairs, 3);
  EXPECT_EQ(report.violations, 0);
  EXPECT_EQ(report.ties, 0);
  EXPECT_DOUBLE_EQ(report.violation_rate(), 0.0);
}

TEST(OrderViolationsTest, DetectsViolationAndTie) {
  const Matrix data{{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  const Vector bad{0.9, 0.5, 0.5};  // first pair inverted, last two tied
  const auto report = CountOrderViolations(
      data, bad, order::Orientation::AllBenefit(2));
  EXPECT_EQ(report.comparable_pairs, 3);
  EXPECT_EQ(report.violations, 2);  // (0,1) and (0,2) inverted
  EXPECT_EQ(report.ties, 1);        // (1,2) tied
  EXPECT_GT(report.violation_rate(), 0.9);
}

TEST(OrderViolationsTest, RespectsMixedOrientation) {
  const auto alpha = order::Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha.ok());
  const Matrix data{{0.0, 1.0}, {1.0, 0.0}};  // row0 precedes row1
  const auto good = CountOrderViolations(data, Vector{0.0, 1.0}, *alpha);
  EXPECT_EQ(good.violations, 0);
  const auto bad = CountOrderViolations(data, Vector{1.0, 0.0}, *alpha);
  EXPECT_EQ(bad.violations, 1);
}

TEST(ExplainedVarianceTest, ZeroResidualIsOne) {
  const Matrix data{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(ExplainedVariance(0.0, data), 1.0);
}

TEST(ExplainedVarianceTest, FullResidualIsZero) {
  const Matrix data{{0.0, 0.0}, {2.0, 0.0}};
  const double scatter = linalg::TotalScatter(data);
  EXPECT_DOUBLE_EQ(ExplainedVariance(scatter, data), 0.0);
}

TEST(KendallTauTest, RandomPermutationNearZero) {
  Rng rng(99);
  const int n = 400;
  Vector a(n);
  Vector b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = rng.Uniform();
    b[i] = rng.Uniform();
  }
  EXPECT_NEAR(KendallTauB(a, b), 0.0, 0.1);
}

}  // namespace
}  // namespace rpc::rank
