#include "linalg/pinv.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::linalg {
namespace {

// Checks the four Moore-Penrose conditions.
void ExpectMoorePenrose(const Matrix& b, const Matrix& pinv, double tol) {
  EXPECT_TRUE(ApproxEqual(b * pinv * b, b, tol));
  EXPECT_TRUE(ApproxEqual(pinv * b * pinv, pinv, tol));
  const Matrix bp = b * pinv;
  EXPECT_TRUE(ApproxEqual(bp, bp.Transposed(), tol));
  const Matrix pb = pinv * b;
  EXPECT_TRUE(ApproxEqual(pb, pb.Transposed(), tol));
}

TEST(PinvTest, InvertibleMatrixMatchesInverse) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const auto pinv = PseudoInverseSymmetric(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_NEAR(pinv.value()(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(pinv.value()(1, 1), 0.25, 1e-12);
}

TEST(PinvTest, SingularSymmetric) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  const auto pinv = PseudoInverseSymmetric(a);
  ASSERT_TRUE(pinv.ok());
  ExpectMoorePenrose(a, pinv.value(), 1e-10);
}

TEST(PinvTest, WideMatrix) {
  // 2x4 full-row-rank matrix, like MZ with 4 samples... transposed sizes.
  const Matrix b{{1.0, 0.0, 1.0, 2.0}, {0.0, 1.0, 1.0, -1.0}};
  const auto pinv = PseudoInverse(b);
  ASSERT_TRUE(pinv.ok());
  EXPECT_EQ(pinv->rows(), 4);
  EXPECT_EQ(pinv->cols(), 2);
  ExpectMoorePenrose(b, pinv.value(), 1e-10);
}

TEST(PinvTest, TallMatrix) {
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, -1.0}};
  const auto pinv = PseudoInverse(b);
  ASSERT_TRUE(pinv.ok());
  EXPECT_EQ(pinv->rows(), 2);
  EXPECT_EQ(pinv->cols(), 4);
  ExpectMoorePenrose(b, pinv.value(), 1e-10);
}

TEST(PinvTest, RandomMatricesSatisfyMoorePenrose) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int rows = 2 + static_cast<int>(rng.UniformInt(3));
    const int cols = 2 + static_cast<int>(rng.UniformInt(8));
    Matrix b(rows, cols);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) b(i, j) = rng.Uniform(-1.0, 1.0);
    }
    const auto pinv = PseudoInverse(b);
    ASSERT_TRUE(pinv.ok());
    ExpectMoorePenrose(b, pinv.value(), 1e-8);
  }
}

TEST(PinvTest, RankDeficientWide) {
  // Second row is a multiple of the first.
  const Matrix b{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}};
  const auto pinv = PseudoInverse(b);
  ASSERT_TRUE(pinv.ok());
  ExpectMoorePenrose(b, pinv.value(), 1e-9);
}

TEST(PinvTest, RejectsEmpty) {
  EXPECT_FALSE(PseudoInverse(Matrix()).ok());
  EXPECT_FALSE(PseudoInverseSymmetric(Matrix(2, 3)).ok());
}

TEST(SymmetricPinvWorkspaceTest, MatchesAllocatingPathBitwise) {
  const Matrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, 0.5}, {0.0, 0.5, 2.0}};
  const auto reference = PseudoInverseSymmetric(a);
  ASSERT_TRUE(reference.ok());
  SymmetricPinvWorkspace workspace;
  workspace.Bind(3);
  Matrix out;
  ASSERT_TRUE(workspace.Compute(a, &out).ok());
  ASSERT_EQ(out.rows(), 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(out(r, c), reference.value()(r, c)) << r << "," << c;
    }
  }
}

TEST(SymmetricPinvWorkspaceTest, ReusableAcrossCallsAndRankDeficiency) {
  SymmetricPinvWorkspace workspace;
  workspace.Bind(2);
  Matrix out;
  // Rank-deficient: the null space must be truncated, as in the allocating
  // path.
  const Matrix singular{{1.0, 1.0}, {1.0, 1.0}};
  ASSERT_TRUE(workspace.Compute(singular, &out).ok());
  const auto reference = PseudoInverseSymmetric(singular);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(ApproxEqual(out, reference.value(), 0.0));
  // Second call into the same buffers.
  const Matrix spd{{2.0, 0.0}, {0.0, 4.0}};
  ASSERT_TRUE(workspace.Compute(spd, &out).ok());
  EXPECT_NEAR(out(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out(1, 1), 0.25, 1e-12);
}

TEST(SymmetricPinvWorkspaceTest, RejectsNonSquare) {
  SymmetricPinvWorkspace workspace;
  workspace.Bind(2);
  Matrix out;
  EXPECT_FALSE(workspace.Compute(Matrix(2, 3), &out).ok());
}

}  // namespace
}  // namespace rpc::linalg
