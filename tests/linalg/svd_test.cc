#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/pinv.h"

namespace rpc::linalg {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-2.0, 2.0);
  }
  return m;
}

void ExpectReconstructs(const Matrix& a, const Svd& svd, double tol) {
  const Matrix sigma = Matrix::Diagonal(svd.singular_values);
  const Matrix reconstructed = svd.u * sigma * svd.v.Transposed();
  EXPECT_TRUE(ApproxEqual(reconstructed, a, tol));
}

TEST(SvdTest, DiagonalMatrix) {
  const Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  const auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[2], 1.0, 1e-12);
  ExpectReconstructs(a, *svd, 1e-10);
}

TEST(SvdTest, TallWideAndSquareReconstruct) {
  for (auto [rows, cols] : {std::pair{6, 3}, {3, 6}, {4, 4}}) {
    const Matrix a = RandomMatrix(rows, cols, 100 + rows * 10 + cols);
    const auto svd = JacobiSvd(a);
    ASSERT_TRUE(svd.ok()) << rows << "x" << cols;
    ExpectReconstructs(a, *svd, 1e-9);
    // Orthonormality of the thin factors.
    const int r = std::min(rows, cols);
    EXPECT_TRUE(ApproxEqual(TransposeTimes(svd->u, svd->u),
                            Matrix::Identity(r), 1e-9));
    EXPECT_TRUE(ApproxEqual(TransposeTimes(svd->v, svd->v),
                            Matrix::Identity(r), 1e-9));
  }
}

TEST(SvdTest, SingularValuesNonNegativeDescending) {
  const Matrix a = RandomMatrix(5, 4, 7);
  const auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(svd->singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd->singular_values[i], svd->singular_values[i - 1]);
    }
  }
}

TEST(SvdTest, RankDeficientMatrix) {
  // Rank 1: outer product.
  const Matrix a = Matrix::Outer(Vector{1.0, 2.0, 3.0}, Vector{4.0, 5.0});
  const auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 1.0);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-10);
  ExpectReconstructs(a, *svd, 1e-9);
}

TEST(SvdTest, MatchesEigenOnGramMatrix) {
  // Singular values of A are sqrt of eigenvalues of A^T A.
  const Matrix a = RandomMatrix(6, 3, 21);
  const auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  const Matrix gram = TransposeTimes(a, a);
  for (int i = 0; i < 3; ++i) {
    const double sv2 = svd->singular_values[i] * svd->singular_values[i];
    // gram eigenvalue_i equals sv^2 -- compare via the trace identity too.
    EXPECT_NEAR((svd->v.Column(i).Norm()), 1.0, 1e-9);
    const Vector gv = gram * svd->v.Column(i);
    EXPECT_TRUE(ApproxEqual(gv, sv2 * svd->v.Column(i), 1e-7))
        << "eigenvector check " << i;
  }
}

TEST(SvdTest, PseudoInverseAgreesWithGramRoute) {
  for (auto [rows, cols] : {std::pair{5, 3}, {3, 5}, {4, 4}}) {
    const Matrix a = RandomMatrix(rows, cols, 300 + rows + cols);
    const auto via_svd = PseudoInverseViaSvd(a);
    const auto via_gram = PseudoInverse(a);
    ASSERT_TRUE(via_svd.ok());
    ASSERT_TRUE(via_gram.ok());
    EXPECT_TRUE(ApproxEqual(*via_svd, *via_gram, 1e-8))
        << rows << "x" << cols;
  }
}

TEST(SvdTest, RejectsEmpty) {
  EXPECT_FALSE(JacobiSvd(Matrix()).ok());
}

TEST(QrTest, ReconstructsAndIsTriangular) {
  const Matrix a = RandomMatrix(6, 4, 31);
  const auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(ApproxEqual(qr->q * qr->r, a, 1e-10));
  // Q has orthonormal columns.
  EXPECT_TRUE(ApproxEqual(TransposeTimes(qr->q, qr->q),
                          Matrix::Identity(4), 1e-10));
  // R upper triangular.
  for (int i = 1; i < 4; ++i) {
    for (int j = 0; j < i; ++j) EXPECT_NEAR(qr->r(i, j), 0.0, 1e-12);
  }
}

TEST(QrTest, SquareMatrix) {
  const Matrix a = RandomMatrix(4, 4, 37);
  const auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(ApproxEqual(qr->q * qr->r, a, 1e-10));
}

TEST(QrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr(Matrix(2, 4)).ok());
}

TEST(LeastSquaresTest, SolvesOverdeterminedSystem) {
  // Fit y = 2x + 1 through noisy-free samples: exact recovery.
  Matrix a(5, 2);
  Vector b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0;
  }
  const auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 1.0, 1e-10);
}

TEST(LeastSquaresTest, MinimumNormForUnderdetermined) {
  // x + y = 2 has minimum-norm solution (1, 1).
  const Matrix a{{1.0, 1.0}};
  const auto x = LeastSquares(a, Vector{2.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 1.0, 1e-10);
}

}  // namespace
}  // namespace rpc::linalg
