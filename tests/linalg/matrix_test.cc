#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace rpc::linalg {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, RowColumnRoundTrip) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_TRUE(ApproxEqual(m.Row(1), Vector{3.0, 4.0}));
  EXPECT_TRUE(ApproxEqual(m.Column(1), Vector{2.0, 4.0, 6.0}));
  m.SetRow(0, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  m.SetColumn(0, Vector{-1.0, -2.0, -3.0});
  EXPECT_DOUBLE_EQ(m(2, 0), -3.0);
}

TEST(MatrixTest, FromRowsAndColumns) {
  const Matrix from_rows = Matrix::FromRows({Vector{1.0, 2.0},
                                             Vector{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(from_rows(1, 0), 3.0);
  const Matrix from_cols = Matrix::FromColumns({Vector{1.0, 2.0},
                                                Vector{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(from_cols(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(from_cols(0, 1), 3.0);
}

TEST(MatrixTest, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 3.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, -1.0};
  const Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(MatrixTest, TransposeTimesAndTimesTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};  // 3x2
  const Matrix ata = TransposeTimes(a, a);             // 2x2
  EXPECT_TRUE(ApproxEqual(ata, a.Transposed() * a, 1e-12));
  const Matrix aat = TimesTranspose(a, a);             // 3x3
  EXPECT_TRUE(ApproxEqual(aat, a * a.Transposed(), 1e-12));
}

TEST(MatrixTest, FrobeniusNormAndTrace) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Trace(), 7.0);
}

TEST(MatrixTest, OuterProduct) {
  const Matrix outer = Matrix::Outer(Vector{1.0, 2.0}, Vector{3.0, 4.0});
  EXPECT_DOUBLE_EQ(outer(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(outer(1, 1), 8.0);
}

TEST(MatrixTest, IsSymmetric) {
  EXPECT_TRUE((Matrix{{1.0, 2.0}, {2.0, 3.0}}).IsSymmetric());
  EXPECT_FALSE((Matrix{{1.0, 2.0}, {2.1, 3.0}}).IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(MatrixTest, ScalarOps) {
  Matrix m{{1.0, 2.0}};
  const Matrix doubled = m * 2.0;
  EXPECT_DOUBLE_EQ(doubled(0, 1), 4.0);
  const Matrix sum = m + m;
  EXPECT_DOUBLE_EQ(sum(0, 0), 2.0);
  const Matrix diff = m - m;
  EXPECT_DOUBLE_EQ(diff.MaxAbs(), 0.0);
}

TEST(MatrixTest, AssignReshapesAndFills) {
  Matrix m(3, 4, 7.0);
  m.Assign(2, 2);
  ASSERT_EQ(m.rows(), 2);
  ASSERT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 0.0);
  m.Assign(1, 3, 2.5);
  ASSERT_EQ(m.rows(), 1);
  ASSERT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 2), 2.5);
}

TEST(MatrixTest, IntoProductsMatchAllocatingVariantsBitwise) {
  const Matrix a{{1.0, 2.0, 3.0}, {0.5, -1.0, 4.0}};
  const Matrix b{{2.0, 0.0, 1.0}, {1.0, 3.0, -2.0}};
  const Matrix tt = TimesTranspose(a, b);       // 2 x 2
  const Matrix trt = TransposeTimes(a, b);      // 3 x 3
  Matrix out(5, 5, 9.0);  // wrong shape + stale contents: must be reset
  TimesTransposeInto(a, b, &out);
  ASSERT_EQ(out.rows(), 2);
  ASSERT_EQ(out.cols(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_EQ(out(r, c), tt(r, c));
  }
  TransposeTimesInto(a, b, &out);
  ASSERT_EQ(out.rows(), 3);
  ASSERT_EQ(out.cols(), 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(out(r, c), trt(r, c));
  }
}

}  // namespace
}  // namespace rpc::linalg
