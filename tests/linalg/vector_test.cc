#include "linalg/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rpc::linalg {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorTest, EmptyVector) {
  Vector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0);
  EXPECT_DOUBLE_EQ(v.Norm(), 0.0);
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 0.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  const Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  const Vector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  const Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
  const Vector divided = b / 2.0;
  EXPECT_DOUBLE_EQ(divided[0], 1.5);
}

TEST(VectorTest, NormAndSquaredNorm) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
}

TEST(VectorTest, DotAndDistance) {
  Vector a{1.0, 0.0, 2.0};
  Vector b{-1.0, 5.0, 0.5};
  EXPECT_DOUBLE_EQ(Dot(a, b), -1.0 + 0.0 + 1.0);
  EXPECT_DOUBLE_EQ(Distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 5.0);
}

TEST(VectorTest, SumAndMaxAbs) {
  Vector v{-5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(v.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 5.0);
}

TEST(VectorTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(Vector{1.0, 2.0}, Vector{1.0, 2.0 + 1e-13}));
  EXPECT_FALSE(ApproxEqual(Vector{1.0, 2.0}, Vector{1.0, 2.1}));
  EXPECT_FALSE(ApproxEqual(Vector{1.0}, Vector{1.0, 2.0}));
}

TEST(VectorTest, AllFiniteDetectsNanAndInf) {
  Vector ok{1.0, -2.0};
  EXPECT_TRUE(ok.AllFinite());
  Vector with_nan{1.0, std::nan("")};
  EXPECT_FALSE(with_nan.AllFinite());
  Vector with_inf{1.0, INFINITY};
  EXPECT_FALSE(with_inf.AllFinite());
}

TEST(VectorTest, ToStringReadable) {
  Vector v{1.0, 0.25};
  EXPECT_EQ(v.ToString(), "[1, 0.25]");
}

}  // namespace
}  // namespace rpc::linalg
