#include "linalg/solve.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::linalg {
namespace {

TEST(SolveTest, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(ApproxEqual(a * x.value(), b, 1e-12));
}

TEST(SolveTest, RejectsSingularMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const auto x = SolveLinearSystem(a, Vector{1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(SolveTest, RejectsShapeMismatch) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_FALSE(SolveLinearSystem(a, Vector{1.0}).ok());
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 3), Vector{1.0, 2.0}).ok());
}

TEST(SolveTest, MatrixRhs) {
  const Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  const auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(ApproxEqual(a * x.value(), b, 1e-12));
}

TEST(SolveTest, RandomSystemsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(6));
    Matrix a(n, n);
    Vector b(n);
    for (int i = 0; i < n; ++i) {
      b[i] = rng.Uniform(-2.0, 2.0);
      for (int j = 0; j < n; ++j) a(i, j) = rng.Uniform(-2.0, 2.0);
      a(i, i) += n;  // diagonally dominant -> well conditioned
    }
    const auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_TRUE(ApproxEqual(a * x.value(), b, 1e-9));
  }
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(ApproxEqual(l.value() * l.value().Transposed(), a, 1e-12));
  EXPECT_DOUBLE_EQ(l.value()(0, 1), 0.0);  // lower triangular
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, SolveSpdMatchesGeneralSolve) {
  const Matrix a{{5.0, 1.0, 0.5}, {1.0, 4.0, 1.0}, {0.5, 1.0, 3.0}};
  const Vector b{1.0, -2.0, 0.5};
  const auto x_spd = SolveSpd(a, b);
  const auto x_gen = SolveLinearSystem(a, b);
  ASSERT_TRUE(x_spd.ok());
  ASSERT_TRUE(x_gen.ok());
  EXPECT_TRUE(ApproxEqual(x_spd.value(), x_gen.value(), 1e-10));
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  const Matrix a{{2.0, 1.0}, {1.0, 1.0}};
  const auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(ApproxEqual(a * inv.value(), Matrix::Identity(2), 1e-12));
}

TEST(DeterminantTest, KnownValues) {
  EXPECT_NEAR(Determinant(Matrix{{2.0, 0.0}, {0.0, 3.0}}), 6.0, 1e-12);
  EXPECT_NEAR(Determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0, 1e-12);
  EXPECT_NEAR(Determinant(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 0.0, 1e-12);
}

TEST(DeterminantTest, PermutationSign) {
  // Swapping rows flips the sign.
  EXPECT_NEAR(Determinant(Matrix{{0.0, 1.0}, {1.0, 0.0}}), -1.0, 1e-12);
}

TEST(CholeskyIntoTest, MatchesAllocatingFactorBitwise) {
  const Matrix a{{4.0, 2.0, 0.5}, {2.0, 5.0, 1.0}, {0.5, 1.0, 3.0}};
  const auto reference = CholeskyFactor(a);
  ASSERT_TRUE(reference.ok());
  Matrix l;
  ASSERT_TRUE(CholeskyFactorInto(a, &l).ok());
  ASSERT_EQ(l.rows(), 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(l(r, c), reference.value()(r, c)) << r << "," << c;
    }
  }
}

TEST(CholeskyIntoTest, ReusesCallerBufferAcrossCalls) {
  Matrix l;
  ASSERT_TRUE(CholeskyFactorInto(Matrix{{9.0}}, &l).ok());
  EXPECT_DOUBLE_EQ(l(0, 0), 3.0);
  // A larger factorisation into the same buffer, then a smaller one again.
  ASSERT_TRUE(
      CholeskyFactorInto(Matrix{{4.0, 0.0}, {0.0, 16.0}}, &l).ok());
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 4.0);
  ASSERT_TRUE(CholeskyFactorInto(Matrix{{25.0}}, &l).ok());
  ASSERT_EQ(l.rows(), 1);
  EXPECT_DOUBLE_EQ(l(0, 0), 5.0);
}

TEST(CholeskyIntoTest, RejectsNonSquareAndNonSpd) {
  Matrix l;
  EXPECT_FALSE(CholeskyFactorInto(Matrix(2, 3), &l).ok());
  EXPECT_FALSE(CholeskyFactorInto(Matrix{{1.0, 2.0}, {2.0, 1.0}}, &l).ok());
}

TEST(CholeskySolveInPlaceTest, MatchesSolveSpdBitwise) {
  const Matrix a{{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  const Vector b{1.0, -2.0, 3.0};
  const auto reference = SolveSpd(a, b);
  ASSERT_TRUE(reference.ok());
  Matrix l;
  ASSERT_TRUE(CholeskyFactorInto(a, &l).ok());
  Vector x = b;
  ASSERT_TRUE(CholeskySolveInPlace(l, &x).ok());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(x[i], reference.value()[i]);
  // And it actually solves the system.
  EXPECT_TRUE(ApproxEqual(a * x, b, 1e-10));
}

TEST(CholeskySolveInPlaceTest, RejectsSizeMismatch) {
  Matrix l;
  ASSERT_TRUE(CholeskyFactorInto(Matrix{{4.0}}, &l).ok());
  Vector wrong{1.0, 2.0};
  EXPECT_FALSE(CholeskySolveInPlace(l, &wrong).ok());
}

}  // namespace
}  // namespace rpc::linalg
