#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::linalg {
namespace {

TEST(JacobiEigenTest, DiagonalMatrix) {
  const Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  const auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig->vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(5));
    Matrix b(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) b(i, j) = rng.Uniform(-1.0, 1.0);
    }
    const Matrix a = TimesTranspose(b, b);  // symmetric PSD
    const auto eig = JacobiEigenSymmetric(a);
    ASSERT_TRUE(eig.ok());
    const Matrix reconstructed =
        eig->vectors * Matrix::Diagonal(eig->values) *
        eig->vectors.Transposed();
    EXPECT_TRUE(ApproxEqual(reconstructed, a, 1e-9));
  }
}

TEST(JacobiEigenTest, EigenvectorsAreOrthonormal) {
  const Matrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  const auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  const Matrix vtv = TransposeTimes(eig->vectors, eig->vectors);
  EXPECT_TRUE(ApproxEqual(vtv, Matrix::Identity(3), 1e-10));
}

TEST(JacobiEigenTest, ValuesSortedDescending) {
  Rng rng(6);
  Matrix b(5, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) b(i, j) = rng.Uniform(-1.0, 1.0);
  }
  const auto eig = JacobiEigenSymmetric(TimesTranspose(b, b));
  ASSERT_TRUE(eig.ok());
  for (int i = 0; i + 1 < 5; ++i) {
    EXPECT_GE(eig->values[i], eig->values[i + 1]);
  }
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
}

TEST(JacobiEigenTest, HandlesNegativeEigenvalues) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};  // eigenvalues 1, -1
  const auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->values[1], -1.0, 1e-12);
}

TEST(EigenRangeTest, MatchesFullDecomposition) {
  const Matrix a{{5.0, 2.0}, {2.0, 1.0}};
  const auto range = SymmetricEigenRange(a);
  ASSERT_TRUE(range.ok());
  const auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(range->max, eig->values[0], 1e-12);
  EXPECT_NEAR(range->min, eig->values[1], 1e-12);
}

TEST(ConditionNumberTest, IdentityIsOne) {
  const auto cond = SymmetricConditionNumber(Matrix::Identity(4));
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(cond.value(), 1.0, 1e-12);
}

TEST(ConditionNumberTest, SingularIsInfinite) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const auto cond = SymmetricConditionNumber(a);
  ASSERT_TRUE(cond.ok());
  EXPECT_TRUE(std::isinf(cond.value()));
}

TEST(SymmetricEigenWorkspaceTest, MatchesAllocatingPathBitwise) {
  const Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.25}, {0.5, 0.25, 2.0}};
  const auto reference = JacobiEigenSymmetric(a);
  ASSERT_TRUE(reference.ok());
  SymmetricEigenWorkspace workspace;
  workspace.Bind(3);
  ASSERT_TRUE(workspace.Compute(a).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(workspace.values()[i], reference->values[i]) << i;
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(workspace.vectors()(i, j), reference->vectors(i, j));
    }
  }
}

TEST(SymmetricEigenWorkspaceTest, ReusableAcrossCalls) {
  SymmetricEigenWorkspace workspace;
  workspace.Bind(2);
  ASSERT_TRUE(workspace.Compute(Matrix{{2.0, 0.0}, {0.0, 5.0}}).ok());
  EXPECT_DOUBLE_EQ(workspace.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(workspace.values()[1], 2.0);
  // Second solve reuses every buffer; values from the first must not leak.
  ASSERT_TRUE(workspace.Compute(Matrix{{1.0, 0.0}, {0.0, -3.0}}).ok());
  EXPECT_DOUBLE_EQ(workspace.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(workspace.values()[1], -3.0);
}

TEST(SymmetricEigenWorkspaceTest, RejectsNonSquare) {
  SymmetricEigenWorkspace workspace;
  workspace.Bind(2);
  EXPECT_FALSE(workspace.Compute(Matrix(2, 3)).ok());
}

}  // namespace
}  // namespace rpc::linalg
