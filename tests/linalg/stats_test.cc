#include "linalg/stats.h"

#include <gtest/gtest.h>

namespace rpc::linalg {
namespace {

TEST(StatsTest, ColumnMeans) {
  const Matrix data{{1.0, 10.0}, {3.0, 20.0}};
  const Vector mean = ColumnMeans(data);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
}

TEST(StatsTest, ColumnMinsMaxs) {
  const Matrix data{{1.0, -5.0}, {3.0, 2.0}, {-2.0, 0.0}};
  EXPECT_TRUE(ApproxEqual(ColumnMins(data), Vector{-2.0, -5.0}));
  EXPECT_TRUE(ApproxEqual(ColumnMaxs(data), Vector{3.0, 2.0}));
}

TEST(StatsTest, CovarianceOfIndependentColumns) {
  // Column 0 varies, column 1 constant -> zero covariance row/col.
  const Matrix data{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  const Matrix cov = Covariance(data);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);  // var{1,2,3} = 1
  EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 0.0, 1e-12);
}

TEST(StatsTest, CovarianceSymmetric) {
  const Matrix data{{1.0, 2.0, 0.0}, {2.0, 1.0, 1.0}, {0.0, 0.0, 5.0},
                    {1.5, 2.5, 2.0}};
  const Matrix cov = Covariance(data);
  EXPECT_TRUE(cov.IsSymmetric(1e-12));
}

TEST(StatsTest, TotalScatterMatchesDefinition) {
  const Matrix data{{0.0, 0.0}, {2.0, 0.0}};
  // Mean (1,0); scatter = 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(TotalScatter(data), 2.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const Vector a{1.0, 2.0, 3.0, 4.0};
  const Vector b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  const Vector c{-1.0, -2.0, -3.0, -4.0};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantVectorIsZero) {
  const Vector a{1.0, 1.0, 1.0};
  const Vector b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(StatsTest, EmptyMatrixBehaviour) {
  const Matrix empty(0, 2);
  EXPECT_EQ(ColumnMeans(empty).size(), 2);
  EXPECT_DOUBLE_EQ(TotalScatter(empty), 0.0);
}

}  // namespace
}  // namespace rpc::linalg
