#include "curve/bezier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/bernstein.h"

namespace rpc::curve {
namespace {

using linalg::Matrix;
using linalg::Vector;

// A 2-D cubic used across tests: p0=(0,0), p1=(0.2,0.8), p2=(0.7,0.9),
// p3=(1,1).
Matrix TestControlPoints() {
  return Matrix{{0.0, 0.2, 0.7, 1.0}, {0.0, 0.8, 0.9, 1.0}};
}

TEST(BezierTest, EndpointInterpolation) {
  const BezierCurve curve(TestControlPoints());
  EXPECT_TRUE(ApproxEqual(curve.Evaluate(0.0), Vector{0.0, 0.0}, 1e-12));
  EXPECT_TRUE(ApproxEqual(curve.Evaluate(1.0), Vector{1.0, 1.0}, 1e-12));
}

TEST(BezierTest, MatchesBernsteinExpansion) {
  const BezierCurve curve(TestControlPoints());
  const Matrix& p = curve.control_points();
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const Vector value = curve.Evaluate(s);
    Vector expected(2);
    for (int r = 0; r <= 3; ++r) {
      const double b = BernsteinBasis(3, r, s);
      expected[0] += b * p(0, r);
      expected[1] += b * p(1, r);
    }
    EXPECT_TRUE(ApproxEqual(value, expected, 1e-12)) << "s=" << s;
  }
}

TEST(BezierTest, LinearCurveIsStraight) {
  const BezierCurve line(Matrix{{0.0, 1.0}, {0.0, 2.0}});
  EXPECT_EQ(line.degree(), 1);
  const Vector mid = line.Evaluate(0.5);
  EXPECT_NEAR(mid[0], 0.5, 1e-12);
  EXPECT_NEAR(mid[1], 1.0, 1e-12);
}

TEST(BezierTest, DerivativeMatchesFiniteDifference) {
  const BezierCurve curve(TestControlPoints());
  const double h = 1e-7;
  for (double s : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Vector d = curve.Derivative(s);
    const Vector fd =
        (curve.Evaluate(s + h) - curve.Evaluate(s - h)) / (2.0 * h);
    EXPECT_TRUE(ApproxEqual(d, fd, 1e-5)) << "s=" << s;
  }
}

TEST(BezierTest, DerivativeCurveAgreesWithDerivative) {
  const BezierCurve curve(TestControlPoints());
  const BezierCurve hodograph = curve.DerivativeCurve();
  EXPECT_EQ(hodograph.degree(), 2);
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    EXPECT_TRUE(
        ApproxEqual(hodograph.Evaluate(s), curve.Derivative(s), 1e-12));
  }
}

TEST(BezierTest, PowerBasisRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(4));
    const int k = 1 + static_cast<int>(rng.UniformInt(4));
    Matrix control(d, k + 1);
    for (int i = 0; i < d; ++i) {
      for (int r = 0; r <= k; ++r) control(i, r) = rng.Uniform(-1.0, 1.0);
    }
    const BezierCurve curve(control);
    const Matrix coeffs = curve.PowerBasisCoefficients();
    for (double s = 0.0; s <= 1.0; s += 0.2) {
      Vector horner(d);
      for (int j = k; j >= 0; --j) {
        for (int i = 0; i < d; ++i) {
          horner[i] = horner[i] * s + coeffs(i, j);
        }
      }
      EXPECT_TRUE(ApproxEqual(horner, curve.Evaluate(s), 1e-10));
    }
  }
}

TEST(BezierTest, SampleShapeAndEndpoints) {
  const BezierCurve curve(TestControlPoints());
  const Matrix samples = curve.Sample(10);
  EXPECT_EQ(samples.rows(), 11);
  EXPECT_EQ(samples.cols(), 2);
  EXPECT_TRUE(ApproxEqual(samples.Row(0), curve.Evaluate(0.0), 1e-12));
  EXPECT_TRUE(ApproxEqual(samples.Row(10), curve.Evaluate(1.0), 1e-12));
}

TEST(BezierTest, SquaredDistance) {
  const BezierCurve curve(TestControlPoints());
  const Vector x{0.0, 0.0};
  EXPECT_NEAR(curve.SquaredDistanceAt(x, 0.0), 0.0, 1e-12);
  EXPECT_GT(curve.SquaredDistanceAt(x, 1.0), 1.0);
}

TEST(BezierTest, AffineInvarianceOfShape) {
  // Transforming control points transforms curve points identically
  // (Eq. 16).
  const BezierCurve curve(TestControlPoints());
  const Vector scale{2.0, 3.0};
  const Vector shift{-1.0, 4.0};
  const BezierCurve transformed = curve.AffineTransformed(scale, shift);
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const Vector orig = curve.Evaluate(s);
    const Vector expect{2.0 * orig[0] - 1.0, 3.0 * orig[1] + 4.0};
    EXPECT_TRUE(ApproxEqual(transformed.Evaluate(s), expect, 1e-12));
  }
}

TEST(BezierTest, ApproximateLengthOfLine) {
  const BezierCurve line(Matrix{{0.0, 3.0}, {0.0, 4.0}});
  EXPECT_NEAR(line.ApproximateLength(), 5.0, 1e-9);
}

TEST(BezierTest, ConvexHullProperty) {
  // All curve points lie in the control points' bounding box.
  const BezierCurve curve(TestControlPoints());
  for (double s = 0.0; s <= 1.0; s += 0.01) {
    const Vector p = curve.Evaluate(s);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 1.0);
  }
}

}  // namespace
}  // namespace rpc::curve
