// Tests for the geometric Bezier operations: subdivision, degree
// elevation, coordinate extrema.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/bezier.h"

namespace rpc::curve {
namespace {

using linalg::Matrix;
using linalg::Vector;

BezierCurve RandomCurve(int d, int k, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, k + 1);
  for (int i = 0; i < d; ++i) {
    for (int r = 0; r <= k; ++r) control(i, r) = rng.Uniform(-1.0, 1.0);
  }
  return BezierCurve(control);
}

TEST(SubdivideTest, PiecesTraceTheOriginal) {
  const BezierCurve curve = RandomCurve(3, 3, 11);
  for (double split : {0.25, 0.5, 0.8}) {
    const auto [left, right] = curve.Subdivide(split);
    EXPECT_EQ(left.degree(), 3);
    EXPECT_EQ(right.degree(), 3);
    for (double t = 0.0; t <= 1.0; t += 0.1) {
      EXPECT_TRUE(ApproxEqual(left.Evaluate(t),
                              curve.Evaluate(split * t), 1e-12));
      EXPECT_TRUE(ApproxEqual(right.Evaluate(t),
                              curve.Evaluate(split + (1.0 - split) * t),
                              1e-12));
    }
  }
}

TEST(SubdivideTest, EndpointsJoin) {
  const BezierCurve curve = RandomCurve(2, 4, 12);
  const auto [left, right] = curve.Subdivide(0.37);
  EXPECT_TRUE(ApproxEqual(left.Evaluate(1.0), right.Evaluate(0.0), 1e-12));
  EXPECT_TRUE(ApproxEqual(left.Evaluate(0.0), curve.Evaluate(0.0), 1e-12));
  EXPECT_TRUE(ApproxEqual(right.Evaluate(1.0), curve.Evaluate(1.0), 1e-12));
}

TEST(ElevateTest, ShapeUnchangedDegreeUp) {
  const BezierCurve curve = RandomCurve(2, 3, 13);
  const BezierCurve elevated = curve.Elevated();
  EXPECT_EQ(elevated.degree(), 4);
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    EXPECT_TRUE(ApproxEqual(elevated.Evaluate(t), curve.Evaluate(t), 1e-12));
  }
}

TEST(ElevateTest, RepeatedElevationStillExact) {
  const BezierCurve curve = RandomCurve(3, 2, 14);
  BezierCurve elevated = curve;
  for (int i = 0; i < 4; ++i) elevated = elevated.Elevated();
  EXPECT_EQ(elevated.degree(), 6);
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    EXPECT_TRUE(ApproxEqual(elevated.Evaluate(t), curve.Evaluate(t), 1e-10));
  }
}

TEST(CoordinateExtremaTest, MonotoneCurveHasNone) {
  const BezierCurve curve(
      Matrix{{0.0, 0.3, 0.7, 1.0}, {0.0, 0.1, 0.9, 1.0}});
  const auto extrema = curve.CoordinateExtrema();
  EXPECT_TRUE(extrema[0].empty());
  EXPECT_TRUE(extrema[1].empty());
}

TEST(CoordinateExtremaTest, ParabolicCoordinateHasOne) {
  // y rises then falls: quadratic-like bump with one interior extremum.
  const BezierCurve curve(
      Matrix{{0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}, {0.0, 1.2, 1.2, 0.0}});
  const auto extrema = curve.CoordinateExtrema();
  EXPECT_TRUE(extrema[0].empty());
  ASSERT_EQ(extrema[1].size(), 1u);
  EXPECT_NEAR(extrema[1][0], 0.5, 1e-6);  // symmetric bump peaks mid-way
  // The derivative really vanishes there.
  EXPECT_NEAR(curve.Derivative(extrema[1][0])[1], 0.0, 1e-8);
}

TEST(CoordinateExtremaTest, SWiggleHasTwo) {
  // A coordinate that goes up, down, up again.
  const BezierCurve curve(Matrix{{0.0, 2.0, -1.0, 1.0}});
  const auto extrema = curve.CoordinateExtrema();
  ASSERT_EQ(extrema[0].size(), 2u);
  EXPECT_LT(extrema[0][0], extrema[0][1]);
  for (double root : extrema[0]) {
    EXPECT_NEAR(curve.Derivative(root)[0], 0.0, 1e-8);
  }
}

TEST(CoordinateExtremaTest, AgreesWithMonotonicityOfRpcShapes) {
  // Curves satisfying Proposition 1 must report no interior extrema.
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix control(2, 4);
    for (int j = 0; j < 2; ++j) {
      control(j, 0) = 0.0;
      control(j, 1) = rng.Uniform(0.01, 0.99);
      control(j, 2) = rng.Uniform(0.01, 0.99);
      control(j, 3) = 1.0;
    }
    const BezierCurve curve(control);
    const auto extrema = curve.CoordinateExtrema();
    EXPECT_TRUE(extrema[0].empty()) << "trial " << trial;
    EXPECT_TRUE(extrema[1].empty()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rpc::curve
