#include "curve/simd_backend.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "opt/batch_projection.h"
#include "opt/curve_projection.h"
#include "opt/row_block.h"

namespace rpc::curve {
namespace {

using linalg::Matrix;
using linalg::Vector;
using opt::ProjectionMethod;
using opt::ProjectionOptions;
using opt::ProjectionWorkspace;
using opt::RowBlock;

TEST(SimdBackendTest, ScalarAlwaysAvailableAndFirst) {
  const std::vector<const SimdOps*> backends = AvailableSimdBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends[0]->kind, SimdBackendKind::kScalar);
  EXPECT_STREQ(backends[0]->name, "scalar");
  for (const SimdOps* ops : backends) {
    ASSERT_NE(ops, nullptr);
    EXPECT_NE(ops->tile_squared_distances_fused, nullptr);
    EXPECT_NE(ops->tile_squared_distances_seq, nullptr);
    EXPECT_NE(ops->power_squared_distance, nullptr);
    EXPECT_NE(ops->power_squared_distances_multi, nullptr);
    EXPECT_STREQ(ops->name, SimdBackendName(ops->kind));
  }
}

TEST(SimdBackendTest, ActiveBackendIsAvailableAndNamed) {
  const SimdOps& active = ActiveSimd();
  EXPECT_STREQ(BackendName(), active.name);
  EXPECT_EQ(ActiveSimdKind(), active.kind);
  bool listed = false;
  for (const SimdOps* ops : AvailableSimdBackends()) {
    if (ops->kind == active.kind) listed = true;
  }
  EXPECT_TRUE(listed);
}

TEST(SimdBackendTest, SetSimdBackendRejectsUnavailableAcceptsScalar) {
  const SimdBackendKind previous = ActiveSimdKind();
  EXPECT_TRUE(SetSimdBackend(SimdBackendKind::kScalar));
  EXPECT_EQ(ActiveSimdKind(), SimdBackendKind::kScalar);
#if !defined(__aarch64__)
  EXPECT_FALSE(SetSimdBackend(SimdBackendKind::kNeon));
  EXPECT_EQ(ActiveSimdKind(), SimdBackendKind::kScalar);
#endif
  EXPECT_TRUE(SetSimdBackend(previous));
  EXPECT_EQ(ActiveSimdKind(), previous);
}

// The core contract: on random SoA tiles of random shapes, every compiled
// backend's kernels produce bit-identical distances to the scalar
// reference — for both reference orderings, including ragged row counts
// that exercise the vector kernels' scalar remainders and dimension tails.
TEST(SimdBackendTest, KernelsBitIdenticalToScalarOnRandomTiles) {
  Rng rng(2024);
  const std::vector<const SimdOps*> backends = AvailableSimdBackends();
  const SimdOps* scalar = backends[0];
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(40));
    const int rows = 1 + static_cast<int>(rng.UniformInt(RowBlock::kMaxRows));
    std::vector<double> tile(static_cast<size_t>(d) * RowBlock::kLaneStride);
    for (double& v : tile) v = rng.Uniform(-2.0, 2.0);
    std::vector<double> f(static_cast<size_t>(d));
    for (double& v : f) v = rng.Uniform(-2.0, 2.0);

    std::vector<double> expected_fused(static_cast<size_t>(rows));
    std::vector<double> expected_seq(static_cast<size_t>(rows));
    scalar->tile_squared_distances_fused(tile.data(), RowBlock::kLaneStride,
                                         d, rows, f.data(),
                                         expected_fused.data());
    scalar->tile_squared_distances_seq(tile.data(), RowBlock::kLaneStride, d,
                                       rows, f.data(), expected_seq.data());
    for (const SimdOps* ops : backends) {
      std::vector<double> got(static_cast<size_t>(rows), -1.0);
      ops->tile_squared_distances_fused(tile.data(), RowBlock::kLaneStride, d,
                                        rows, f.data(), got.data());
      for (int r = 0; r < rows; ++r) {
        ASSERT_EQ(got[static_cast<size_t>(r)],
                  expected_fused[static_cast<size_t>(r)])
            << ops->name << " fused d=" << d << " rows=" << rows
            << " row " << r;
      }
      ops->tile_squared_distances_seq(tile.data(), RowBlock::kLaneStride, d,
                                      rows, f.data(), got.data());
      for (int r = 0; r < rows; ++r) {
        ASSERT_EQ(got[static_cast<size_t>(r)],
                  expected_seq[static_cast<size_t>(r)])
            << ops->name << " seq d=" << d << " rows=" << rows
            << " row " << r;
      }
    }
  }
}

// Same contract for the per-point refinement kernel: random degrees,
// dimensions (ragged tails included) and interior s — every backend must
// match the scalar reference bit for bit.
TEST(SimdBackendTest, PowerKernelBitIdenticalToScalarOnRandomCoefficients) {
  Rng rng(909);
  const std::vector<const SimdOps*> backends = AvailableSimdBackends();
  const SimdOps* scalar = backends[0];
  for (int trial = 0; trial < 300; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(40));
    const int k = 1 + static_cast<int>(rng.UniformInt(7));
    std::vector<double> power(static_cast<size_t>(k + 1) *
                              static_cast<size_t>(d));
    for (double& v : power) v = rng.Uniform(-2.0, 2.0);
    std::vector<double> x(static_cast<size_t>(d));
    for (double& v : x) v = rng.Uniform(-2.0, 2.0);
    const double s = rng.Uniform(1e-6, 1.0 - 1e-6);
    const double expected =
        scalar->power_squared_distance(power.data(), k, d, s, x.data());
    for (const SimdOps* ops : backends) {
      const double got =
          ops->power_squared_distance(power.data(), k, d, s, x.data());
      ASSERT_EQ(got, expected)
          << ops->name << " k=" << k << " d=" << d << " s=" << s;
    }
  }
}

// The batched per-lane-parameter kernel (the lock-step Golden Section
// engine) must match both the scalar reference and, lane by lane, the
// per-point kernel it batches: random shapes, ragged task counts and
// dimension tails, every compiled backend.
TEST(SimdBackendTest, MultiKernelBitIdenticalToScalarAndPerPoint) {
  Rng rng(4242);
  const std::vector<const SimdOps*> backends = AvailableSimdBackends();
  const SimdOps* scalar = backends[0];
  constexpr int kLaneStride = RowBlock::kMaxRows;
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(40));
    const int k = 1 + static_cast<int>(rng.UniformInt(7));
    const int count = 1 + static_cast<int>(rng.UniformInt(kLaneStride));
    std::vector<double> power(static_cast<size_t>(k + 1) *
                              static_cast<size_t>(d));
    for (double& v : power) v = rng.Uniform(-2.0, 2.0);
    std::vector<double> xt(static_cast<size_t>(d) * kLaneStride);
    for (double& v : xt) v = rng.Uniform(-2.0, 2.0);
    std::vector<double> s(static_cast<size_t>(count));
    for (double& v : s) v = rng.Uniform(1e-6, 1.0 - 1e-6);

    std::vector<double> expected(static_cast<size_t>(count));
    scalar->power_squared_distances_multi(power.data(), k, d, xt.data(),
                                          kLaneStride, count, s.data(),
                                          expected.data());
    // Lane t of the batched kernel is the per-point kernel at (x_t, s_t).
    std::vector<double> x(static_cast<size_t>(d));
    for (int t = 0; t < count; ++t) {
      for (int j = 0; j < d; ++j) {
        x[static_cast<size_t>(j)] =
            xt[static_cast<size_t>(j) * kLaneStride + t];
      }
      ASSERT_EQ(scalar->power_squared_distance(power.data(), k, d,
                                               s[static_cast<size_t>(t)],
                                               x.data()),
                expected[static_cast<size_t>(t)])
          << "multi vs per-point, task " << t << " k=" << k << " d=" << d;
    }
    for (const SimdOps* ops : backends) {
      std::vector<double> got(static_cast<size_t>(count), -1.0);
      ops->power_squared_distances_multi(power.data(), k, d, xt.data(),
                                         kLaneStride, count, s.data(),
                                         got.data());
      for (int t = 0; t < count; ++t) {
        ASSERT_EQ(got[static_cast<size_t>(t)],
                  expected[static_cast<size_t>(t)])
            << ops->name << " k=" << k << " d=" << d << " count=" << count
            << " task " << t;
      }
    }
  }
}

BezierCurve RandomCurve(int d, int k, Rng* rng) {
  Matrix control(d, k + 1);
  for (int i = 0; i < d; ++i) {
    for (int r = 0; r <= k; ++r) control(i, r) = rng->Uniform(-0.2, 1.2);
  }
  return BezierCurve(control);
}

// End-to-end equivalence fuzz: random degrees (the general-degree Horner
// path included), dimensions and row counts; every compiled backend must
// reproduce the scalar backend's batch scores, per-row squared distances
// and total J bit for bit, for every grid-based method.
TEST(SimdBackendTest, BatchProjectionBitIdenticalAcrossBackends) {
  const SimdBackendKind previous = ActiveSimdKind();
  Rng rng(77);
  const ProjectionMethod methods[] = {ProjectionMethod::kGoldenSection,
                                      ProjectionMethod::kGridOnly,
                                      ProjectionMethod::kNewton};
  for (int trial = 0; trial < 10; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(12));
    const int k = 1 + static_cast<int>(rng.UniformInt(5));
    const int n = 1 + static_cast<int>(rng.UniformInt(150));
    const BezierCurve curve = RandomCurve(d, k, &rng);
    Matrix data(n, d);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.3, 1.3);
    }
    for (ProjectionMethod method : methods) {
      ProjectionOptions options;
      options.method = method;
      options.grid_points = 8 + static_cast<int>(rng.UniformInt(24));

      ASSERT_TRUE(SetSimdBackend(SimdBackendKind::kScalar));
      // Per-row scalar reference, the ground truth every backend and the
      // block path itself must match.
      ProjectionWorkspace reference;
      reference.Bind(curve, options);
      std::vector<double> ref_s(static_cast<size_t>(n));
      std::vector<double> ref_sq(static_cast<size_t>(n));
      double ref_total = 0.0;
      for (int i = 0; i < n; ++i) {
        const auto proj = reference.Project(data.RowPtr(i));
        ref_s[static_cast<size_t>(i)] = proj.s;
        ref_sq[static_cast<size_t>(i)] = proj.squared_distance;
        ref_total += proj.squared_distance;
      }
      for (const SimdOps* ops : AvailableSimdBackends()) {
        ASSERT_TRUE(SetSimdBackend(ops->kind));
        double total = 0.0;
        const Vector scores =
            opt::ProjectRowsBatch(curve, data, options, nullptr, &total);
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(scores[i], ref_s[static_cast<size_t>(i)])
              << ops->name << " k=" << k << " d=" << d << " row " << i;
        }
        ASSERT_EQ(total, ref_total) << ops->name << " k=" << k << " d=" << d;
      }
    }
  }
  ASSERT_TRUE(SetSimdBackend(previous));
}

// The block path must preserve the evaluation-accounting invariant the
// per-row path holds: workspace counters count exactly the evaluations the
// solver performed, whatever backend ran the grid stage.
TEST(SimdBackendTest, BlockPathEvaluationAccountingMatchesPerRow) {
  Rng rng(31);
  const BezierCurve curve = RandomCurve(4, 3, &rng);
  Matrix data(100, 4);
  for (int i = 0; i < data.rows(); ++i) {
    for (int j = 0; j < data.cols(); ++j) data(i, j) = rng.Uniform(-0.2, 1.2);
  }
  for (ProjectionMethod method : {ProjectionMethod::kGoldenSection,
                                  ProjectionMethod::kGridOnly,
                                  ProjectionMethod::kNewton}) {
    ProjectionOptions options;
    options.method = method;
    ProjectionWorkspace per_row;
    per_row.Bind(curve, options);
    for (int i = 0; i < data.rows(); ++i) per_row.Project(data.RowPtr(i));

    ProjectionWorkspace block;
    block.Bind(curve, options);
    std::vector<double> s(static_cast<size_t>(data.rows()));
    block.ProjectBlock(data.RowPtr(0), data.rows(), data.cols(), s.data(),
                       nullptr);
    EXPECT_EQ(block.objective_evaluations(), per_row.objective_evaluations());
    EXPECT_EQ(block.stationarity_evaluations(),
              per_row.stationarity_evaluations());
  }
}

}  // namespace
}  // namespace rpc::curve
