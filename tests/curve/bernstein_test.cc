#include "curve/bernstein.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rpc::curve {
namespace {

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(3, 0), 1u);
  EXPECT_EQ(Binomial(3, 1), 3u);
  EXPECT_EQ(Binomial(3, 2), 3u);
  EXPECT_EQ(Binomial(3, 3), 1u);
  EXPECT_EQ(Binomial(10, 5), 252u);
  EXPECT_EQ(Binomial(20, 10), 184756u);
}

TEST(BernsteinBasisTest, CubicAtEndpoints) {
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 2, 1.0), 0.0);
}

TEST(BernsteinBasisTest, CubicAtHalf) {
  // B_r^3(1/2) = C(3,r)/8.
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 0, 0.5), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 1, 0.5), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 2, 0.5), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 3, 0.5), 1.0 / 8.0);
}

TEST(AllBernsteinTest, MatchesDirectFormula) {
  for (int k = 0; k <= 6; ++k) {
    for (double s : {0.0, 0.1, 0.33, 0.5, 0.77, 1.0}) {
      const linalg::Vector basis = AllBernstein(k, s);
      ASSERT_EQ(basis.size(), k + 1);
      for (int r = 0; r <= k; ++r) {
        EXPECT_NEAR(basis[r], BernsteinBasis(k, r, s), 1e-12)
            << "k=" << k << " r=" << r << " s=" << s;
      }
    }
  }
}

TEST(AllBernsteinTest, PartitionOfUnity) {
  for (int k = 1; k <= 8; ++k) {
    for (double s = 0.0; s <= 1.0; s += 0.05) {
      const linalg::Vector basis = AllBernstein(k, s);
      EXPECT_NEAR(basis.Sum(), 1.0, 1e-12);
    }
  }
}

TEST(AllBernsteinTest, NonNegativeOnUnitInterval) {
  for (int k = 1; k <= 8; ++k) {
    for (double s = 0.0; s <= 1.0; s += 0.01) {
      const linalg::Vector basis = AllBernstein(k, s);
      for (int r = 0; r <= k; ++r) EXPECT_GE(basis[r], 0.0);
    }
  }
}

TEST(AllBernsteinTest, SymmetryProperty) {
  // B_r^k(s) = B_{k-r}^k(1-s).
  const int k = 5;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const linalg::Vector at_s = AllBernstein(k, s);
    const linalg::Vector at_1ms = AllBernstein(k, 1.0 - s);
    for (int r = 0; r <= k; ++r) {
      EXPECT_NEAR(at_s[r], at_1ms[k - r], 1e-12);
    }
  }
}

}  // namespace
}  // namespace rpc::curve
