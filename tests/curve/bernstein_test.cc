#include "curve/bernstein.h"

#include <cmath>
#include <utility>

#include <gtest/gtest.h>

namespace rpc::curve {
namespace {

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(3, 0), 1u);
  EXPECT_EQ(Binomial(3, 1), 3u);
  EXPECT_EQ(Binomial(3, 2), 3u);
  EXPECT_EQ(Binomial(3, 3), 1u);
  EXPECT_EQ(Binomial(10, 5), 252u);
  EXPECT_EQ(Binomial(20, 10), 184756u);
}

TEST(BernsteinBasisTest, CubicAtEndpoints) {
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 2, 1.0), 0.0);
}

TEST(BernsteinBasisTest, CubicAtHalf) {
  // B_r^3(1/2) = C(3,r)/8.
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 0, 0.5), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 1, 0.5), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 2, 0.5), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(BernsteinBasis(3, 3, 0.5), 1.0 / 8.0);
}

TEST(AllBernsteinTest, MatchesDirectFormula) {
  for (int k = 0; k <= 6; ++k) {
    for (double s : {0.0, 0.1, 0.33, 0.5, 0.77, 1.0}) {
      const linalg::Vector basis = AllBernstein(k, s);
      ASSERT_EQ(basis.size(), k + 1);
      for (int r = 0; r <= k; ++r) {
        EXPECT_NEAR(basis[r], BernsteinBasis(k, r, s), 1e-12)
            << "k=" << k << " r=" << r << " s=" << s;
      }
    }
  }
}

TEST(AllBernsteinTest, PartitionOfUnity) {
  for (int k = 1; k <= 8; ++k) {
    for (double s = 0.0; s <= 1.0; s += 0.05) {
      const linalg::Vector basis = AllBernstein(k, s);
      EXPECT_NEAR(basis.Sum(), 1.0, 1e-12);
    }
  }
}

TEST(AllBernsteinTest, NonNegativeOnUnitInterval) {
  for (int k = 1; k <= 8; ++k) {
    for (double s = 0.0; s <= 1.0; s += 0.01) {
      const linalg::Vector basis = AllBernstein(k, s);
      for (int r = 0; r <= k; ++r) EXPECT_GE(basis[r], 0.0);
    }
  }
}

TEST(AllBernsteinTest, SymmetryProperty) {
  // B_r^k(s) = B_{k-r}^k(1-s).
  const int k = 5;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const linalg::Vector at_s = AllBernstein(k, s);
    const linalg::Vector at_1ms = AllBernstein(k, 1.0 - s);
    for (int r = 0; r <= k; ++r) {
      EXPECT_NEAR(at_s[r], at_1ms[k - r], 1e-12);
    }
  }
}

TEST(BernsteinDesignTest, EntriesAreBasisValues) {
  const linalg::Vector scores{0.0, 0.25, 0.6, 1.0};
  for (int k : {1, 3, 4}) {
    const linalg::Matrix g = BernsteinDesign(k, scores);
    ASSERT_EQ(g.rows(), k + 1);
    ASSERT_EQ(g.cols(), scores.size());
    for (int i = 0; i < scores.size(); ++i) {
      for (int r = 0; r <= k; ++r) {
        EXPECT_NEAR(g(r, i), BernsteinBasis(k, r, scores[i]), 1e-12);
      }
    }
  }
}

TEST(BernsteinDesignAccumulatorTest, MatchesDenseNormalEquations) {
  const int n = 37;
  const int d = 3;
  const int k = 3;
  linalg::Vector scores(n);
  linalg::Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    scores[i] = static_cast<double>(i) / (n - 1);
    for (int j = 0; j < d; ++j) {
      data(i, j) = 0.5 + 0.4 * std::sin(0.7 * i + j);
    }
  }
  const linalg::Matrix design = BernsteinDesign(k, scores);
  const linalg::Matrix dense_gram = linalg::TimesTranspose(design, design);
  const linalg::Matrix dense_cross =
      linalg::TransposeTimes(data, design.Transposed());

  BernsteinDesignAccumulator acc;
  acc.Bind(k, d);
  for (int i = 0; i < n; ++i) acc.AccumulateRow(scores[i], data.RowPtr(i));

  // Bit-identical: the streaming per-entry accumulation order equals the
  // dense path's row-ordered sums.
  for (int r = 0; r <= k; ++r) {
    for (int c = 0; c <= k; ++c) {
      EXPECT_EQ(acc.gram()(r, c), dense_gram(r, c)) << r << "," << c;
    }
  }
  for (int j = 0; j < d; ++j) {
    for (int r = 0; r <= k; ++r) {
      EXPECT_EQ(acc.cross()(j, r), dense_cross(j, r)) << j << "," << r;
    }
  }
}

TEST(BernsteinDesignAccumulatorTest, OrderedMergeOfSegments) {
  // Splitting the rows into segments and merging the partials in order must
  // reproduce the same totals whatever the split point — the reduction
  // core::FitWorkspace relies on for thread-count invariance.
  const int n = 64;
  const int d = 2;
  const int k = 3;
  linalg::Vector scores(n);
  linalg::Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    scores[i] = static_cast<double>((i * 37) % n) / n;
    for (int j = 0; j < d; ++j) data(i, j) = 0.3 + 0.1 * ((i + j) % 5);
  }

  const auto totals_for_split = [&](int split) {
    BernsteinDesignAccumulator lo, hi, total;
    lo.Bind(k, d);
    hi.Bind(k, d);
    total.Bind(k, d);
    for (int i = 0; i < split; ++i) {
      lo.AccumulateRow(scores[i], data.RowPtr(i));
    }
    for (int i = split; i < n; ++i) {
      hi.AccumulateRow(scores[i], data.RowPtr(i));
    }
    total.Merge(lo);
    total.Merge(hi);
    return std::make_pair(total.gram(), total.cross());
  };

  const auto [gram_a, cross_a] = totals_for_split(16);
  const auto [gram_b, cross_b] = totals_for_split(16);
  // Same split twice: deterministic to the bit.
  for (int r = 0; r <= k; ++r) {
    for (int c = 0; c <= k; ++c) EXPECT_EQ(gram_a(r, c), gram_b(r, c));
  }
  for (int j = 0; j < d; ++j) {
    for (int r = 0; r <= k; ++r) EXPECT_EQ(cross_a(j, r), cross_b(j, r));
  }
  // Different split: equal within rounding (grouping differs).
  const auto [gram_c, cross_c] = totals_for_split(40);
  EXPECT_TRUE(linalg::ApproxEqual(gram_a, gram_c, 1e-12));
  EXPECT_TRUE(linalg::ApproxEqual(cross_a, cross_c, 1e-12));
}

TEST(BernsteinDesignAccumulatorTest, ResetClearsSums) {
  BernsteinDesignAccumulator acc;
  acc.Bind(2, 2);
  const double x[] = {0.5, 0.25};
  acc.AccumulateRow(0.5, x);
  ASSERT_GT(acc.gram()(0, 0), 0.0);
  acc.Reset();
  EXPECT_EQ(acc.gram().MaxAbs(), 0.0);
  EXPECT_EQ(acc.cross().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace rpc::curve
