#include "curve/cubic_bezier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/bernstein.h"

namespace rpc::curve {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(CubicMTest, RowsAreBernsteinPolynomials) {
  // Row r of M dotted with z(s) must equal B_r^3(s).
  const Matrix& m = CubicM();
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const Vector z = CubicZ(s);
    for (int r = 0; r < 4; ++r) {
      double dot = 0.0;
      for (int c = 0; c < 4; ++c) dot += m(r, c) * z[c];
      EXPECT_NEAR(dot, BernsteinBasis(3, r, s), 1e-12)
          << "r=" << r << " s=" << s;
    }
  }
}

TEST(CubicZTest, PowersOfS) {
  const Vector z = CubicZ(2.0);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  EXPECT_DOUBLE_EQ(z[2], 4.0);
  EXPECT_DOUBLE_EQ(z[3], 8.0);
}

TEST(CubicZMatrixTest, ColumnsAreZ) {
  const Vector scores{0.0, 0.5, 1.0};
  const Matrix z = CubicZMatrix(scores);
  EXPECT_EQ(z.rows(), 4);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_TRUE(ApproxEqual(z.Column(1), CubicZ(0.5), 1e-12));
}

TEST(EvaluateCubicTest, MatchesDeCasteljau) {
  Rng rng(31);
  Matrix p(3, 4);
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 4; ++r) p(i, r) = rng.Uniform();
  }
  const BezierCurve curve(p);
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    EXPECT_TRUE(ApproxEqual(EvaluateCubic(p, s), curve.Evaluate(s), 1e-12));
  }
}

TEST(ReconstructCubicTest, ColumnsAreCurvePoints) {
  Matrix p{{0.0, 0.3, 0.6, 1.0}, {1.0, 0.7, 0.3, 0.0}};
  const Vector scores{0.25, 0.75};
  const Matrix recon = ReconstructCubic(p, scores);
  EXPECT_EQ(recon.rows(), 2);
  EXPECT_EQ(recon.cols(), 2);
  EXPECT_TRUE(ApproxEqual(recon.Column(0), EvaluateCubic(p, 0.25), 1e-12));
  EXPECT_TRUE(ApproxEqual(recon.Column(1), EvaluateCubic(p, 0.75), 1e-12));
}

TEST(CubicResidualTest, ZeroWhenDataOnCurve) {
  const Matrix p{{0.0, 0.25, 0.75, 1.0}, {0.0, 0.6, 0.8, 1.0}};
  const Vector scores{0.2, 0.5, 0.9};
  Matrix data(3, 2);
  for (int i = 0; i < 3; ++i) data.SetRow(i, EvaluateCubic(p, scores[i]));
  EXPECT_NEAR(CubicResidual(p, data, scores), 0.0, 1e-14);
}

TEST(CubicResidualTest, MatchesManualSum) {
  const Matrix p{{0.0, 0.25, 0.75, 1.0}, {0.0, 0.6, 0.8, 1.0}};
  const Vector scores{0.3, 0.8};
  Matrix data{{0.1, 0.2}, {0.9, 0.8}};
  double expected = 0.0;
  for (int i = 0; i < 2; ++i) {
    const Vector f = EvaluateCubic(p, scores[i]);
    expected += (data.Row(i) - f).SquaredNorm();
  }
  EXPECT_NEAR(CubicResidual(p, data, scores), expected, 1e-12);
}

}  // namespace
}  // namespace rpc::curve
