#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace rpc {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(3).value_or(-7), 3);
  EXPECT_EQ(ParsePositive(0).value_or(-7), -7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 42);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Doubled(int x) {
  RPC_ASSIGN_OR_RETURN(int parsed, ParsePositive(x));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  Result<int> r = Doubled(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);
}

TEST(ResultTest, AssignOrReturnOnFailure) {
  Result<int> r = Doubled(-4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> TwoAssignsSameScope(int x) {
  RPC_ASSIGN_OR_RETURN(int a, ParsePositive(x));
  RPC_ASSIGN_OR_RETURN(int b, ParsePositive(x + 1));
  return a + b;
}

TEST(ResultTest, AssignOrReturnTwiceInOneScope) {
  Result<int> r = TwoAssignsSameScope(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

}  // namespace
}  // namespace rpc
