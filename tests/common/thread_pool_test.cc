#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(ThreadPoolTest, ParallelismCountsCallingThread) {
  EXPECT_EQ(ThreadPool(1).parallelism(), 1);
  EXPECT_EQ(ThreadPool(4).parallelism(), 4);
  EXPECT_GE(ThreadPool(0).parallelism(), 1);  // hardware concurrency
  EXPECT_EQ(ThreadPool(-3).parallelism(), 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 16, [&](std::int64_t, std::int64_t, int) { ++calls; });
  pool.ParallelFor(-5, 1, [&](std::int64_t, std::int64_t, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, GrainLargerThanNRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::int64_t seen_begin = -1;
  std::int64_t seen_end = -1;
  pool.ParallelFor(5, 100, [&](std::int64_t begin, std::int64_t end, int) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 0);
  EXPECT_EQ(seen_end, 5);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, 7, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<size_t>(i)];
    }
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIndicesStayWithinParallelism) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(200, 1, [&](std::int64_t, std::int64_t, int worker) {
    if (worker < 0 || worker >= pool.parallelism()) out_of_range = true;
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The partition is fixed by (n, grain), so per-index results are
  // reproducible bit-for-bit whatever the pool size.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(777, 0.0);
    pool.ParallelFor(777, 13,
                     [&](std::int64_t begin, std::int64_t end, int) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         out[static_cast<size_t>(i)] =
                             static_cast<double>(i) * 1.0e-3 + begin * 1.0;
                       }
                     });
    return out;
  };
  const std::vector<double> serial = run(1);
  const std::vector<double> two = run(2);
  const std::vector<double> eight = run(8);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  auto throwing = [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) {
      if (i == 137) throw std::runtime_error("boom at 137");
    }
  };
  EXPECT_THROW(pool.ParallelFor(500, 10, throwing), std::runtime_error);

  // The pool is reusable after a failed job.
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(100, 9, [&](std::int64_t begin, std::int64_t end, int) {
    std::int64_t local = 0;
    for (std::int64_t i = begin; i < end; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolTest, ExceptionOnSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10, 1,
                                [&](std::int64_t, std::int64_t, int) {
                                  throw std::invalid_argument("serial");
                                }),
               std::invalid_argument);
}

TEST(ThreadPoolSubmitTest, SerialPoolRunsTaskInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  // No workers: Submit must have executed the task before returning.
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolSubmitTest, WaitTasksSeesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] { ++ran; });
  }
  pool.WaitTasks();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolSubmitTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { ++ran; });
  }  // ~ThreadPool must run (not drop) everything still queued
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolSubmitTest, TasksMaySubmitFurtherTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<int> chained{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      ++ran;
      pool.Submit([&] { ++chained; });
    });
  }
  // WaitTasks covers the chained tasks too: the predicate holds only once
  // the queue is empty AND nothing is still executing (and able to enqueue).
  pool.WaitTasks();
  EXPECT_EQ(ran.load(), 20);
  EXPECT_EQ(chained.load(), 20);
}

TEST(ThreadPoolSubmitTest, ThrowingTaskDoesNotKillTheWorker) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { throw std::runtime_error("task boom"); });
  pool.WaitTasks();
  for (int i = 0; i < 10; ++i) pool.Submit([&] { ++ran; });
  pool.WaitTasks();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolSubmitTest, CoexistsWithParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> task_ran{0};
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) pool.Submit([&] { ++task_ran; });
    pool.ParallelFor(100, 9, [&](std::int64_t begin, std::int64_t end, int) {
      std::int64_t local = 0;
      for (std::int64_t i = begin; i < end; ++i) local += i;
      sum += local;
    });
  }
  pool.WaitTasks();
  EXPECT_EQ(task_ran.load(), 80);
  EXPECT_EQ(sum.load(), 10 * (100 * 99 / 2));
}

TEST(ThreadPoolSubmitTest, ManySubmittersFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) pool.Submit([&] { ++ran; });
    });
  }
  for (auto& t : submitters) t.join();
  pool.WaitTasks();
  EXPECT_EQ(ran.load(), 400);
}

}  // namespace
}  // namespace rpc
