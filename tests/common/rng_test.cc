#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysBelowBound) {
  Rng rng(10);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<size_t>(v)];
  }
  // Roughly uniform occupancy.
  for (int c : counts) EXPECT_NEAR(c, 10000, 700);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(14);
  std::vector<int> perm = rng.Permutation(50);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(15);
  const std::vector<int> perm = rng.Permutation(100);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (perm[static_cast<size_t>(i)] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10);  // expected ~1
}

}  // namespace
}  // namespace rpc
