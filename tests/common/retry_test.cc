// common::RetryPolicy / RetryState: the schedule must be an exact,
// replayable function of (policy, rng seed, clock) — the replication
// session layer leans on that for deterministic fault-matrix tests.
#include "common/retry.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc {
namespace {

/// Manually advanced monotonic clock.
struct FakeClock {
  double now = 100.0;
  RetryState::NowFn fn() {
    return [this] { return now; };
  }
};

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.05;
  policy.max_backoff_seconds = 0.4;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  policy.max_attempts = 0;
  policy.deadline_seconds = 0.0;
  return policy;
}

TEST(RetryStateTest, ExponentialLadderSaturatesAtCap) {
  FakeClock clock;
  RetryState retry(NoJitterPolicy(), nullptr, clock.fn());
  std::vector<double> delays;
  for (int i = 0; i < 6; ++i) {
    double delay = -1.0;
    ASSERT_TRUE(retry.NextDelay(&delay));
    delays.push_back(delay);
  }
  const std::vector<double> expected = {0.05, 0.1, 0.2, 0.4, 0.4, 0.4};
  ASSERT_EQ(delays.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(delays[i], expected[i]) << "attempt " << i;
  }
}

TEST(RetryStateTest, MaxAttemptsExhaustsBudget) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 3;
  FakeClock clock;
  RetryState retry(policy, nullptr, clock.fn());
  double delay = 0.0;
  EXPECT_TRUE(retry.NextDelay(&delay));
  EXPECT_TRUE(retry.NextDelay(&delay));
  EXPECT_TRUE(retry.NextDelay(&delay));
  EXPECT_FALSE(retry.NextDelay(&delay));
  EXPECT_EQ(retry.attempts(), 4);

  const Status wrapped =
      retry.NextDelayOr(Status::Unavailable("link closed"), &delay);
  EXPECT_EQ(wrapped.code(), StatusCode::kUnavailable);
  EXPECT_NE(wrapped.message().find("link closed"), std::string::npos);
}

TEST(RetryStateTest, DeadlineClampsAndThenRefuses) {
  RetryPolicy policy = NoJitterPolicy();
  policy.deadline_seconds = 0.12;
  FakeClock clock;
  RetryState retry(policy, nullptr, clock.fn());

  double delay = 0.0;
  ASSERT_TRUE(retry.NextDelay(&delay));  // 0.05, well inside the budget
  EXPECT_DOUBLE_EQ(delay, 0.05);
  clock.now += 0.05;

  // Nominal next delay is 0.1 but only 0.07 of budget remains: clamped.
  ASSERT_TRUE(retry.NextDelay(&delay));
  EXPECT_NEAR(delay, 0.12 - 0.05, 1e-12);
  clock.now += delay + 1e-9;  // the wait ended at (or just past) the deadline

  // Budget fully consumed: refused, and NextDelayOr reports the timeout.
  EXPECT_FALSE(retry.NextDelay(&delay));
  const Status wrapped =
      retry.NextDelayOr(Status::Unavailable("still down"), &delay);
  EXPECT_EQ(wrapped.code(), StatusCode::kDeadlineExceeded);
}

TEST(RetryStateTest, ResetRestartsScheduleAndDeadline) {
  RetryPolicy policy = NoJitterPolicy();
  policy.deadline_seconds = 0.2;
  policy.max_attempts = 2;
  FakeClock clock;
  RetryState retry(policy, nullptr, clock.fn());

  double delay = 0.0;
  ASSERT_TRUE(retry.NextDelay(&delay));
  ASSERT_TRUE(retry.NextDelay(&delay));
  EXPECT_FALSE(retry.NextDelay(&delay));

  clock.now += 10.0;  // a long outage later, the session recovered once
  retry.Reset();
  EXPECT_EQ(retry.attempts(), 0);
  ASSERT_TRUE(retry.NextDelay(&delay));
  EXPECT_DOUBLE_EQ(delay, 0.05);  // ladder restarted
  ASSERT_TRUE(retry.NextDelay(&delay));
  EXPECT_DOUBLE_EQ(delay, 0.1);  // deadline re-anchored: no clamp
}

TEST(RetryStateTest, JitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.2;
  FakeClock clock;

  const auto run = [&](uint64_t seed) {
    Rng rng(seed);
    RetryState retry(policy, &rng, clock.fn());
    std::vector<double> delays;
    for (int i = 0; i < 5; ++i) {
      double delay = 0.0;
      EXPECT_TRUE(retry.NextDelay(&delay));
      delays.push_back(delay);
    }
    return delays;
  };

  const std::vector<double> a = run(7);
  const std::vector<double> b = run(7);
  const std::vector<double> c = run(8);
  EXPECT_EQ(a, b);  // same seed -> identical schedule, bit for bit
  EXPECT_NE(a, c);  // different seed -> different draws

  const std::vector<double> base = {0.05, 0.1, 0.2, 0.4, 0.4};
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], base[i] * 0.8) << "attempt " << i;
    EXPECT_LE(a[i], base[i] * 1.2) << "attempt " << i;
  }
}

}  // namespace
}  // namespace rpc
