#include "common/status.h"

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("missing row");
  EXPECT_EQ(s.ToString(), "NotFound: missing row");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::DataLoss("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "NumericalError");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::DataLoss("boom"); };
  auto wrapper = [&]() -> Status {
    RPC_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kDataLoss);

  auto succeeds = [] { return Status::Ok(); };
  auto wrapper_ok = [&]() -> Status {
    RPC_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper_ok().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rpc
