#include "common/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_EQ(queue.size(), 5);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  EXPECT_EQ(queue.size(), 2);
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_TRUE(queue.TryPush(3));  // space again
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<std::string> queue(2);
  EXPECT_FALSE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.TryPush("x"));
  const auto item = queue.TryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, "x");
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] { got = queue.Pop().value_or(-2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got.load(), -1);  // still waiting
  ASSERT_TRUE(queue.Push(7));
  consumer.join();
  EXPECT_EQ(got.load(), 7);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(3));     // rejected after close
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop().value_or(-1), 1);  // queued items still drain
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
  EXPECT_FALSE(queue.Pop().has_value());   // drained: end of stream
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.Push(1));
  std::thread producer([&] { EXPECT_FALSE(full.Push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, PeakSizeTracksHighWaterMark) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.peak_size(), 0);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.TryPush(3);
  queue.Pop();
  queue.Pop();
  queue.TryPush(4);
  EXPECT_EQ(queue.peak_size(), 3);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEveryItemOnce) {
  BoundedQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;
        ++seen[static_cast<size_t>(*item)];
      }
    });
  }
  for (auto& t : threads) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// Close while the queue is full and several producers are blocked in Push:
// every producer must wake with `false`, nothing they carried may be
// enqueued, and the items admitted before the close must still drain in
// FIFO order.
TEST(BoundedQueueTest, CloseWhileFullReleasesEveryBlockedProducer) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(0));
  ASSERT_TRUE(queue.Push(1));  // full from here on

  constexpr int kProducers = 6;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (!queue.Push(100 + p)) ++rejected;
    });
  }
  // Give every producer time to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(queue.size(), 2);
  queue.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);

  // Drain semantics: the two pre-close items, then end-of-stream.
  EXPECT_EQ(queue.Pop().value_or(-1), 0);
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  EXPECT_FALSE(queue.Pop().has_value());
  // A late producer after the drain still gets a clean rejection.
  EXPECT_FALSE(queue.Push(7));
  EXPECT_FALSE(queue.TryPush(7));
}

// Concurrent TryPush against blocking Pop consumers with a mid-stream
// close: exactly the successfully admitted items are delivered, each once,
// and every consumer unblocks after the drain.
TEST(BoundedQueueTest, ConcurrentTryPushPopDrainDeliversAdmittedExactly) {
  BoundedQueue<int> queue(4);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kAttemptsPerProducer = 400;

  std::atomic<int> admitted{0};
  std::atomic<std::int64_t> admitted_sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kAttemptsPerProducer; ++i) {
        const int value = p * kAttemptsPerProducer + i;
        if (queue.TryPush(value)) {
          ++admitted;
          admitted_sum += value;
        }
        // No retry: rejected items are shed, exactly like TryScoreBatch.
      }
    });
  }
  std::atomic<int> delivered{0};
  std::atomic<std::int64_t> delivered_sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;  // closed and drained
        ++delivered;
        delivered_sum += *item;
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(delivered.load(), admitted.load());
  EXPECT_EQ(delivered_sum.load(), admitted_sum.load());
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(queue.size(), 0);
  EXPECT_FALSE(queue.TryPop().has_value());
}

// TryPush racing Close: a TryPush either lands (and its item drains) or
// reports false — never a silent drop of an accepted item.
TEST(BoundedQueueTest, TryPushDuringCloseIsAllOrNothing) {
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 64; ++i) {
        if (queue.TryPush(i)) ++accepted;
      }
    });
    std::thread closer([&] { queue.Close(); });
    producer.join();
    closer.join();
    int drained = 0;
    while (queue.Pop().has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load()) << "round " << round;
  }
}

TEST(BoundedQueueTest, CloseAndDrainOnEmptyQueueReturnsImmediately) {
  BoundedQueue<int> queue(4);
  queue.CloseAndDrain();  // nothing queued: must not block
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(1));
  EXPECT_FALSE(queue.Pop().has_value());
}

// The graceful-shutdown guarantee the durable ingestion path relies on:
// CloseAndDrain returns only after a consumer has taken every queued item.
TEST(BoundedQueueTest, CloseAndDrainBlocksUntilConsumersEmptyTheQueue) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.TryPush(i));

  std::atomic<bool> drain_returned{false};
  std::atomic<int> popped{0};
  std::thread drainer([&] {
    queue.CloseAndDrain();
    drain_returned = true;
  });
  std::thread consumer([&] {
    while (queue.Pop().has_value()) ++popped;
  });
  drainer.join();
  // At the instant CloseAndDrain returned, the queue held nothing.
  EXPECT_TRUE(drain_returned.load());
  EXPECT_EQ(queue.size(), 0);
  consumer.join();
  EXPECT_EQ(popped.load(), 10);
}

// No accepted event is dropped across shutdown: every Push/TryPush that
// returned true before CloseAndDrain is delivered to a consumer.
TEST(BoundedQueueTest, CloseAndDrainLosesNoAcceptedItem) {
  for (int round = 0; round < 10; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> accepted{0};
    std::atomic<std::int64_t> accepted_sum{0};
    std::atomic<int> delivered{0};
    std::atomic<std::int64_t> delivered_sum{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 50; ++i) {
          const int value = p * 50 + i;
          if (queue.Push(value)) {
            ++accepted;
            accepted_sum += value;
          }
        }
      });
    }
    std::thread consumer([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;
        ++delivered;
        delivered_sum += *item;
      }
    });
    // Close mid-stream: some pushes land, some are rejected — but nothing
    // accepted may vanish.
    queue.CloseAndDrain();
    for (auto& t : producers) t.join();
    consumer.join();

    EXPECT_EQ(delivered.load(), accepted.load()) << "round " << round;
    EXPECT_EQ(delivered_sum.load(), accepted_sum.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0) << "round " << round;
  }
}

TEST(BoundedQueueTest, ConcurrentCloseAndDrainCallsAllUnblock) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));

  std::vector<std::thread> drainers;
  for (int t = 0; t < 3; ++t) {
    drainers.emplace_back([&] { queue.CloseAndDrain(); });
  }
  std::thread consumer([&] {
    while (queue.Pop().has_value()) {
    }
  });
  for (auto& t : drainers) t.join();
  EXPECT_EQ(queue.size(), 0);
  consumer.join();
}

}  // namespace
}  // namespace rpc
