#include "common/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_EQ(queue.size(), 5);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  EXPECT_EQ(queue.size(), 2);
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_TRUE(queue.TryPush(3));  // space again
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<std::string> queue(2);
  EXPECT_FALSE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.TryPush("x"));
  const auto item = queue.TryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, "x");
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] { got = queue.Pop().value_or(-2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got.load(), -1);  // still waiting
  ASSERT_TRUE(queue.Push(7));
  consumer.join();
  EXPECT_EQ(got.load(), 7);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(3));     // rejected after close
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop().value_or(-1), 1);  // queued items still drain
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
  EXPECT_FALSE(queue.Pop().has_value());   // drained: end of stream
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.Push(1));
  std::thread producer([&] { EXPECT_FALSE(full.Push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, PeakSizeTracksHighWaterMark) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.peak_size(), 0);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.TryPush(3);
  queue.Pop();
  queue.Pop();
  queue.TryPush(4);
  EXPECT_EQ(queue.peak_size(), 3);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEveryItemOnce) {
  BoundedQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;
        ++seen[static_cast<size_t>(*item)];
      }
    });
  }
  for (auto& t : threads) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// Close while the queue is full and several producers are blocked in Push:
// every producer must wake with `false`, nothing they carried may be
// enqueued, and the items admitted before the close must still drain in
// FIFO order.
TEST(BoundedQueueTest, CloseWhileFullReleasesEveryBlockedProducer) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(0));
  ASSERT_TRUE(queue.Push(1));  // full from here on

  constexpr int kProducers = 6;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (!queue.Push(100 + p)) ++rejected;
    });
  }
  // Give every producer time to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(queue.size(), 2);
  queue.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);

  // Drain semantics: the two pre-close items, then end-of-stream.
  EXPECT_EQ(queue.Pop().value_or(-1), 0);
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  EXPECT_FALSE(queue.Pop().has_value());
  // A late producer after the drain still gets a clean rejection.
  EXPECT_FALSE(queue.Push(7));
  EXPECT_FALSE(queue.TryPush(7));
}

// Concurrent TryPush against blocking Pop consumers with a mid-stream
// close: exactly the successfully admitted items are delivered, each once,
// and every consumer unblocks after the drain.
TEST(BoundedQueueTest, ConcurrentTryPushPopDrainDeliversAdmittedExactly) {
  BoundedQueue<int> queue(4);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kAttemptsPerProducer = 400;

  std::atomic<int> admitted{0};
  std::atomic<std::int64_t> admitted_sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kAttemptsPerProducer; ++i) {
        const int value = p * kAttemptsPerProducer + i;
        if (queue.TryPush(value)) {
          ++admitted;
          admitted_sum += value;
        }
        // No retry: rejected items are shed, exactly like TryScoreBatch.
      }
    });
  }
  std::atomic<int> delivered{0};
  std::atomic<std::int64_t> delivered_sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;  // closed and drained
        ++delivered;
        delivered_sum += *item;
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(delivered.load(), admitted.load());
  EXPECT_EQ(delivered_sum.load(), admitted_sum.load());
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(queue.size(), 0);
  EXPECT_FALSE(queue.TryPop().has_value());
}

// TryPush racing Close: a TryPush either lands (and its item drains) or
// reports false — never a silent drop of an accepted item.
TEST(BoundedQueueTest, TryPushDuringCloseIsAllOrNothing) {
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 64; ++i) {
        if (queue.TryPush(i)) ++accepted;
      }
    });
    std::thread closer([&] { queue.Close(); });
    producer.join();
    closer.join();
    int drained = 0;
    while (queue.Pop().has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load()) << "round " << round;
  }
}

TEST(BoundedQueueTest, CloseAndDrainOnEmptyQueueReturnsImmediately) {
  BoundedQueue<int> queue(4);
  queue.CloseAndDrain();  // nothing queued: must not block
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(1));
  EXPECT_FALSE(queue.Pop().has_value());
}

// The graceful-shutdown guarantee the durable ingestion path relies on:
// CloseAndDrain returns only after a consumer has taken every queued item.
TEST(BoundedQueueTest, CloseAndDrainBlocksUntilConsumersEmptyTheQueue) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.TryPush(i));

  std::atomic<bool> drain_returned{false};
  std::atomic<int> popped{0};
  std::thread drainer([&] {
    queue.CloseAndDrain();
    drain_returned = true;
  });
  std::thread consumer([&] {
    while (queue.Pop().has_value()) ++popped;
  });
  drainer.join();
  // At the instant CloseAndDrain returned, the queue held nothing.
  EXPECT_TRUE(drain_returned.load());
  EXPECT_EQ(queue.size(), 0);
  consumer.join();
  EXPECT_EQ(popped.load(), 10);
}

// No accepted event is dropped across shutdown: every Push/TryPush that
// returned true before CloseAndDrain is delivered to a consumer.
TEST(BoundedQueueTest, CloseAndDrainLosesNoAcceptedItem) {
  for (int round = 0; round < 10; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> accepted{0};
    std::atomic<std::int64_t> accepted_sum{0};
    std::atomic<int> delivered{0};
    std::atomic<std::int64_t> delivered_sum{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 50; ++i) {
          const int value = p * 50 + i;
          if (queue.Push(value)) {
            ++accepted;
            accepted_sum += value;
          }
        }
      });
    }
    std::thread consumer([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;
        ++delivered;
        delivered_sum += *item;
      }
    });
    // Close mid-stream: some pushes land, some are rejected — but nothing
    // accepted may vanish.
    queue.CloseAndDrain();
    for (auto& t : producers) t.join();
    consumer.join();

    EXPECT_EQ(delivered.load(), accepted.load()) << "round " << round;
    EXPECT_EQ(delivered_sum.load(), accepted_sum.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0) << "round " << round;
  }
}

TEST(BoundedQueueTest, ConcurrentCloseAndDrainCallsAllUnblock) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));

  std::vector<std::thread> drainers;
  for (int t = 0; t < 3; ++t) {
    drainers.emplace_back([&] { queue.CloseAndDrain(); });
  }
  std::thread consumer([&] {
    while (queue.Pop().has_value()) {
    }
  });
  for (auto& t : drainers) t.join();
  EXPECT_EQ(queue.size(), 0);
  consumer.join();
}

// --------------------------------------------------------------------------
// PriorityBoundedQueue: the QoS admission queue of the serving tier.

TEST(PriorityBoundedQueueTest, PopServesLowerLanesFirstFifoWithinLane) {
  PriorityBoundedQueue<int> queue(8, 3);
  EXPECT_EQ(queue.TryPush(20, 2), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(10, 1), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(0, 0), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(1, 0), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(11, 1), QueuePushResult::kOk);
  EXPECT_EQ(queue.size(), 5);
  // Lane 0 first (FIFO inside), then lane 1, then lane 2 — regardless of
  // arrival order across lanes.
  for (const int expected : {0, 1, 10, 11, 20}) {
    const auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(PriorityBoundedQueueTest, LaneLimitsShedDeepLanesFirst) {
  PriorityBoundedQueue<int> queue(4, 3);
  queue.SetLaneLimit(1, 3);
  queue.SetLaneLimit(2, 2);
  // Fill to occupancy 2 from the deepest lane: lane 2 is now at its
  // watermark while the shallower lanes still admit.
  EXPECT_EQ(queue.TryPush(0, 2), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(1, 2), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(2, 2), QueuePushResult::kFull);
  EXPECT_EQ(queue.TryPush(3, 1), QueuePushResult::kOk);  // occupancy 3
  EXPECT_EQ(queue.TryPush(4, 1), QueuePushResult::kFull);
  EXPECT_EQ(queue.TryPush(5, 0), QueuePushResult::kOk);  // occupancy 4
  EXPECT_EQ(queue.TryPush(6, 0), QueuePushResult::kFull);  // truly full
  EXPECT_EQ(queue.size(), 4);
  // Draining one slot re-admits lane 0 but lanes 1/2 stay over watermark.
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_EQ(queue.TryPush(7, 2), QueuePushResult::kFull);
  EXPECT_EQ(queue.TryPush(8, 0), QueuePushResult::kOk);
}

TEST(PriorityBoundedQueueTest, SetLaneLimitClampsIntoCapacity) {
  PriorityBoundedQueue<int> queue(4, 2);
  queue.SetLaneLimit(1, 0);  // clamped up to 1: a lane can never be mute
  EXPECT_EQ(queue.lane_limit(1), 1);
  queue.SetLaneLimit(1, 99);  // clamped down to capacity
  EXPECT_EQ(queue.lane_limit(1), 4);
}

TEST(PriorityBoundedQueueTest, PushUntilTimesOutOnAFullQueue) {
  PriorityBoundedQueue<int> queue(1, 2);
  ASSERT_EQ(queue.TryPush(0, 0), QueuePushResult::kOk);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PushUntil(1, 0,
                            start + std::chrono::milliseconds(20)),
            QueuePushResult::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(20));
  // Room frees up: the same push is admitted.
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_EQ(queue.Push(1, 0), QueuePushResult::kOk);
}

TEST(PriorityBoundedQueueTest, BlockedPushAdmittedWhenSpaceFrees) {
  PriorityBoundedQueue<int> queue(1, 2);
  ASSERT_EQ(queue.TryPush(0, 0), QueuePushResult::kOk);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(1, 1), QueuePushResult::kOk);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_TRUE(queue.Pop().has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 1);
}

TEST(PriorityBoundedQueueTest, CloseDrainsQueuedItemsThenNullopt) {
  PriorityBoundedQueue<int> queue(4, 2);
  ASSERT_EQ(queue.TryPush(1, 1), QueuePushResult::kOk);
  ASSERT_EQ(queue.TryPush(0, 0), QueuePushResult::kOk);
  queue.Close();
  EXPECT_EQ(queue.TryPush(2, 0), QueuePushResult::kClosed);
  EXPECT_EQ(queue.Push(3, 0), QueuePushResult::kClosed);
  EXPECT_EQ(queue.PushUntil(4, 0, std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(5)),
            QueuePushResult::kClosed);
  EXPECT_EQ(queue.Pop(), std::optional<int>(0));
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(PriorityBoundedQueueTest, CloseUnblocksWaitingProducersAndConsumers) {
  PriorityBoundedQueue<int> queue(1, 2);
  ASSERT_EQ(queue.TryPush(0, 0), QueuePushResult::kOk);
  std::thread producer([&] {
    // Blocks on the full queue until Close — nobody pops before then, so
    // the push can only fail with kClosed.
    EXPECT_EQ(queue.Push(1, 0), QueuePushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  std::thread consumer([&] {
    EXPECT_TRUE(queue.Pop().has_value());   // the queued item drains
    EXPECT_FALSE(queue.Pop().has_value());  // then closed-and-drained
  });
  consumer.join();
}

TEST(PriorityBoundedQueueTest, PeakSizeTracksHighWaterMark) {
  PriorityBoundedQueue<int> queue(8, 2);
  EXPECT_EQ(queue.peak_size(), 0);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(queue.TryPush(i, 1), QueuePushResult::kOk);
  while (queue.TryPop().has_value()) {
  }
  EXPECT_EQ(queue.size(), 0);
  EXPECT_EQ(queue.peak_size(), 5);  // survives the drain
}

TEST(PriorityBoundedQueueTest, ConcurrentMixedLanePushPopLosesNothing) {
  PriorityBoundedQueue<int> queue(8, 3);
  constexpr int kPerLane = 200;
  std::atomic<std::int64_t> popped_sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> producers;
  for (int lane = 0; lane < 3; ++lane) {
    producers.emplace_back([&, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        ASSERT_EQ(queue.Push(lane * kPerLane + i, lane), QueuePushResult::kOk);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = queue.Pop();
        if (!item.has_value()) return;
        ++popped;
        popped_sum += *item;
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), 3 * kPerLane);
  const std::int64_t n = 3 * kPerLane;
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace rpc
