#include "common/stringutil.h"

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto fields = Split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto fields = Split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, SingleField) {
  const auto fields = Split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("  42 ", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("--3", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(FormatDoubleTest, UsesSignificantDigits) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1234567.0, 3), "1.23e+06");
}

}  // namespace
}  // namespace rpc
