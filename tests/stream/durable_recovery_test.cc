// The durable tier's acceptance criterion: kill the process at any of the
// fault-injection points and Recover() must rebuild the exact pre-crash
// state — same row ids, bit-identical normalizer statistics and scores,
// the same served model version — losing no acknowledged event. After
// resubmitting whatever was never acknowledged, the recovered ranker must
// be indistinguishable, bit for bit, from a replica that never crashed.
//
// All rankers here run fully serial (num_threads = 1: every pool task is
// inline), so a run is a deterministic function of its op sequence and the
// crashed/uncrashed comparison is exact rather than statistical.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "durable/fault_injector.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

namespace rpc::stream {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Matrix RawFixture(const Orientation& alpha, int n, uint64_t seed) {
  return data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

/// One deterministic mutation op, shared verbatim by the crashing ranker
/// and the never-crashed reference.
struct Op {
  enum class Kind { kAppend, kRetire };
  Kind kind = Kind::kAppend;
  Vector row;               // kAppend
  std::int64_t row_id = 0;  // kRetire, or the id an append must receive
};

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_recovery_") + tag + "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

void CopyDir(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive, ec);
  ASSERT_FALSE(ec) << ec.message();
}

StreamingRankerOptions SerialOptions() {
  StreamingRankerOptions options;
  options.num_threads = 1;  // fully inline: deterministic op sequencing
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 42;
  return options;
}

void ExpectSnapshotsBitIdentical(const StreamingRanker::Snapshot& got,
                                 const StreamingRanker::Snapshot& want,
                                 const char* where) {
  EXPECT_EQ(got.version, want.version) << where;
  EXPECT_EQ(got.model.Serialize(), want.model.Serialize()) << where;
  EXPECT_EQ(got.row_ids, want.row_ids) << where;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << where;
  for (int i = 0; i < got.scores.size(); ++i) {
    EXPECT_TRUE(BitEqual(got.scores[i], want.scores[i]))
        << where << ": score " << i;
  }
  ASSERT_EQ(got.live_mins.size(), want.live_mins.size()) << where;
  for (int j = 0; j < got.live_mins.size(); ++j) {
    EXPECT_TRUE(BitEqual(got.live_mins[j], want.live_mins[j]))
        << where << ": min " << j;
    EXPECT_TRUE(BitEqual(got.live_maxs[j], want.live_maxs[j]))
        << where << ": max " << j;
  }
}

void ExpectServedScoresMatch(serve::RankingService* got_service,
                             serve::RankingService* want_service,
                             const std::string& dataset, const Matrix& probe,
                             const char* where) {
  const auto got_version = got_service->DatasetVersion(dataset);
  const auto want_version = want_service->DatasetVersion(dataset);
  ASSERT_TRUE(got_version.ok() && want_version.ok()) << where;
  EXPECT_EQ(*got_version, *want_version) << where;
  const auto got = got_service->ScoreBatch(dataset, probe);
  const auto want = want_service->ScoreBatch(dataset, probe);
  ASSERT_TRUE(got.ok()) << where << ": " << got.status().ToString();
  ASSERT_TRUE(want.ok()) << where;
  for (int i = 0; i < probe.rows(); ++i) {
    EXPECT_TRUE(BitEqual(got->scores[i], want->scores[i]))
        << where << ": probe row " << i;
  }
}

// The full kill-and-recover property, parameterised over the fault matrix.
class DurableRecoveryTest
    : public ::testing::TestWithParam<durable::FailPoint> {};

TEST_P(DurableRecoveryTest, KillRecoverResubmitMatchesUncrashedReplica) {
  const durable::FailPoint fail_point = GetParam();
  const bool log_fault =
      fail_point == durable::FailPoint::kTornTailWrite ||
      fail_point == durable::FailPoint::kChecksumFlip;

  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const int n0 = 40;
  const Matrix raw = RawFixture(alpha, n0, 7);
  const Matrix probe = RawFixture(alpha, 25, 8);

  // Bound-touching retirement: the row holding attribute 0's minimum, so
  // the rescan path (and its kBounds integrity record) is exercised.
  std::int64_t min_row = 0;
  for (int i = 1; i < n0; ++i) {
    if (raw(i, 0) < raw(static_cast<int>(min_row), 0)) min_row = i;
  }

  // Acknowledged prefix: appends, an interior retire, the boundary retire,
  // and a retire-miss — every event shape the log records. With milestone
  // snapshots every 5 events, the boundary retire (event 11) and the miss
  // (event 12) land AFTER the last prefix snapshot (event 10), so recovery
  // replays them from the log — including the kBounds integrity record the
  // boundary rescan wrote.
  std::vector<Op> prefix;
  for (int i = 0; i < 9; ++i) {
    Vector row = raw.Row(i % n0);
    for (int j = 0; j < row.size(); ++j) row[j] += 0.01 * (i + 1);
    prefix.push_back({Op::Kind::kAppend, std::move(row),
                      static_cast<std::int64_t>(n0 + i)});
  }
  prefix.push_back({Op::Kind::kRetire, Vector(), 5});
  prefix.push_back({Op::Kind::kRetire, Vector(), min_row});
  prefix.push_back({Op::Kind::kRetire, Vector(), 999999});  // a miss

  // Unacknowledged suffix: appended after the failpoint arms, never
  // Flush-acknowledged. One row stretches every upper bound. For log
  // faults the first suffix sync is the crash, and the suffix stays short
  // of the next snapshot cadence point so nothing durable runs after the
  // "kill"; for snapshot faults the crash IS that cadence point (event
  // 15), so the suffix must reach it.
  const int suffix_len = log_fault ? 2 : 3;
  std::vector<Op> suffix;
  for (int i = 0; i < suffix_len; ++i) {
    Vector row = raw.Row((3 * i) % n0);
    for (int j = 0; j < row.size(); ++j) {
      row[j] += i == 1 ? 1.5 : -0.02 * (i + 1);
    }
    suffix.push_back({Op::Kind::kAppend, std::move(row),
                      static_cast<std::int64_t>(n0 + 9 + i)});
  }

  const std::string live_dir = MakeTempDir("live");
  const std::string crash_dir = MakeTempDir("crash");
  RemoveDir(crash_dir);  // CopyDir recreates it as an exact image

  auto injector = std::make_shared<durable::FaultInjector>();
  StreamingRankerOptions durable_options = SerialOptions();
  durable_options.durability.dir = live_dir;
  durable_options.durability.segment_bytes = 1 << 12;
  durable_options.durability.snapshot_every_events = 5;
  durable_options.durability.injector = injector;

  serve::RankingService crashed_service;
  serve::RankingService reference_service;
  StreamingRanker reference(&reference_service, "live", SerialOptions());
  ASSERT_TRUE(reference.Start(raw, alpha).ok());

  {
    StreamingRanker crashed(&crashed_service, "live", durable_options);
    ASSERT_TRUE(crashed.Start(raw, alpha).ok());

    const auto drive = [&](StreamingRanker* ranker,
                           const std::vector<Op>& ops) {
      for (const Op& op : ops) {
        if (op.kind == Op::Kind::kAppend) {
          const auto id = ranker->Append(op.row);
          ASSERT_TRUE(id.ok());
          EXPECT_EQ(*id, op.row_id);
        } else {
          ASSERT_TRUE(ranker->Retire(op.row_id).ok());
        }
      }
    };
    drive(&crashed, prefix);
    drive(&reference, prefix);
    ASSERT_TRUE(crashed.ForceRefresh().ok());  // a logged publish
    ASSERT_TRUE(reference.ForceRefresh().ok());
    ASSERT_TRUE(crashed.Flush().ok());  // the acknowledgment boundary
    ASSERT_TRUE(reference.Flush().ok());

    injector->Arm(fail_point, 1);
    drive(&crashed, suffix);
    drive(&reference, suffix);
    EXPECT_TRUE(injector->crashed())
        << durable::FailPointName(fail_point) << " never fired";
    EXPECT_GT(crashed.stats().durable_errors, 0);

    // kill -9: freeze the on-disk state as of this instant. The crashed
    // ranker's destructor still runs (this is one process), but against
    // the original directory — the image is the crash truth.
    CopyDir(live_dir, crash_dir);
  }

  StreamingRankerOptions recover_options = SerialOptions();
  recover_options.durability.dir = crash_dir;
  recover_options.durability.segment_bytes = 1 << 12;
  recover_options.durability.snapshot_every_events = 5;

  serve::RankingService recovered_service;
  StreamingRanker recovered(&recovered_service, "live", recover_options);
  ASSERT_TRUE(recovered.Recover().ok());

  const StreamingRanker::RecoveryInfo info = recovered.recovery_info();
  EXPECT_TRUE(info.recovered);
  EXPECT_FALSE(info.snapshot_path.empty());
  if (log_fault) {
    // The suffix record died mid-write (or rotted): its torn remains must
    // have been detected and cut.
    EXPECT_TRUE(info.tail_truncated);
  }
  // The served version survived the crash exactly: version 2 was published
  // by the acknowledged ForceRefresh.
  EXPECT_EQ(info.recovered_version, 2u);
  const auto served_version = recovered_service.DatasetVersion("live");
  ASSERT_TRUE(served_version.ok());
  EXPECT_EQ(*served_version, 2u);

  // No acknowledged event may be missing: every prefix append is present,
  // both retires absent, exactly as acknowledged.
  {
    const StreamingRanker::Snapshot snap = recovered.snapshot();
    const std::set<std::int64_t> ids(snap.row_ids.begin(),
                                     snap.row_ids.end());
    for (const Op& op : prefix) {
      if (op.kind == Op::Kind::kAppend) {
        EXPECT_TRUE(ids.count(op.row_id)) << "lost acked append "
                                          << op.row_id;
      } else if (op.row_id < n0) {
        EXPECT_FALSE(ids.count(op.row_id))
            << "acked retire " << op.row_id << " resurrected";
      }
    }
  }

  // Resubmit whatever the crash swallowed (the client's contract for
  // never-acknowledged events). Row ids must come back out identical.
  {
    const StreamingRanker::Snapshot snap = recovered.snapshot();
    const std::set<std::int64_t> ids(snap.row_ids.begin(),
                                     snap.row_ids.end());
    for (const Op& op : suffix) {
      if (ids.count(op.row_id)) continue;  // survived in the log
      const auto id = recovered.Append(op.row);
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, op.row_id);
    }
  }
  ASSERT_TRUE(recovered.Flush().ok());
  ASSERT_TRUE(reference.Flush().ok());

  // The recovered ranker is now bit-indistinguishable from the replica
  // that never crashed: state, served scores, and the next refresh.
  ExpectSnapshotsBitIdentical(recovered.snapshot(), reference.snapshot(),
                              "post-recovery");
  ExpectServedScoresMatch(&recovered_service, &reference_service, "live",
                          probe, "post-recovery");
  const StreamStats got = recovered.stats();
  const StreamStats want = reference.stats();
  EXPECT_EQ(got.appended, want.appended);
  EXPECT_EQ(got.retired, want.retired);
  EXPECT_EQ(got.retire_misses, want.retire_misses);
  EXPECT_EQ(got.events_processed, want.events_processed);
  EXPECT_EQ(got.refreshes, want.refreshes);
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.version, want.version);

  ASSERT_TRUE(recovered.ForceRefresh().ok());
  ASSERT_TRUE(reference.ForceRefresh().ok());
  ExpectSnapshotsBitIdentical(recovered.snapshot(), reference.snapshot(),
                              "post-recovery refresh");
  ExpectServedScoresMatch(&recovered_service, &reference_service, "live",
                          probe, "post-recovery refresh");

  recovered.Stop();
  reference.Stop();
  RemoveDir(live_dir);
  RemoveDir(crash_dir);
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, DurableRecoveryTest,
    ::testing::Values(durable::FailPoint::kTornTailWrite,
                      durable::FailPoint::kChecksumFlip,
                      durable::FailPoint::kPartialSnapshot,
                      durable::FailPoint::kCrashBetweenFsyncAndRename),
    [](const ::testing::TestParamInfo<durable::FailPoint>& info) {
      return durable::FailPointName(info.param);
    });

TEST(DurableRecoveryLifecycleTest, CleanStopThenRecoverReplaysNothing) {
  const Orientation alpha = *Orientation::FromSigns({+1, -1});
  const Matrix raw = RawFixture(alpha, 30, 11);
  const std::string dir = MakeTempDir("clean");

  StreamingRankerOptions options = SerialOptions();
  options.durability.dir = dir;
  options.durability.snapshot_every_events = 0;  // only Start/Stop snapshots

  StreamingRanker::Snapshot final_state;
  {
    StreamingRanker ranker(nullptr, "live", options);
    ASSERT_TRUE(ranker.Start(raw, alpha).ok());
    for (int i = 0; i < 7; ++i) {
      Vector row = raw.Row(i);
      for (int j = 0; j < row.size(); ++j) row[j] += 0.05;
      ASSERT_TRUE(ranker.Append(row).ok());
    }
    ASSERT_TRUE(ranker.Retire(2).ok());
    ASSERT_TRUE(ranker.ForceRefresh().ok());
    ranker.Stop();  // final sync + clean-shutdown snapshot
    final_state = ranker.snapshot();
  }

  StreamingRanker recovered(nullptr, "live", options);
  ASSERT_TRUE(recovered.Recover().ok());
  const StreamingRanker::RecoveryInfo info = recovered.recovery_info();
  EXPECT_TRUE(info.recovered);
  // The shutdown snapshot covered every record: bounded replay at its best.
  EXPECT_EQ(info.replayed_records, 0u);
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_EQ(info.snapshot_fallbacks, 0);
  ExpectSnapshotsBitIdentical(recovered.snapshot(), final_state,
                              "clean restart");

  // The recovered ranker is fully live: it ingests and refreshes.
  ASSERT_TRUE(recovered.Append(raw.Row(3)).ok());
  ASSERT_TRUE(recovered.ForceRefresh().ok());
  EXPECT_EQ(recovered.snapshot().version, final_state.version + 1);
  recovered.Stop();
  RemoveDir(dir);
}

TEST(DurableRecoveryLifecycleTest, RecoverGuardsItsPreconditions) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix raw = RawFixture(alpha, 20, 13);

  {
    // No durability configured.
    StreamingRanker ranker(nullptr, "live", SerialOptions());
    EXPECT_FALSE(ranker.Recover().ok());
  }
  {
    // An empty directory holds nothing to recover from.
    const std::string dir = MakeTempDir("empty");
    StreamingRankerOptions options = SerialOptions();
    options.durability.dir = dir;
    StreamingRanker ranker(nullptr, "live", options);
    EXPECT_FALSE(ranker.Recover().ok());
    RemoveDir(dir);
  }
  {
    // Recover after Start is a double-start.
    const std::string dir = MakeTempDir("started");
    StreamingRankerOptions options = SerialOptions();
    options.durability.dir = dir;
    StreamingRanker ranker(nullptr, "live", options);
    ASSERT_TRUE(ranker.Start(raw, alpha).ok());
    EXPECT_FALSE(ranker.Recover().ok());
    ranker.Stop();
    RemoveDir(dir);
  }
}

}  // namespace
}  // namespace rpc::stream
