// data::OnlineNormalizer: streaming min-max / Welford statistics must match
// the batch computations on the same rows, removal must be an exact inverse
// of observation (with the stale-bounds protocol for boundary rows), and
// BoundsDrift must quantify renormalisation drift the way the streaming
// tier's refit policy relies on.
#include "data/online_normalizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::data {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-5.0, 5.0);
  }
  return rows;
}

TEST(OnlineNormalizerTest, MatchesBatchNormalizerBounds) {
  const Matrix rows = RandomRows(200, 4, 11);
  OnlineNormalizer online(4);
  online.Observe(rows);
  EXPECT_EQ(online.count(), 200);

  const auto batch = Normalizer::Fit(rows);
  ASSERT_TRUE(batch.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(online.mins()[j], batch->mins()[j]) << "attribute " << j;
    EXPECT_EQ(online.maxs()[j], batch->maxs()[j]) << "attribute " << j;
  }

  const auto frozen = online.ToNormalizer();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  // Transforming through the frozen normalizer is the batch transform.
  const Vector x = rows.Row(17);
  const Vector a = frozen->Transform(x);
  const Vector b = batch->Transform(x);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(a[j], b[j]);
}

TEST(OnlineNormalizerTest, WelfordMatchesDirectMeanAndVariance) {
  const int n = 300;
  const int d = 3;
  const Matrix rows = RandomRows(n, d, 23);
  OnlineNormalizer online(d);
  online.Observe(rows);

  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += rows(i, j);
    mean /= n;
    double m2 = 0.0;
    for (int i = 0; i < n; ++i) {
      m2 += (rows(i, j) - mean) * (rows(i, j) - mean);
    }
    EXPECT_NEAR(online.Means()[j], mean, 1e-10);
    EXPECT_NEAR(online.StdDevs()[j], std::sqrt(m2 / n), 1e-10);
  }
}

TEST(OnlineNormalizerTest, RemoveIsExactInverseOfObserve) {
  const Matrix rows = RandomRows(50, 2, 31);
  OnlineNormalizer online(2);
  online.Observe(rows);
  const Vector mean_before = online.Means();
  const Vector stddev_before = online.StdDevs();

  // Observe then remove an extra interior row: every statistic must return
  // to its previous value (mean/M2 exactly up to round-off, bounds
  // untouched because the row is interior).
  Vector extra(2);
  extra[0] = 0.5 * (online.mins()[0] + online.maxs()[0]);
  extra[1] = 0.5 * (online.mins()[1] + online.maxs()[1]);
  online.Observe(extra);
  EXPECT_EQ(online.count(), 51);
  EXPECT_FALSE(online.Remove(extra.data().data()));
  EXPECT_FALSE(online.bounds_stale());
  EXPECT_EQ(online.count(), 50);
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(online.Means()[j], mean_before[j], 1e-9);
    EXPECT_NEAR(online.StdDevs()[j], stddev_before[j], 1e-9);
  }
}

TEST(OnlineNormalizerTest, BoundaryRemovalFlagsStaleBoundsUntilRebuild) {
  Matrix rows{{0.0, 10.0}, {1.0, 11.0}, {2.0, 12.0}, {3.0, 13.0}};
  OnlineNormalizer online(2);
  online.Observe(rows);

  // Removing the row holding min of column 0 (and min of column 1).
  const double victim[2] = {0.0, 10.0};
  EXPECT_TRUE(online.Remove(victim));
  EXPECT_TRUE(online.bounds_stale());
  EXPECT_FALSE(online.ToNormalizer().ok());  // refuses stale bounds

  Matrix survivors{{1.0, 11.0}, {2.0, 12.0}, {3.0, 13.0}};
  online.RebuildBounds(survivors);
  EXPECT_FALSE(online.bounds_stale());
  EXPECT_EQ(online.mins()[0], 1.0);
  EXPECT_EQ(online.maxs()[0], 3.0);
  EXPECT_EQ(online.mins()[1], 11.0);
  EXPECT_EQ(online.maxs()[1], 13.0);
  EXPECT_TRUE(online.ToNormalizer().ok());
}

TEST(OnlineNormalizerTest, BoundsDriftMeasuresRelativeExpansion) {
  Matrix rows{{0.0, 0.0}, {1.0, 2.0}};
  OnlineNormalizer online(2);
  online.Observe(rows);
  const Vector ref_mins = online.mins();
  const Vector ref_maxs = online.maxs();
  EXPECT_EQ(online.BoundsDrift(ref_mins, ref_maxs), 0.0);

  // Stretch column 0's max by 10% of its reference range.
  Vector stretch{1.1, 1.0};
  online.Observe(stretch);
  EXPECT_NEAR(online.BoundsDrift(ref_mins, ref_maxs), 0.1, 1e-12);

  // Stretch column 1's min by 50% of its range: drift is the max over
  // attributes.
  Vector low{0.5, -1.0};
  online.Observe(low);
  EXPECT_NEAR(online.BoundsDrift(ref_mins, ref_maxs), 0.5, 1e-12);
}

TEST(OnlineNormalizerTest, ToNormalizerRejectsEmptyAndConstant) {
  OnlineNormalizer online(2);
  EXPECT_FALSE(online.ToNormalizer().ok());  // no rows

  Vector row{1.0, 2.0};
  online.Observe(row);
  online.Observe(row);
  EXPECT_FALSE(online.ToNormalizer().ok());  // constant columns

  Vector other{2.0, 3.0};
  online.Observe(other);
  EXPECT_TRUE(online.ToNormalizer().ok());
}

TEST(OnlineNormalizerTest, RemovingLastRowResetsCleanly) {
  OnlineNormalizer online(1);
  Vector row{4.0};
  online.Observe(row);
  online.Remove(row.data().data());
  EXPECT_EQ(online.count(), 0);
  EXPECT_FALSE(online.bounds_stale());
  // Observing again restarts from scratch.
  Vector fresh{7.0};
  online.Observe(fresh);
  EXPECT_EQ(online.mins()[0], 7.0);
  EXPECT_EQ(online.maxs()[0], 7.0);
  EXPECT_EQ(online.Means()[0], 7.0);
}

}  // namespace
}  // namespace rpc::data
