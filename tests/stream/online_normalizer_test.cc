// data::OnlineNormalizer: streaming min-max / Welford statistics must match
// the batch computations on the same rows, removal must be an exact inverse
// of observation (with the stale-bounds protocol for boundary rows), and
// BoundsDrift must quantify renormalisation drift the way the streaming
// tier's refit policy relies on.
#include "data/online_normalizer.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::data {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-5.0, 5.0);
  }
  return rows;
}

TEST(OnlineNormalizerTest, MatchesBatchNormalizerBounds) {
  const Matrix rows = RandomRows(200, 4, 11);
  OnlineNormalizer online(4);
  online.Observe(rows);
  EXPECT_EQ(online.count(), 200);

  const auto batch = Normalizer::Fit(rows);
  ASSERT_TRUE(batch.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(online.mins()[j], batch->mins()[j]) << "attribute " << j;
    EXPECT_EQ(online.maxs()[j], batch->maxs()[j]) << "attribute " << j;
  }

  const auto frozen = online.ToNormalizer();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  // Transforming through the frozen normalizer is the batch transform.
  const Vector x = rows.Row(17);
  const Vector a = frozen->Transform(x);
  const Vector b = batch->Transform(x);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(a[j], b[j]);
}

TEST(OnlineNormalizerTest, WelfordMatchesDirectMeanAndVariance) {
  const int n = 300;
  const int d = 3;
  const Matrix rows = RandomRows(n, d, 23);
  OnlineNormalizer online(d);
  online.Observe(rows);

  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += rows(i, j);
    mean /= n;
    double m2 = 0.0;
    for (int i = 0; i < n; ++i) {
      m2 += (rows(i, j) - mean) * (rows(i, j) - mean);
    }
    EXPECT_NEAR(online.Means()[j], mean, 1e-10);
    EXPECT_NEAR(online.StdDevs()[j], std::sqrt(m2 / n), 1e-10);
  }
}

TEST(OnlineNormalizerTest, RemoveIsExactInverseOfObserve) {
  const Matrix rows = RandomRows(50, 2, 31);
  OnlineNormalizer online(2);
  online.Observe(rows);
  const Vector mean_before = online.Means();
  const Vector stddev_before = online.StdDevs();

  // Observe then remove an extra interior row: every statistic must return
  // to its previous value (mean/M2 exactly up to round-off, bounds
  // untouched because the row is interior).
  Vector extra(2);
  extra[0] = 0.5 * (online.mins()[0] + online.maxs()[0]);
  extra[1] = 0.5 * (online.mins()[1] + online.maxs()[1]);
  online.Observe(extra);
  EXPECT_EQ(online.count(), 51);
  EXPECT_FALSE(online.Remove(extra.data().data()));
  EXPECT_FALSE(online.bounds_stale());
  EXPECT_EQ(online.count(), 50);
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(online.Means()[j], mean_before[j], 1e-9);
    EXPECT_NEAR(online.StdDevs()[j], stddev_before[j], 1e-9);
  }
}

TEST(OnlineNormalizerTest, BoundaryRemovalFlagsStaleBoundsUntilRebuild) {
  Matrix rows{{0.0, 10.0}, {1.0, 11.0}, {2.0, 12.0}, {3.0, 13.0}};
  OnlineNormalizer online(2);
  online.Observe(rows);

  // Removing the row holding min of column 0 (and min of column 1).
  const double victim[2] = {0.0, 10.0};
  EXPECT_TRUE(online.Remove(victim));
  EXPECT_TRUE(online.bounds_stale());
  EXPECT_FALSE(online.ToNormalizer().ok());  // refuses stale bounds

  Matrix survivors{{1.0, 11.0}, {2.0, 12.0}, {3.0, 13.0}};
  online.RebuildBounds(survivors);
  EXPECT_FALSE(online.bounds_stale());
  EXPECT_EQ(online.mins()[0], 1.0);
  EXPECT_EQ(online.maxs()[0], 3.0);
  EXPECT_EQ(online.mins()[1], 11.0);
  EXPECT_EQ(online.maxs()[1], 13.0);
  EXPECT_TRUE(online.ToNormalizer().ok());
}

TEST(OnlineNormalizerTest, BoundsDriftMeasuresRelativeExpansion) {
  Matrix rows{{0.0, 0.0}, {1.0, 2.0}};
  OnlineNormalizer online(2);
  online.Observe(rows);
  const Vector ref_mins = online.mins();
  const Vector ref_maxs = online.maxs();
  EXPECT_EQ(online.BoundsDrift(ref_mins, ref_maxs), 0.0);

  // Stretch column 0's max by 10% of its reference range.
  Vector stretch{1.1, 1.0};
  online.Observe(stretch);
  EXPECT_NEAR(online.BoundsDrift(ref_mins, ref_maxs), 0.1, 1e-12);

  // Stretch column 1's min by 50% of its range: drift is the max over
  // attributes.
  Vector low{0.5, -1.0};
  online.Observe(low);
  EXPECT_NEAR(online.BoundsDrift(ref_mins, ref_maxs), 0.5, 1e-12);
}

TEST(OnlineNormalizerTest, ToNormalizerRejectsEmptyAndConstant) {
  OnlineNormalizer online(2);
  EXPECT_FALSE(online.ToNormalizer().ok());  // no rows

  Vector row{1.0, 2.0};
  online.Observe(row);
  online.Observe(row);
  EXPECT_FALSE(online.ToNormalizer().ok());  // constant columns

  Vector other{2.0, 3.0};
  online.Observe(other);
  EXPECT_TRUE(online.ToNormalizer().ok());
}

TEST(OnlineNormalizerTest, RemovingLastRowResetsCleanly) {
  OnlineNormalizer online(1);
  Vector row{4.0};
  online.Observe(row);
  online.Remove(row.data().data());
  EXPECT_EQ(online.count(), 0);
  EXPECT_FALSE(online.bounds_stale());
  // Observing again restarts from scratch.
  Vector fresh{7.0};
  online.Observe(fresh);
  EXPECT_EQ(online.mins()[0], 7.0);
  EXPECT_EQ(online.maxs()[0], 7.0);
  EXPECT_EQ(online.Means()[0], 7.0);
}

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Matrix SurvivorMatrix(const Matrix& rows, const std::vector<int>& live) {
  Matrix out(static_cast<int>(live.size()), rows.cols());
  for (int i = 0; i < static_cast<int>(live.size()); ++i) {
    for (int j = 0; j < rows.cols(); ++j) out(i, j) = rows(live[i], j);
  }
  return out;
}

// Retiring the extreme row over and over is the adversarial case for the
// stale-bounds protocol: every removal touches a bound, every rescan must
// restore bounds bit-identical to a fresh accumulation over the survivors.
TEST(OnlineNormalizerTest, RepeatedBoundaryRetirementRescansToExactBounds) {
  const int d = 3;
  const Matrix rows = RandomRows(60, d, 29);
  OnlineNormalizer online(d);
  online.Observe(rows);
  std::vector<int> live;
  for (int i = 0; i < rows.rows(); ++i) live.push_back(i);

  for (int round = 0; round < 20; ++round) {
    // Retire whichever surviving row holds attribute (round % d)'s min on
    // even rounds, max on odd — always a bound-touching removal.
    const int attr = round % d;
    int victim = 0;
    for (int i = 1; i < static_cast<int>(live.size()); ++i) {
      const double x = rows(live[i], attr);
      const double best = rows(live[victim], attr);
      if (round % 2 == 0 ? x < best : x > best) victim = i;
    }
    const int row = live[victim];
    std::vector<double> flat(d);
    for (int j = 0; j < d; ++j) flat[j] = rows(row, j);
    EXPECT_TRUE(online.Remove(flat.data())) << "round " << round;
    EXPECT_TRUE(online.bounds_stale());
    live.erase(live.begin() + victim);

    const Matrix survivors = SurvivorMatrix(rows, live);
    online.RebuildBounds(survivors);
    EXPECT_FALSE(online.bounds_stale());

    OnlineNormalizer fresh(d);
    fresh.Observe(survivors);
    for (int j = 0; j < d; ++j) {
      EXPECT_TRUE(BitEqual(online.mins()[j], fresh.mins()[j]))
          << "round " << round << " min " << j;
      EXPECT_TRUE(BitEqual(online.maxs()[j], fresh.maxs()[j]))
          << "round " << round << " max " << j;
    }
  }
}

// The durable-snapshot contract: ImportState followed by the same op
// sequence is bit-identical — including the Welford M2 round-off — to the
// original that never exported. This is what makes crash replay exact.
TEST(OnlineNormalizerTest, ExportImportThenSameOpsIsBitIdentical) {
  const int d = 4;
  const Matrix history = RandomRows(50, d, 31);
  const Matrix future = RandomRows(25, d, 37);

  OnlineNormalizer original(d);
  for (int i = 0; i < history.rows(); ++i) {
    original.Observe(history.Row(i));
  }
  // Leave a removal and a stale-bounds flag in the exported state so the
  // snapshot covers the protocol mid-flight, not just the happy path.
  {
    std::vector<double> flat(d);
    for (int j = 0; j < d; ++j) flat[j] = history(7, j);
    original.Remove(flat.data());
  }

  OnlineNormalizer replayed;  // default-constructed, as Recover() does
  replayed.ImportState(original.ExportState());

  const auto expect_state_bits_equal = [&](const char* where) {
    const auto a = original.ExportState();
    const auto b = replayed.ExportState();
    EXPECT_EQ(a.count, b.count) << where;
    EXPECT_EQ(a.bounds_stale, b.bounds_stale) << where;
    ASSERT_EQ(a.mins.size(), b.mins.size()) << where;
    for (size_t j = 0; j < a.mins.size(); ++j) {
      EXPECT_TRUE(BitEqual(a.mins[j], b.mins[j])) << where << " min " << j;
      EXPECT_TRUE(BitEqual(a.maxs[j], b.maxs[j])) << where << " max " << j;
      EXPECT_TRUE(BitEqual(a.mean[j], b.mean[j])) << where << " mean " << j;
      EXPECT_TRUE(BitEqual(a.m2[j], b.m2[j])) << where << " m2 " << j;
    }
  };
  expect_state_bits_equal("right after import");

  // Same op suffix on both: observes, a removal, a bounds rebuild.
  for (int i = 0; i < future.rows(); ++i) {
    original.Observe(future.Row(i));
    replayed.Observe(future.Row(i));
  }
  {
    std::vector<double> flat(d);
    for (int j = 0; j < d; ++j) flat[j] = future(3, j);
    original.Remove(flat.data());
    replayed.Remove(flat.data());
  }
  expect_state_bits_equal("after replayed suffix");

  // RebuildBounds' contract is a re-scan of the *surviving row store*, so
  // the stand-in must have exactly count rows (the Debug assert checks).
  const Matrix rescan =
      RandomRows(static_cast<int>(original.ExportState().count), d, 41);
  original.RebuildBounds(rescan);
  replayed.RebuildBounds(rescan);
  EXPECT_FALSE(original.bounds_stale());
  expect_state_bits_equal("after rebuild");
}

}  // namespace
}  // namespace rpc::data
