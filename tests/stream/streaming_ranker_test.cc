// stream::StreamingRanker: the online path's correctness contract. The
// centrepiece is the acceptance criterion of the streaming tier — after any
// sequence of appends/retirements and refreshes, a snapshot must score
// bit-identically to a from-scratch core::RpcLearner::Refit warm-seeded
// from the same state on the same row set, and scores served through
// serve::RankingService must match in-process PortableRpcModel scoring
// exactly across versioned copy-on-write swaps.
#include "stream/streaming_ranker.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace rpc::stream {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix RawFixture(const Orientation& alpha, int n, uint64_t seed) {
  return data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

Vector RandomRowNear(const Matrix& rows, uint64_t seed, double scale) {
  Rng rng(seed);
  const int base = static_cast<int>(rng.UniformInt(rows.rows()));
  Vector row = rows.Row(base);
  for (int j = 0; j < row.size(); ++j) {
    row[j] += rng.Uniform(-scale, scale);
  }
  return row;
}

StreamingRankerOptions QuietOptions() {
  StreamingRankerOptions options;
  // Tests drive refreshes explicitly (ForceRefresh) unless they are about
  // the policy itself.
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 42;
  return options;
}

TEST(StreamingRankerTest, StartPublishesVersionOneAndServesBitIdentically) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 120, 5);
  serve::RankingService service;
  StreamingRanker ranker(&service, "live", QuietOptions());
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());

  EXPECT_TRUE(service.HasDataset("live"));
  const auto version = service.DatasetVersion("live");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  const StreamingRanker::Snapshot snap = ranker.snapshot();
  EXPECT_EQ(snap.version, 1u);
  ASSERT_EQ(snap.scores.size(), raw.rows());

  // Served scores == the portable model's own scoring, bit for bit.
  const auto batch = service.ScoreBatch("live", raw);
  ASSERT_TRUE(batch.ok());
  for (int i = 0; i < raw.rows(); ++i) {
    const auto expected = snap.model.Score(raw.Row(i));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(batch->scores[i], *expected) << "row " << i;
  }
}

// The tentpole acceptance criterion: the streaming machinery adds no
// arithmetic. A snapshot taken before ForceRefresh carries the exact warm
// state (live bounds, control points, per-row s*); replaying
// RpcLearner::Refit by hand on that state must reproduce the
// post-refresh snapshot bit for bit — scores, control points, J.
TEST(StreamingRankerTest, RefreshBitIdenticalToHandRolledWarmRefit) {
  const Orientation alpha = *Orientation::FromSigns({+1, -1, +1});
  const Matrix raw = RawFixture(alpha, 90, 9);
  StreamingRanker ranker(nullptr, "live", QuietOptions());
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());

  // Track every row by id, exactly as the ranker stores them.
  std::unordered_map<std::int64_t, Vector> rows_by_id;
  for (int i = 0; i < raw.rows(); ++i) rows_by_id[i] = raw.Row(i);

  for (int a = 0; a < 25; ++a) {
    const Vector row = RandomRowNear(raw, 100 + a, /*scale=*/0.3);
    const auto id = ranker.Append(row);
    ASSERT_TRUE(id.ok());
    rows_by_id[*id] = row;
  }
  ASSERT_TRUE(ranker.Retire(3).ok());
  ASSERT_TRUE(ranker.Retire(77).ok());
  rows_by_id.erase(3);
  rows_by_id.erase(77);
  ASSERT_TRUE(ranker.Flush().ok());

  const StreamingRanker::Snapshot before = ranker.snapshot();
  ASSERT_EQ(before.row_ids.size(), rows_by_id.size());

  ASSERT_TRUE(ranker.ForceRefresh().ok());
  const StreamingRanker::Snapshot after = ranker.snapshot();
  EXPECT_EQ(after.version, before.version + 1);

  // Hand-rolled refit from the identical state through the same public
  // pieces the ranker composes.
  Matrix rows(static_cast<int>(before.row_ids.size()), raw.cols());
  for (size_t i = 0; i < before.row_ids.size(); ++i) {
    const auto it = rows_by_id.find(before.row_ids[i]);
    ASSERT_NE(it, rows_by_id.end());
    rows.SetRow(static_cast<int>(i), it->second);
  }
  const auto normalizer =
      data::Normalizer::FromBounds(before.live_mins, before.live_maxs);
  ASSERT_TRUE(normalizer.ok());
  core::RpcWarmStartState seed;
  seed.control_points = RemapControlPoints(
      before.model.control_points, before.model.mins, before.model.maxs,
      before.live_mins, before.live_maxs);
  seed.scores = before.scores;
  const core::RpcLearner learner(ranker.warm_options());
  const auto refit =
      learner.Refit(normalizer->Transform(rows), alpha, seed);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();

  ASSERT_EQ(after.scores.size(), refit->scores.size());
  for (int i = 0; i < refit->scores.size(); ++i) {
    EXPECT_EQ(after.scores[i], refit->scores[i]) << "row " << i;
  }
  const Matrix& expected_control = refit->curve.control_points();
  for (int j = 0; j < expected_control.rows(); ++j) {
    for (int r = 0; r < expected_control.cols(); ++r) {
      EXPECT_EQ(after.model.control_points(j, r), expected_control(j, r));
    }
  }
  // The refreshed model's bounds are the live bounds the refresh froze.
  for (int j = 0; j < raw.cols(); ++j) {
    EXPECT_EQ(after.model.mins[j], before.live_mins[j]);
    EXPECT_EQ(after.model.maxs[j], before.live_maxs[j]);
  }
}

// Served scores stay bit-identical to in-process scoring across versioned
// swaps: every published version serves exactly its own snapshot.
TEST(StreamingRankerTest, ServedScoresTrackVersionedSwapsExactly) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix raw = RawFixture(alpha, 80, 13);
  serve::RankingService service;
  StreamingRanker ranker(&service, "live", QuietOptions());
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());

  const Matrix probe = RawFixture(alpha, 40, 14);
  for (int round = 0; round < 3; ++round) {
    for (int a = 0; a < 10; ++a) {
      ASSERT_TRUE(
          ranker.Append(RandomRowNear(raw, 1000 + 100 * round + a, 0.2))
              .ok());
    }
    ASSERT_TRUE(ranker.ForceRefresh().ok());
    const StreamingRanker::Snapshot snap = ranker.snapshot();
    const auto version = service.DatasetVersion("live");
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(*version, snap.version);
    EXPECT_EQ(snap.version, static_cast<std::uint64_t>(round) + 2);

    const auto batch = service.ScoreBatch("live", probe);
    ASSERT_TRUE(batch.ok());
    for (int i = 0; i < probe.rows(); ++i) {
      const auto expected = snap.model.Score(probe.Row(i));
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(batch->scores[i], *expected)
          << "round " << round << " row " << i;
    }
  }
}

TEST(StreamingRankerTest, RowDeltaPolicyRefreshesInBackground) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1});
  const Matrix raw = RawFixture(alpha, 100, 21);
  serve::RankingService service;
  StreamingRankerOptions options = QuietOptions();
  options.drift.refit_on_row_delta = 8;
  StreamingRanker ranker(&service, "live", options);
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());

  for (int a = 0; a < 20; ++a) {
    ASSERT_TRUE(ranker.Append(RandomRowNear(raw, 300 + a, 0.2)).ok());
  }
  ASSERT_TRUE(ranker.Flush().ok());

  const StreamStats stats = ranker.stats();
  // 20 events at an 8-event cadence: at least two refreshes fired (the
  // second batch may or may not have landed depending on in-flight
  // overlap, so >= 2 is the deterministic floor).
  EXPECT_GE(stats.refreshes, 2);
  EXPECT_EQ(stats.appended, 20);
  EXPECT_EQ(stats.rows, 120);
  const auto version = service.DatasetVersion("live");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, ranker.snapshot().version);
}

TEST(StreamingRankerTest, NormalizerDriftPolicyRebasesBounds) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix raw = RawFixture(alpha, 60, 33);
  StreamingRankerOptions options = QuietOptions();
  options.drift.refit_on_normalizer_drift = 0.05;
  StreamingRanker ranker(nullptr, "live", options);
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());
  const StreamingRanker::Snapshot before = ranker.snapshot();

  // A row far outside the fitted bounds stretches the live range well past
  // the 5% drift threshold.
  Vector outlier(2);
  for (int j = 0; j < 2; ++j) {
    outlier[j] =
        before.model.maxs[j] + 0.5 * (before.model.maxs[j] -
                                      before.model.mins[j]);
  }
  ASSERT_TRUE(ranker.Append(outlier).ok());
  ASSERT_TRUE(ranker.Flush().ok());

  const StreamingRanker::Snapshot after = ranker.snapshot();
  EXPECT_GT(after.version, before.version);
  for (int j = 0; j < 2; ++j) {
    EXPECT_EQ(after.model.maxs[j], outlier[j]) << "attribute " << j;
  }
  // The refreshed scores still live in [0, 1] and the outlier ranks best
  // (it dominates every other row in an all-benefit orientation).
  int best = 0;
  for (int i = 1; i < after.scores.size(); ++i) {
    if (after.scores[i] > after.scores[best]) best = i;
  }
  EXPECT_EQ(after.row_ids[static_cast<size_t>(best)], 60);
}

TEST(StreamingRankerTest, RetireMaintainsStoreAndCountsMisses) {
  const Orientation alpha = *Orientation::FromSigns({+1, -1});
  const Matrix raw = RawFixture(alpha, 50, 41);
  StreamingRanker ranker(nullptr, "live", QuietOptions());
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());

  ASSERT_TRUE(ranker.Retire(7).ok());
  ASSERT_TRUE(ranker.Retire(7).ok());     // second retirement misses
  ASSERT_TRUE(ranker.Retire(9999).ok());  // unknown id misses
  ASSERT_TRUE(ranker.Flush().ok());

  const StreamStats stats = ranker.stats();
  EXPECT_EQ(stats.retired, 1);
  EXPECT_EQ(stats.retire_misses, 2);
  EXPECT_EQ(stats.rows, 49);
  const StreamingRanker::Snapshot snap = ranker.snapshot();
  for (const std::int64_t id : snap.row_ids) EXPECT_NE(id, 7);
  // The store still refreshes fine after retirement.
  ASSERT_TRUE(ranker.ForceRefresh().ok());
  EXPECT_EQ(ranker.snapshot().scores.size(), 49);
}

TEST(StreamingRankerTest, LifecycleErrorsAreStatusesNotCrashes) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix raw = RawFixture(alpha, 40, 51);
  StreamingRanker ranker(nullptr, "live", QuietOptions());

  Vector row(2, 0.5);
  EXPECT_FALSE(ranker.Append(row).ok());       // not started
  EXPECT_FALSE(ranker.ForceRefresh().ok());    // not started
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());
  EXPECT_FALSE(ranker.Start(raw, alpha).ok()); // double start

  Vector bad(3, 0.5);
  EXPECT_FALSE(ranker.Append(bad).ok());       // dimension mismatch

  ranker.Stop();
  EXPECT_FALSE(ranker.Append(row).ok());       // stopped
  EXPECT_FALSE(ranker.Retire(0).ok());
  ranker.Stop();                               // idempotent
}

TEST(StreamingRankerTest, StopDrainsAdmittedEvents) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1});
  const Matrix raw = RawFixture(alpha, 40, 61);
  StreamingRanker ranker(nullptr, "live", QuietOptions());
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());
  for (int a = 0; a < 30; ++a) {
    ASSERT_TRUE(ranker.Append(RandomRowNear(raw, 700 + a, 0.1)).ok());
  }
  ranker.Stop();  // must process all 30 admitted appends before joining
  EXPECT_EQ(ranker.stats().appended, 30);
  EXPECT_EQ(ranker.stats().rows, 70);
}

TEST(RemapControlPointsTest, RemapPreservesRawSpaceGeometry) {
  Matrix control{{0.0, 0.25, 0.75, 1.0}, {0.0, 0.4, 0.6, 1.0}};
  Vector old_mins{10.0, -2.0}, old_maxs{20.0, 2.0};
  Vector new_mins{8.0, -2.0}, new_maxs{26.0, 3.0};
  const Matrix remapped =
      RemapControlPoints(control, old_mins, old_maxs, new_mins, new_maxs);
  for (int r = 0; r < 4; ++r) {
    for (int j = 0; j < 2; ++j) {
      const double raw =
          old_mins[j] + control(j, r) * (old_maxs[j] - old_mins[j]);
      const double raw_back =
          new_mins[j] + remapped(j, r) * (new_maxs[j] - new_mins[j]);
      EXPECT_NEAR(raw_back, raw, 1e-12);
    }
  }
}

}  // namespace
}  // namespace rpc::stream
