// Snapshot retention (keep_snapshots) and log-compaction policy
// (wal_keep_events). The invariant that must hold across every knob
// combination: the log is never truncated past the OLDEST retained
// snapshot — every snapshot still on disk can replay its full suffix —
// and wal_keep_events only ever retains MORE log, never less.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "durable/event_log.h"
#include "durable/snapshot.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "stream/streaming_ranker.h"

namespace rpc::stream {
namespace {

using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix RawFixture(const Orientation& alpha, int n, uint64_t seed) {
  return data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.05, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

std::string MakeTempDir() {
  char templ[] = "/tmp/rpc_retention_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

StreamingRankerOptions SerialOptions(const std::string& dir) {
  StreamingRankerOptions options;
  options.num_threads = 1;
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 42;
  options.durability.dir = dir;
  options.durability.segment_bytes = 1 << 10;  // many small segments
  options.durability.snapshot_every_events = 8;
  return options;
}

/// Appends `count` events through a serial ranker, then stops it (final
/// sync + shutdown snapshot).
void DriveEvents(const std::string& dir, int keep_snapshots,
                 std::int64_t wal_keep_events, int count) {
  const Orientation alpha = *Orientation::FromSigns({+1, +1, -1});
  const Matrix raw = RawFixture(alpha, 40, 7);
  StreamingRankerOptions options = SerialOptions(dir);
  options.durability.keep_snapshots = keep_snapshots;
  options.durability.wal_keep_events = wal_keep_events;
  StreamingRanker ranker(nullptr, "retention", options);
  ASSERT_TRUE(ranker.Start(raw, alpha).ok());
  for (int i = 0; i < count; ++i) {
    Vector row = raw.Row(i % raw.rows());
    for (int j = 0; j < row.size(); ++j) row[j] += 0.005 * (i + 1);
    ASSERT_TRUE(ranker.Append(row).ok());
  }
  ASSERT_TRUE(ranker.Flush().ok());
  ranker.Stop();
}

class RetentionTest : public ::testing::TestWithParam<int> {};

// For every keep_n: at most keep_n snapshots survive, and every survivor
// can still replay its entire log suffix — truncation never strips a
// segment a retained snapshot needs.
TEST_P(RetentionTest, EveryRetainedSnapshotKeepsItsLogSuffix) {
  const int keep_n = GetParam();
  const std::string dir = MakeTempDir();
  DriveEvents(dir, keep_n, /*wal_keep_events=*/0, /*count=*/70);

  const std::vector<std::uint64_t> seqs = durable::ListSnapshotSeqs(dir);
  ASSERT_FALSE(seqs.empty());
  EXPECT_LE(seqs.size(), static_cast<size_t>(std::max(keep_n, 1)));

  for (const std::uint64_t snapshot_seq : seqs) {
    const auto replay = durable::ReplayEventLog(
        dir, 3, snapshot_seq,
        [](const durable::ReplayRecord&) { return Status::Ok(); });
    ASSERT_TRUE(replay.ok())
        << "snapshot at seq " << snapshot_seq
        << " lost its log suffix: " << replay.status().ToString();
  }
  // The compaction floor is exactly the oldest retained snapshot: nothing
  // older survives (no retention margin configured), nothing newer is
  // gone. Segment granularity means the oldest surviving segment may
  // start at or before that snapshot's seq, never after.
  const std::uint64_t oldest_wal = durable::OldestWalSeq(dir);
  ASSERT_GT(oldest_wal, 0u);
  EXPECT_LE(oldest_wal, seqs.front() + 1);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(KeepN, RetentionTest, ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return "keep" + std::to_string(info.param);
                         });

TEST(WalKeepEventsTest, LargeMarginDisablesCompactionEntirely) {
  const std::string dir = MakeTempDir();
  DriveEvents(dir, /*keep_snapshots=*/2, /*wal_keep_events=*/1 << 30,
              /*count=*/70);
  // Snapshots rotated as usual, but every log record since seq 1 is still
  // on disk: the margin outranks the snapshot horizon.
  EXPECT_LE(durable::ListSnapshotSeqs(dir).size(), 2u);
  EXPECT_EQ(durable::OldestWalSeq(dir), 1u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(WalKeepEventsTest, MarginRetainsTailBeyondSnapshotHorizon) {
  const std::string with_dir = MakeTempDir();
  const std::string without_dir = MakeTempDir();
  constexpr int kEvents = 70;
  constexpr std::int64_t kMargin = 30;
  DriveEvents(with_dir, /*keep_snapshots=*/1, kMargin, kEvents);
  DriveEvents(without_dir, /*keep_snapshots=*/1, 0, kEvents);

  // The margin dir must still replay the newest kMargin records from its
  // log — a standby at (tip - kMargin) can catch up with a tail fetch.
  const std::uint64_t with_oldest = durable::OldestWalSeq(with_dir);
  const std::uint64_t without_oldest = durable::OldestWalSeq(without_dir);
  ASSERT_GT(with_oldest, 0u);
  EXPECT_LE(with_oldest, static_cast<std::uint64_t>(kEvents - kMargin) + 1);
  // And it strictly retains more than the aggressive configuration.
  EXPECT_LT(with_oldest, without_oldest);

  const auto replay = durable::ReplayEventLog(
      with_dir, 3, static_cast<std::uint64_t>(kEvents - kMargin),
      [](const durable::ReplayRecord&) { return Status::Ok(); });
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();

  std::error_code ec;
  std::filesystem::remove_all(with_dir, ec);
  std::filesystem::remove_all(without_dir, ec);
}

}  // namespace
}  // namespace rpc::stream
