// Parameterized property sweeps over the learner configuration space:
// every (init, projection method, orientation) combination must deliver
// the same core guarantees — strict monotonicity, bounded scores,
// non-increasing J, determinism.
#include <tuple>

#include <gtest/gtest.h>

#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "rank/metrics.h"

namespace rpc {
namespace {

using core::RpcFitResult;
using core::RpcInit;
using core::RpcLearner;
using core::RpcLearnOptions;
using linalg::Matrix;
using linalg::Vector;
using opt::ProjectionMethod;
using order::Orientation;

struct SweepCase {
  RpcInit init;
  ProjectionMethod projection;
  int signs_code;  // bitmask over 3 attributes: bit j set -> cost attribute
};

class LearnerSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  static Orientation MakeAlpha(int signs_code) {
    std::vector<int> signs;
    for (int j = 0; j < 3; ++j) {
      signs.push_back((signs_code >> j) & 1 ? -1 : 1);
    }
    return *Orientation::FromSigns(signs);
  }

  static RpcLearnOptions MakeOptions(int init_code, int projection_code) {
    RpcLearnOptions options;
    options.init = static_cast<RpcInit>(init_code);
    options.projection.method =
        static_cast<ProjectionMethod>(projection_code);
    options.seed = 99;
    return options;
  }
};

TEST_P(LearnerSweepTest, CoreGuaranteesHold) {
  const auto [init_code, projection_code, signs_code] = GetParam();
  const Orientation alpha = MakeAlpha(signs_code);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha, {.n = 90, .noise_sigma = 0.04, .control_margin = 0.1,
              .seed = static_cast<uint64_t>(41 + signs_code)});
  auto norm = data::Normalizer::Fit(sample.data);
  ASSERT_TRUE(norm.ok());
  const Matrix normalized = norm->Transform(sample.data);

  const RpcLearnOptions options = MakeOptions(init_code, projection_code);
  const auto fit = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  // (1) Strictly monotone curve (Proposition 1 survives learning).
  EXPECT_TRUE(fit->curve.CheckMonotonicity().strictly_monotone);

  // (2) Scores bounded in [0,1].
  for (int i = 0; i < fit->scores.size(); ++i) {
    EXPECT_GE(fit->scores[i], 0.0);
    EXPECT_LE(fit->scores[i], 1.0);
  }

  // (3) Recorded J history is non-increasing (Proposition 2).
  for (size_t i = 0; i + 1 < fit->j_history.size(); ++i) {
    EXPECT_GE(fit->j_history[i] + 1e-9, fit->j_history[i + 1]);
  }

  // (4) Latent order recovered well regardless of configuration.
  EXPECT_GT(rank::KendallTauB(fit->scores, sample.latent), 0.85);

  // (5) Determinism: the same options give the identical result.
  const auto again = RpcLearner(options).Fit(normalized, alpha);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ApproxEqual(fit->curve.control_points(),
                          again->curve.control_points(), 0.0));
  EXPECT_TRUE(ApproxEqual(fit->scores, again->scores, 0.0));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, LearnerSweepTest,
    ::testing::Combine(
        // kRandomSamples, kQuantiles, kDiagonal
        ::testing::Values(0, 1, 2),
        // kGoldenSection, kQuinticRoots, kNewton (grid-only is too coarse
        // for guarantee (4))
        ::testing::Values(0, 1, 3),
        // benefit/cost sign patterns over three attributes
        ::testing::Values(0, 3, 5)));

// The learn_end_points variant keeps the softer guarantees.
class FreeEndpointSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FreeEndpointSweepTest, FitImprovesOrMatchesPinnedResidual) {
  const uint64_t seed = GetParam();
  const Orientation alpha = Orientation::AllBenefit(2);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha,
      {.n = 120, .noise_sigma = 0.05, .control_margin = 0.1, .seed = seed});
  auto norm = data::Normalizer::Fit(sample.data);
  const Matrix normalized = norm->Transform(sample.data);

  RpcLearnOptions pinned;
  pinned.seed = seed;
  RpcLearnOptions free_ends = pinned;
  free_ends.fix_end_points = false;

  const auto fit_pinned = RpcLearner(pinned).Fit(normalized, alpha);
  const auto fit_free = RpcLearner(free_ends).Fit(normalized, alpha);
  ASSERT_TRUE(fit_pinned.ok());
  ASSERT_TRUE(fit_free.ok());
  // Free end points have strictly more freedom: residual should not be
  // meaningfully worse than the pinned fit.
  EXPECT_LE(fit_free->final_j, fit_pinned->final_j * 1.25 + 1e-6);
  // Both stay inside the cube.
  const Matrix& p = fit_free->curve.control_points();
  for (int j = 0; j < p.rows(); ++j) {
    for (int r = 0; r < p.cols(); ++r) {
      EXPECT_GE(p(j, r), 0.0);
      EXPECT_LE(p(j, r), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreeEndpointSweepTest,
                         ::testing::Values(1, 4, 9, 16, 25));

}  // namespace
}  // namespace rpc
