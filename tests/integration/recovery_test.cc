#include <gtest/gtest.h>

#include "baselines/elmap.h"
#include "baselines/polyline_curve.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/first_pca.h"
#include "rank/metrics.h"

namespace rpc {
namespace {

using core::RpcRanker;
using linalg::Vector;
using order::Orientation;

// Latent-order recovery under the paper's own generative model (Eq. 11):
// with modest noise the RPC must reconstruct the hidden order almost
// perfectly, and it must not lose to the linear first PCA on curved data.
class RecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(RecoveryTest, RpcRecoversLatentOrder) {
  const double noise = GetParam();
  const Orientation alpha = Orientation::AllBenefit(3);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha,
      {.n = 200, .noise_sigma = noise, .control_margin = 0.15, .seed = 97});
  const auto ranker = RpcRanker::Fit(sample.data, alpha);
  ASSERT_TRUE(ranker.ok());
  const Vector scores = ranker->ScoreRows(sample.data);
  const double tau = rank::KendallTauB(scores, sample.latent);
  // Tolerance degrades with noise but stays high.
  const double floor = noise <= 0.01 ? 0.97 : (noise <= 0.05 ? 0.9 : 0.75);
  EXPECT_GT(tau, floor) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, RecoveryTest,
                         ::testing::Values(0.005, 0.02, 0.05, 0.1));

TEST(RecoveryComparisonTest, RpcAtLeastMatchesBaselinesOnCurvedCloud) {
  const Orientation alpha = Orientation::AllBenefit(2);
  // Strongly bent monotone curve -> linear methods pay a price.
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha,
      {.n = 250, .noise_sigma = 0.03, .control_margin = 0.04, .seed = 13});
  const auto rpc = RpcRanker::Fit(sample.data, alpha);
  ASSERT_TRUE(rpc.ok());
  const double tau_rpc = rank::KendallTauB(
      rpc->ScoreRows(sample.data), sample.latent);

  const auto pca = rank::FirstPcaRanker::Fit(sample.data, alpha);
  ASSERT_TRUE(pca.ok());
  const double tau_pca = rank::KendallTauB(
      pca->ScoreRows(sample.data), sample.latent);

  const auto elmap = baselines::ElmapCurve::Fit(sample.data, alpha);
  ASSERT_TRUE(elmap.ok());
  const double tau_elmap = rank::KendallTauB(
      elmap->ScoreRows(sample.data), sample.latent);

  EXPECT_GT(tau_rpc, 0.9);
  EXPECT_GE(tau_rpc, tau_pca - 0.02);
  EXPECT_GE(tau_rpc, tau_elmap - 0.02);
}

TEST(RecoveryComparisonTest, ExplainedVarianceOrderingOnBentData) {
  // Reconstruction quality: the RPC's cubic skeleton must explain more
  // variance than the best straight line when the truth is bent.
  const Orientation alpha = Orientation::AllBenefit(2);
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      alpha,
      {.n = 250, .noise_sigma = 0.02, .control_margin = 0.04, .seed = 29});
  const auto rpc = RpcRanker::Fit(sample.data, alpha);
  ASSERT_TRUE(rpc.ok());
  const auto pca = rank::FirstPcaRanker::Fit(sample.data, alpha);
  ASSERT_TRUE(pca.ok());
  // First-PCA explained variance ratio on these clouds is the share of the
  // top eigenvalue; the RPC's explained variance uses residuals. Both in
  // [0,1]; RPC should be at least as good on curved data.
  EXPECT_GE(rpc->fit_result().explained_variance,
            pca->explained_variance_ratio() - 0.05);
}

TEST(RecoveryComparisonTest, CrescentDataDefeatsFirstPca) {
  // Fig. 5(a): on the crescent the first PCA direction cannot follow the
  // bend; RPC keeps recovering the arc order.
  const linalg::Matrix crescent = data::GenerateCrescent(300, 0.02, 31);
  // Latent order along the arc is x1 (both coordinates increase with t).
  const Orientation alpha = Orientation::AllBenefit(2);
  const auto rpc = RpcRanker::Fit(crescent, alpha);
  ASSERT_TRUE(rpc.ok());
  const Vector rpc_scores = rpc->ScoreRows(crescent);
  const double tau_rpc =
      rank::KendallTauB(rpc_scores, crescent.Column(0));
  EXPECT_GT(tau_rpc, 0.9);
  // And the RPC skeleton fits the crescent much better than the best line.
  const auto pca = rank::FirstPcaRanker::Fit(crescent, alpha);
  ASSERT_TRUE(pca.ok());
  EXPECT_GT(rpc->fit_result().explained_variance,
            pca->explained_variance_ratio());
}

}  // namespace
}  // namespace rpc
