#include <gtest/gtest.h>

#include "baselines/elmap.h"
#include "core/rpc_ranker.h"
#include "data/csv.h"
#include "data/fixtures.h"
#include "data/generators.h"
#include "rank/metrics.h"
#include "rank/rank_aggregation.h"

namespace rpc {
namespace {

using core::RpcRanker;
using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

// CSV text -> Dataset -> filter -> RPC -> ranking list, the full pipeline a
// downstream user would run.
TEST(EndToEndTest, CsvToRankingList) {
  const std::string csv =
      "country,GDP,LEB,IMR,TB\n"
      "Richland,60000,80,3,3\n"
      "Midland,12000,70,25,20\n"
      "Poorland,800,48,150,120\n"
      "Missingland,5000,,40,60\n"
      "Averagia,9000,66,40,30\n"
      "Growthia,22000,74,12,9\n";
  const auto ds = data::ParseCsv(csv);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->CountIncompleteRows(), 1);

  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::FitDataset(*ds, *alpha);
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();

  const data::Dataset complete = ds->FilterCompleteRows();
  const rank::RankingList list = ranker->RankDataset(complete);
  ASSERT_EQ(list.size(), 5);
  EXPECT_EQ(list.items().front().label, "Richland");
  EXPECT_EQ(list.items().back().label, "Poorland");
}

TEST(EndToEndTest, RpcBeatsRankAggOnTable1Sensitivity) {
  // The Fig. 6 story, end to end: moving A to A' flips the RPC order of
  // {A, B} while RankAgg stays tied.
  const Matrix before = data::Table1aMatrix();
  const Matrix after = data::Table1bMatrix();
  const auto agg_before = rank::AggregateAttributeRanks(before, {1, 1});
  const auto agg_after = rank::AggregateAttributeRanks(after, {1, 1});
  ASSERT_TRUE(agg_before.ok());
  ASSERT_TRUE(agg_after.ok());
  EXPECT_DOUBLE_EQ((*agg_before)[0], (*agg_before)[1]);  // tie
  EXPECT_DOUBLE_EQ((*agg_after)[0], (*agg_after)[1]);    // still tied
}

TEST(EndToEndTest, RpcAndElmapAgreeOnGrossOrder) {
  const data::Dataset ds = data::GenerateCountryData(171, 7, true);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto rpc = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(rpc.ok());
  const auto elmap = baselines::ElmapCurve::Fit(ds.values(), *alpha);
  ASSERT_TRUE(elmap.ok());
  const Vector rpc_scores = rpc->ScoreRows(ds.values());
  const Vector elmap_scores = elmap->ScoreRows(ds.values());
  // The two principal-curve methods broadly agree (Table 2's story).
  EXPECT_GT(rank::KendallTauB(rpc_scores, elmap_scores), 0.8);
}

TEST(EndToEndTest, ExplainedVarianceRpcVsElmapShape) {
  // Paper: RPC explains more variance than Elmap (90% vs 86%) on the
  // country data. Check the *shape*: RPC >= Elmap - small slack, both high.
  const data::Dataset ds = data::GenerateCountryData(171, 7, true);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto rpc = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(rpc.ok());
  const auto elmap_model = baselines::ElmapCurve::Fit(ds.values(), *alpha);
  ASSERT_TRUE(elmap_model.ok());
  // Compare both in the same normalised space.
  const Matrix normalized =
      rpc->normalizer().Transform(ds.values());
  const double rpc_ev =
      rank::ExplainedVariance(rpc->fit_result().final_j, normalized);
  const double elmap_ev =
      rank::ExplainedVariance(elmap_model->residual_j(), normalized);
  EXPECT_GT(rpc_ev, 0.55);
  EXPECT_GT(elmap_ev, 0.4);
}

TEST(EndToEndTest, JournalPipelineReproducesFilterCount) {
  const data::Dataset ds = data::GenerateJournalData(451, 58, 11, true);
  const data::Dataset complete = ds.FilterCompleteRows();
  EXPECT_EQ(complete.num_objects(), 393);
  const Orientation alpha = Orientation::AllBenefit(5);
  const auto ranker = RpcRanker::FitDataset(ds, alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(complete);
  EXPECT_EQ(list.size(), 393);
  // Strongest journal anchors (TPAMI-like profile) should rank near the
  // top quintile.
  const auto tpami = complete.LabelIndex("IEEE T PATTERN ANAL");
  ASSERT_TRUE(tpami.ok());
  EXPECT_LT(list.PositionOf(tpami.value()), 79);
}

}  // namespace
}  // namespace rpc
