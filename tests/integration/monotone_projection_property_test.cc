#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rpc_curve.h"
#include "opt/curve_projection.h"

namespace rpc {
namespace {

using core::RpcCurve;
using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

// The Topkis-style invariant behind Example 1 (DESIGN.md §6): projection
// onto a strictly monotone curve is order preserving — for x strictly
// preceding y, the projection index of x never exceeds that of y.
class MonotoneProjectionTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MonotoneProjectionTest, ProjectionIndexIsMonotone) {
  const uint64_t seed = std::get<0>(GetParam());
  const int d = std::get<1>(GetParam());
  Rng rng(seed * 31 + d);
  std::vector<int> signs(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    signs[static_cast<size_t>(j)] = rng.Uniform() < 0.5 ? 1 : -1;
  }
  const auto alpha = Orientation::FromSigns(signs);
  ASSERT_TRUE(alpha.ok());

  // Random strictly monotone RPC curve.
  Matrix control(d, 4);
  control.SetColumn(0, alpha->WorstCorner());
  control.SetColumn(3, alpha->BestCorner());
  for (int j = 0; j < d; ++j) {
    control(j, 1) = alpha->sign(j) > 0 ? rng.Uniform(0.05, 0.95)
                                       : 1.0 - rng.Uniform(0.05, 0.95);
    control(j, 2) = alpha->sign(j) > 0 ? rng.Uniform(0.05, 0.95)
                                       : 1.0 - rng.Uniform(0.05, 0.95);
  }
  const auto curve = RpcCurve::FromControlPoints(control, *alpha);
  ASSERT_TRUE(curve.ok());
  ASSERT_TRUE(curve->CheckMonotonicity().strictly_monotone);

  opt::ProjectionOptions options;
  options.method = opt::ProjectionMethod::kQuinticRoots;  // exact argmin
  for (int trial = 0; trial < 60; ++trial) {
    Vector x(d);
    Vector y(d);
    for (int j = 0; j < d; ++j) {
      const double a = rng.Uniform(-0.1, 1.1);
      const double b = rng.Uniform(-0.1, 1.1);
      // Order the pair along the cone: y dominates x.
      if (alpha->sign(j) > 0) {
        x[j] = std::min(a, b);
        y[j] = std::max(a, b);
      } else {
        x[j] = std::max(a, b);
        y[j] = std::min(a, b);
      }
    }
    if (!alpha->StrictlyPrecedes(x, y)) continue;
    const double sx = opt::ProjectOntoCurve(curve->bezier(), x, options).s;
    const double sy = opt::ProjectOntoCurve(curve->bezier(), y, options).s;
    EXPECT_LE(sx, sy + 1e-7)
        << "seed=" << seed << " d=" << d << " x=" << x.ToString()
        << " y=" << y.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDims, MonotoneProjectionTest,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{7},
                                         uint64_t{42}, uint64_t{101}),
                       ::testing::Values(1, 2, 3, 5)));

// Projection onto a *non-monotone* curve loses the guarantee — the negative
// control showing the property is not vacuous.
TEST(MonotoneProjectionTest, NonMonotoneCurveViolates) {
  // A curve that doubles back in y.
  const Matrix control{{0.0, 0.3, 0.7, 1.0}, {0.0, 2.0, -1.0, 1.0}};
  const curve::BezierCurve bent(control);
  opt::ProjectionOptions options;
  options.method = opt::ProjectionMethod::kQuinticRoots;
  int violations = 0;
  Rng rng(5);
  const Orientation alpha = Orientation::AllBenefit(2);
  for (int trial = 0; trial < 200; ++trial) {
    Vector x{rng.Uniform(), rng.Uniform()};
    Vector y{x[0] + rng.Uniform(0.0, 1.0 - x[0]),
             x[1] + rng.Uniform(0.0, 1.0 - x[1])};
    if (!alpha.StrictlyPrecedes(x, y)) continue;
    const double sx = opt::ProjectOntoCurve(bent, x, options).s;
    const double sy = opt::ProjectOntoCurve(bent, y, options).s;
    if (sx > sy + 1e-7) ++violations;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace rpc
