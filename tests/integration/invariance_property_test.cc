#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/metrics.h"

namespace rpc {
namespace {

using core::RpcLearnOptions;
using core::RpcRanker;
using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

// Property sweep: meta-rule 1 for the full RPC pipeline. Refitting on any
// positively rescaled and translated copy of the data must reproduce the
// identical ranking list (deterministic init makes runs comparable).
class RpcInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpcInvarianceTest, RankingInvariantUnderPositiveAffineMaps) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int d = 2 + static_cast<int>(rng.UniformInt(3));
  std::vector<int> signs(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    signs[static_cast<size_t>(j)] = rng.Uniform() < 0.5 ? 1 : -1;
  }
  const auto alpha = Orientation::FromSigns(signs);
  ASSERT_TRUE(alpha.ok());
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      *alpha,
      {.n = 80, .noise_sigma = 0.03, .control_margin = 0.1, .seed = seed});

  RpcLearnOptions options;
  options.init = core::RpcInit::kQuantiles;  // deterministic
  const auto base = RpcRanker::Fit(sample.data, *alpha, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const Vector base_scores = base->ScoreRows(sample.data);

  Matrix transformed(sample.data.rows(), d);
  Vector scale(d);
  Vector shift(d);
  for (int j = 0; j < d; ++j) {
    scale[j] = rng.Uniform(0.1, 50.0);
    shift[j] = rng.Uniform(-20.0, 20.0);
  }
  for (int i = 0; i < sample.data.rows(); ++i) {
    for (int j = 0; j < d; ++j) {
      transformed(i, j) = scale[j] * sample.data(i, j) + shift[j];
    }
  }
  const auto refit = RpcRanker::Fit(transformed, *alpha, options);
  ASSERT_TRUE(refit.ok());
  const Vector refit_scores = refit->ScoreRows(transformed);

  // Invariance: identical ordering (tau-b of 1 within numerical jitter on
  // near-ties).
  EXPECT_GT(rank::KendallTauB(base_scores, refit_scores), 0.999);
  // Stronger: scores themselves agree because normalisation removes the
  // affine map entirely (Eq. 16).
  for (int i = 0; i < base_scores.size(); ++i) {
    EXPECT_NEAR(base_scores[i], refit_scores[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcInvarianceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Meta-rule 2 property sweep: RPC scores never invert a strictly comparable
// pair, across dimensions and orientations.
class RpcMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpcMonotonicityTest, ComparablePairsNeverInverted) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 977 + 13);
  const int d = 2 + static_cast<int>(rng.UniformInt(4));
  std::vector<int> signs(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    signs[static_cast<size_t>(j)] = rng.Uniform() < 0.5 ? 1 : -1;
  }
  const auto alpha = Orientation::FromSigns(signs);
  ASSERT_TRUE(alpha.ok());
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      *alpha,
      {.n = 120, .noise_sigma = 0.05, .control_margin = 0.1, .seed = seed});
  const auto ranker = RpcRanker::Fit(sample.data, *alpha);
  ASSERT_TRUE(ranker.ok());
  const Vector scores = ranker->ScoreRows(sample.data);
  const auto report =
      rank::CountOrderViolations(sample.data, scores, *alpha, 1e-7);
  EXPECT_EQ(report.violations, 0)
      << "seed " << seed << ": " << report.comparable_pairs
      << " comparable pairs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcMonotonicityTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace rpc
