// Failure injection: malformed, degenerate and adversarial inputs must
// surface as Status errors (or graceful behaviour), never as crashes or
// silent garbage.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baselines/elmap.h"
#include "baselines/polyline_curve.h"
#include "core/rpc_ranker.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "rank/kernel_pca.h"

namespace rpc {
namespace {

using core::RpcLearner;
using core::RpcRanker;
using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

Matrix HealthyData(int n) {
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = n, .noise_sigma = 0.03, .control_margin = 0.1, .seed = 77});
  return sample.data;
}

TEST(FailureInjectionTest, NanInDataRejectedByNormalizer) {
  Matrix data = HealthyData(20);
  data(7, 1) = std::nan("");
  const auto norm = data::Normalizer::Fit(data);
  EXPECT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, InfinityRejectedByNormalizer) {
  Matrix data = HealthyData(20);
  data(3, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(data::Normalizer::Fit(data).ok());
}

TEST(FailureInjectionTest, NanRejectedByLearnerDirectly) {
  Matrix data = HealthyData(20);
  // Clamp into [0,1] so only the NaN is wrong.
  for (int i = 0; i < data.rows(); ++i) {
    for (int j = 0; j < data.cols(); ++j) {
      data(i, j) = std::min(1.0, std::max(0.0, data(i, j)));
    }
  }
  data(5, 0) = std::nan("");
  const auto fit = RpcLearner().Fit(data, Orientation::AllBenefit(2));
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FailureInjectionTest, NanPropagatesThroughRankerFit) {
  Matrix data = HealthyData(20);
  data(0, 0) = std::nan("");
  EXPECT_FALSE(RpcRanker::Fit(data, Orientation::AllBenefit(2)).ok());
}

TEST(FailureInjectionTest, AllIdenticalRowsRejected) {
  Matrix data(10, 3, 0.5);
  EXPECT_FALSE(RpcRanker::Fit(data, Orientation::AllBenefit(3)).ok());
  EXPECT_FALSE(
      baselines::ElmapCurve::Fit(data, Orientation::AllBenefit(3)).ok());
  EXPECT_FALSE(
      baselines::PolylineCurve::Fit(data, Orientation::AllBenefit(3)).ok());
  EXPECT_FALSE(
      rank::KernelPcaRanker::Fit(data, Orientation::AllBenefit(3)).ok());
}

TEST(FailureInjectionTest, DuplicatedPointsStillFit) {
  // Heavy duplication is legal (ties in the list, not an error).
  Matrix data(30, 2);
  for (int i = 0; i < 30; ++i) {
    const double t = (i % 3) / 2.0;  // only three distinct points
    data(i, 0) = t;
    data(i, 1) = t * t;
  }
  const auto ranker = RpcRanker::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  const Vector scores = ranker->ScoreRows(data);
  // Identical inputs must get identical scores.
  EXPECT_DOUBLE_EQ(scores[0], scores[3]);
  EXPECT_DOUBLE_EQ(scores[1], scores[4]);
}

TEST(FailureInjectionTest, ExtremeAttributeScalesSurvive) {
  // Meta-rule 1 stress: columns spanning 12 orders of magnitude.
  Matrix data = HealthyData(60);
  Matrix scaled(data.rows(), 2);
  for (int i = 0; i < data.rows(); ++i) {
    scaled(i, 0) = 1e12 * data(i, 0) + 3e11;
    scaled(i, 1) = 1e-9 * data(i, 1) - 5e-10;
  }
  const auto base = RpcRanker::Fit(data, Orientation::AllBenefit(2));
  const auto wild = RpcRanker::Fit(scaled, Orientation::AllBenefit(2));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(wild.ok());
  const Vector a = base->ScoreRows(data);
  const Vector b = wild->ScoreRows(scaled);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5) << "row " << i;
  }
}

TEST(FailureInjectionTest, ScoringOutOfDomainPointsIsClamped) {
  const auto ranker =
      RpcRanker::Fit(HealthyData(50), Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok());
  // Far outside the training box: scores stay in [0,1] (projection is onto
  // a bounded curve).
  EXPECT_GE(ranker->Score(Vector{-1e6, -1e6}), 0.0);
  EXPECT_LE(ranker->Score(Vector{-1e6, -1e6}), 1.0);
  EXPECT_GE(ranker->Score(Vector{1e6, 1e6}), 0.0);
  EXPECT_LE(ranker->Score(Vector{1e6, 1e6}), 1.0);
}

TEST(FailureInjectionTest, CsvGarbageVariantsAllRejectedCleanly) {
  const char* cases[] = {
      "",                          // empty
      "\n\n\n",                    // blank lines only
      "name,a\nx,1\ny",            // ragged
      "name,a\nx,1e999999\n",      // overflow parses to inf: accepted or not
      "name,a\nx,0x12zz\n",        // garbage token
  };
  for (const char* text : cases) {
    const auto ds = data::ParseCsv(text);
    if (ds.ok()) {
      // The overflow case may parse; it must then fail later, not crash.
      const auto ranker =
          RpcRanker::FitDataset(*ds, Orientation::AllBenefit(1));
      EXPECT_FALSE(ranker.ok());
    }
  }
}

TEST(FailureInjectionTest, DatasetWithOneCompleteRowRejected) {
  data::Dataset ds;
  ds.AppendRow("only", Vector{1.0, 2.0});
  ds.AppendRow("broken", Vector{0.0, 0.0}, {true, true});
  EXPECT_FALSE(RpcRanker::FitDataset(ds, Orientation::AllBenefit(2)).ok());
}

TEST(FailureInjectionTest, TinyButValidDatasetFits) {
  // The minimum legal configuration: 2 rows, 2 attributes.
  Matrix data{{0.0, 0.0}, {1.0, 1.0}};
  const auto ranker = RpcRanker::Fit(data, Orientation::AllBenefit(2));
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  EXPECT_LT(ranker->Score(data.Row(0)), ranker->Score(data.Row(1)));
}

TEST(FailureInjectionTest, MaxIterationsZeroStillReturnsValidCurve) {
  core::RpcLearnOptions options;
  options.max_iterations = 0;
  const data::LatentCurveSample sample = data::GenerateLatentCurveData(
      Orientation::AllBenefit(2),
      {.n = 30, .noise_sigma = 0.02, .control_margin = 0.1, .seed = 5});
  auto norm = data::Normalizer::Fit(sample.data);
  const auto fit =
      RpcLearner(options).Fit(norm->Transform(sample.data),
                              Orientation::AllBenefit(2));
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->iterations, 0);
  EXPECT_EQ(fit->scores.size(), 30);
  EXPECT_TRUE(fit->curve.CheckMonotonicity().strictly_monotone);
}

}  // namespace
}  // namespace rpc
