#include <gtest/gtest.h>

#include "core/rpc_ranker.h"
#include "data/fixtures.h"
#include "data/generators.h"
#include "rank/metrics.h"
#include "rank/rank_aggregation.h"

namespace rpc {
namespace {

using core::RpcLearnOptions;
using core::RpcRanker;
using linalg::Matrix;
using linalg::Vector;
using order::Orientation;

// These tests pin our reproduction against the exact numbers the paper
// prints: not absolute score equality (their Scilab run differs) but the
// *orderings* and qualitative relationships.

TEST(PaperAnchorsTest, Table1aRpcOrderReproduced) {
  // Table 1's coordinates are already in [0,1]^2 — the paper fits directly
  // on the three objects, so we use the learner (no re-normalisation).
  // The deterministic diagonal init keeps the tiny fit reproducible.
  const Matrix data = data::Table1aMatrix();
  const Orientation alpha = Orientation::AllBenefit(2);
  RpcLearnOptions options;
  options.init = core::RpcInit::kDiagonal;
  const auto fit = core::RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // Published orders: A < B < C (Table 1a).
  EXPECT_LT(fit->scores[0], fit->scores[1]);
  EXPECT_LT(fit->scores[1], fit->scores[2]);
  // And the scores land in the paper's ballpark (their Scilab run printed
  // 0.2329 / 0.3304 / 0.7300).
  EXPECT_NEAR(fit->scores[0], 0.2329, 0.12);
  EXPECT_NEAR(fit->scores[1], 0.3304, 0.12);
  EXPECT_NEAR(fit->scores[2], 0.7300, 0.12);
}

TEST(PaperAnchorsTest, Table1bRpcFlipsAPrimeAboveB) {
  const Matrix data = data::Table1bMatrix();
  const Orientation alpha = Orientation::AllBenefit(2);
  RpcLearnOptions options;
  options.init = core::RpcInit::kDiagonal;
  const auto fit = core::RpcLearner(options).Fit(data, alpha);
  ASSERT_TRUE(fit.ok());
  const double sa = fit->scores[0];  // A'
  const double sb = fit->scores[1];  // B
  const double sc = fit->scores[2];  // C
  // Published orders in Table 1(b): B < A' < C — the observation change
  // flipped the pair, which RankAgg cannot see.
  EXPECT_LT(sb, sa);
  EXPECT_LT(sa, sc);
}

TEST(PaperAnchorsTest, RankAggValuesMatchTable1Exactly) {
  for (const auto* rows : {&data::Table1a(), &data::Table1b()}) {
    Matrix data(3, 2);
    for (int i = 0; i < 3; ++i) {
      data(i, 0) = (*rows)[static_cast<size_t>(i)].x1;
      data(i, 1) = (*rows)[static_cast<size_t>(i)].x2;
    }
    const auto agg = rank::AggregateAttributeRanks(data, {1, 1});
    ASSERT_TRUE(agg.ok());
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ((*agg)[i], (*rows)[static_cast<size_t>(i)].rankagg);
    }
  }
}

TEST(PaperAnchorsTest, CountryAnchorsKeepPaperTierOrder) {
  // On the substituted dataset, the 5 top anchors must all outrank the 5
  // bottom anchors, and the extremes must match the paper exactly.
  const data::Dataset ds = data::GenerateCountryData(171, 7, true);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(ds);

  const auto& anchors = data::Table2Anchors();
  for (size_t top = 0; top < 5; ++top) {
    for (size_t bottom = 10; bottom < 15; ++bottom) {
      const int top_idx = ds.LabelIndex(anchors[top].name).value();
      const int bottom_idx = ds.LabelIndex(anchors[bottom].name).value();
      EXPECT_LT(list.PositionOf(top_idx), list.PositionOf(bottom_idx))
          << anchors[top].name << " vs " << anchors[bottom].name;
    }
  }
  // Luxembourg outranks the other published top-5 anchors, as in Table 2.
  const int lux = ds.LabelIndex("Luxembourg").value();
  for (size_t i = 1; i < 5; ++i) {
    const int other = ds.LabelIndex(anchors[i].name).value();
    EXPECT_LT(list.PositionOf(lux), list.PositionOf(other));
  }
}

TEST(PaperAnchorsTest, CountryAnchorRankCorrelationWithPaper) {
  // Spearman correlation between our anchor positions and the paper's
  // published orders must be near-perfect even though mid-list neighbours
  // may swap.
  const data::Dataset ds = data::GenerateCountryData(171, 7, true);
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const auto ranker = RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(ds);
  const auto& anchors = data::Table2Anchors();
  Vector ours(static_cast<int>(anchors.size()));
  Vector paper(static_cast<int>(anchors.size()));
  for (size_t i = 0; i < anchors.size(); ++i) {
    ours[static_cast<int>(i)] =
        list.PositionOf(ds.LabelIndex(anchors[i].name).value());
    paper[static_cast<int>(i)] = anchors[i].rpc_order;
  }
  // Mid-list anchors (Moldova/Vanuatu/Suriname sit within 0.001 of each
  // other in the paper) may swap locally on the substituted data; the tier
  // structure must survive.
  EXPECT_GT(rank::SpearmanRho(ours, paper), 0.9);
}

TEST(PaperAnchorsTest, JournalTkdeAboveSmcaDespiteLowerIf) {
  // The Section 6.2.2 inversion: TKDE above SMCA although SMCA's IF is
  // higher, because Article Influence dominates.
  const data::Dataset ds = data::GenerateJournalData(451, 58, 11, true);
  const data::Dataset complete = ds.FilterCompleteRows();
  const Orientation alpha = Orientation::AllBenefit(5);
  const auto ranker = RpcRanker::Fit(complete.values(), alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(complete);
  const int tkde = complete.LabelIndex("IEEE T KNOWL DATA EN").value();
  const int smca = complete.LabelIndex("IEEE T SYST MAN CY A").value();
  EXPECT_LT(list.PositionOf(tkde), list.PositionOf(smca));
}

TEST(PaperAnchorsTest, JournalTopAnchorsOutrankMidAnchors) {
  const data::Dataset ds = data::GenerateJournalData(451, 58, 11, true);
  const data::Dataset complete = ds.FilterCompleteRows();
  const Orientation alpha = Orientation::AllBenefit(5);
  const auto ranker = RpcRanker::Fit(complete.values(), alpha);
  ASSERT_TRUE(ranker.ok());
  const rank::RankingList list = ranker->RankDataset(complete);
  const auto& anchors = data::Table3Anchors();
  // First five anchors are the paper's top-5, last five its rank 65-69.
  for (size_t top = 0; top < 5; ++top) {
    for (size_t mid = 5; mid < 10; ++mid) {
      const int t = complete.LabelIndex(anchors[top].name).value();
      const int m = complete.LabelIndex(anchors[mid].name).value();
      EXPECT_LT(list.PositionOf(t), list.PositionOf(m))
          << anchors[top].name << " vs " << anchors[mid].name;
    }
  }
}

}  // namespace
}  // namespace rpc
