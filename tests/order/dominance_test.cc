#include "order/dominance.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace rpc::order {
namespace {

using linalg::Matrix;

TEST(DominanceStatsTest, ChainIsFullyComparable) {
  const Matrix chain{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const DominanceStats stats =
      ComputeDominanceStats(chain, Orientation::AllBenefit(2));
  EXPECT_EQ(stats.comparable_pairs, 3);
  EXPECT_EQ(stats.incomparable_pairs, 0);
  EXPECT_DOUBLE_EQ(stats.comparability, 1.0);
}

TEST(DominanceStatsTest, AntichainIsFullyIncomparable) {
  const Matrix antichain{{0.0, 2.0}, {1.0, 1.0}, {2.0, 0.0}};
  const DominanceStats stats =
      ComputeDominanceStats(antichain, Orientation::AllBenefit(2));
  EXPECT_EQ(stats.comparable_pairs, 0);
  EXPECT_DOUBLE_EQ(stats.comparability, 0.0);
}

TEST(DominanceStatsTest, MixedOrientation) {
  const auto alpha = Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha.ok());
  // (0, 2) vs (1, 1): with (+,-) the second dominates the first.
  const Matrix data{{0.0, 2.0}, {1.0, 1.0}};
  const DominanceStats stats = ComputeDominanceStats(data, *alpha);
  EXPECT_EQ(stats.comparable_pairs, 1);
}

TEST(ParetoFrontTest, FrontIsTheBestCornerPoints) {
  const Matrix data{{1.0, 1.0}, {2.0, 0.5}, {0.5, 2.0}, {0.2, 0.2}};
  const auto front = ParetoFront(data, Orientation::AllBenefit(2));
  // (1,1) vs (2,0.5) vs (0.5,2) are mutually incomparable and all dominate
  // or are incomparable with (0.2,0.2), which is dominated by (1,1).
  EXPECT_EQ(front.size(), 3u);
  EXPECT_TRUE(std::find(front.begin(), front.end(), 3) == front.end());
}

TEST(ParetoFrontTest, DuplicatedOptimaAllReported) {
  const Matrix data{{1.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}};
  const auto front = ParetoFront(data, Orientation::AllBenefit(2));
  EXPECT_EQ(front.size(), 2u);
}

TEST(DominanceCountsTest, CountsStrictDominatees) {
  const Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto counts = DominanceCounts(data, Orientation::AllBenefit(2));
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 2);
}

TEST(ParetoLayersTest, LayersPeelInOrder) {
  const Matrix data{{2.0, 2.0}, {1.0, 1.0}, {0.0, 3.0}, {0.5, 0.5}};
  const auto layers = ParetoLayers(data, Orientation::AllBenefit(2));
  // Front: (2,2) and (0,3). Next: (1,1). Last: (0.5,0.5).
  EXPECT_EQ(layers[0], 0);
  EXPECT_EQ(layers[2], 0);
  EXPECT_EQ(layers[1], 1);
  EXPECT_EQ(layers[3], 2);
}

TEST(ParetoLayersTest, EveryRowAssignedOnRandomData) {
  Rng rng(5);
  Matrix data(60, 3);
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 3; ++j) data(i, j) = rng.Uniform();
  }
  const auto layers = ParetoLayers(data, Orientation::AllBenefit(3));
  for (int l : layers) EXPECT_GE(l, 0);
}

TEST(ParetoLayersTest, MonotoneScoreRespectsLayersWithinChains) {
  // Any strictly monotone score must order a dominated point below its
  // dominator; check with the oriented sum on a random cloud.
  Rng rng(6);
  Matrix data(40, 2);
  for (int i = 0; i < 40; ++i) {
    data(i, 0) = rng.Uniform();
    data(i, 1) = rng.Uniform();
  }
  const Orientation alpha = Orientation::AllBenefit(2);
  const auto layers = ParetoLayers(data, alpha);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 40; ++j) {
      if (alpha.StrictlyPrecedes(data.Row(i), data.Row(j))) {
        EXPECT_GE(layers[static_cast<size_t>(i)],
                  layers[static_cast<size_t>(j)])
            << i << " dominated by " << j;
      }
    }
  }
}

TEST(DominanceStatsTest, HigherDimensionsAreLessComparable) {
  // With independent uniforms, P(comparable) = 2 * (1/2)^d.
  Rng rng(7);
  double prev = 1.1;
  for (int d : {1, 2, 4}) {
    Matrix data(120, d);
    for (int i = 0; i < 120; ++i) {
      for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform();
    }
    const DominanceStats stats =
        ComputeDominanceStats(data, Orientation::AllBenefit(d));
    EXPECT_LT(stats.comparability, prev);
    prev = stats.comparability;
  }
}

}  // namespace
}  // namespace rpc::order
