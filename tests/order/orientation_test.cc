#include "order/orientation.h"

#include <gtest/gtest.h>

namespace rpc::order {
namespace {

using linalg::Vector;

TEST(OrientationTest, AllBenefit) {
  const Orientation alpha = Orientation::AllBenefit(3);
  EXPECT_EQ(alpha.dimension(), 3);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(alpha.sign(j), 1);
}

TEST(OrientationTest, FromSignsValidation) {
  EXPECT_TRUE(Orientation::FromSigns({1, -1, 1}).ok());
  EXPECT_FALSE(Orientation::FromSigns({}).ok());
  EXPECT_FALSE(Orientation::FromSigns({1, 0}).ok());
  EXPECT_FALSE(Orientation::FromSigns({2}).ok());
}

TEST(OrientationTest, CornersMatchPaperFormulas) {
  // alpha = (1, 1, -1, -1) as in Example 2: p0 = (1-alpha)/2 = (0,0,1,1),
  // p3 = (1+alpha)/2 = (1,1,0,0).
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(ApproxEqual(alpha->WorstCorner(), Vector{0.0, 0.0, 1.0, 1.0}));
  EXPECT_TRUE(ApproxEqual(alpha->BestCorner(), Vector{1.0, 1.0, 0.0, 0.0}));
  EXPECT_TRUE(ApproxEqual(alpha->AsVector(), Vector{1.0, 1.0, -1.0, -1.0}));
}

TEST(OrientationTest, PrecedesBenefitOnly) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_TRUE(alpha.Precedes(Vector{0.0, 0.0}, Vector{1.0, 1.0}));
  EXPECT_TRUE(alpha.Precedes(Vector{0.0, 0.0}, Vector{0.0, 0.0}));
  EXPECT_FALSE(alpha.Precedes(Vector{1.0, 0.0}, Vector{0.0, 1.0}));
}

TEST(OrientationTest, PrecedesMixedSigns) {
  // Example 2's ordering: xI ⪯ xM ⪯ xG ⪯ xN with alpha = (1,1,-1,-1) on
  // (GDP, LEB, IMR, TB).
  const auto alpha = Orientation::FromSigns({1, 1, -1, -1});
  ASSERT_TRUE(alpha.ok());
  const Vector xi{2.1, 62.7, 75.0, 59.0};
  const Vector xm{11.3, 75.5, 12.0, 30.0};
  const Vector xg{32.1, 79.2, 6.0, 4.0};
  const Vector xn{47.6, 80.1, 3.0, 3.0};
  EXPECT_TRUE(alpha->Precedes(xi, xm));
  EXPECT_TRUE(alpha->Precedes(xm, xg));
  EXPECT_TRUE(alpha->Precedes(xg, xn));
  EXPECT_TRUE(alpha->Precedes(xi, xn));  // transitivity instance
  EXPECT_FALSE(alpha->Precedes(xn, xi));
}

TEST(OrientationTest, StrictPrecedesExcludesEquality) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Vector x{0.5, 0.5};
  EXPECT_FALSE(alpha.StrictlyPrecedes(x, x));
  EXPECT_TRUE(alpha.StrictlyPrecedes(x, Vector{0.5, 0.6}));
}

TEST(OrientationTest, ComparabilityIsPartial) {
  const Orientation alpha = Orientation::AllBenefit(2);
  EXPECT_TRUE(alpha.Comparable(Vector{0.0, 0.0}, Vector{1.0, 1.0}));
  EXPECT_FALSE(alpha.Comparable(Vector{1.0, 0.0}, Vector{0.0, 1.0}));
}

TEST(OrientationTest, AntisymmetryOfOrder) {
  const Orientation alpha = Orientation::AllBenefit(3);
  const Vector x{0.1, 0.2, 0.3};
  const Vector y{0.1, 0.2, 0.3};
  EXPECT_TRUE(alpha.Precedes(x, y));
  EXPECT_TRUE(alpha.Precedes(y, x));
  EXPECT_TRUE(ApproxEqual(x, y));
}

TEST(OrientationTest, FlippedChangesSign) {
  const Orientation alpha = Orientation::AllBenefit(2);
  const Orientation flipped = alpha.Flipped(1);
  EXPECT_EQ(flipped.sign(0), 1);
  EXPECT_EQ(flipped.sign(1), -1);
  // Cost coordinate inverts the comparison.
  EXPECT_TRUE(flipped.Precedes(Vector{0.0, 1.0}, Vector{1.0, 0.0}));
}

TEST(OrientationTest, ToStringFormat) {
  const auto alpha = Orientation::FromSigns({1, -1});
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha->ToString(), "(+1, -1)");
}

}  // namespace
}  // namespace rpc::order
