#include "order/meta_rules.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/stats.h"

namespace rpc::order {
namespace {

using linalg::Matrix;
using linalg::Vector;

// A well-behaved method: equal-weight sum of min-max normalised values.
ScoreFn FitNormalizedSum(const Matrix& data, const Orientation& alpha) {
  const Vector mins = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  return [mins, maxs, alpha](const Vector& x) {
    double score = 0.0;
    for (int j = 0; j < x.size(); ++j) {
      const double range = maxs[j] - mins[j];
      const double normalized =
          range > 0.0 ? (x[j] - mins[j]) / range : 0.5;
      score += alpha.sign(j) > 0 ? normalized : 1.0 - normalized;
    }
    return score;
  };
}

// A deliberately non-invariant method: raw (unnormalised) sum.
ScoreFn FitRawSum(const Matrix&, const Orientation& alpha) {
  return [alpha](const Vector& x) {
    double score = 0.0;
    for (int j = 0; j < x.size(); ++j) score += alpha.sign(j) * x[j];
    return score;
  };
}

Matrix CurvedTestData() {
  // Points on a bent monotone arc plus spread, in raw units.
  Matrix data(24, 2);
  for (int i = 0; i < 24; ++i) {
    const double t = static_cast<double>(i) / 23.0;
    data(i, 0) = 10.0 + 90.0 * t;
    data(i, 1) = 5.0 * std::sqrt(t) + 0.1 * ((i % 3) - 1);
  }
  return data;
}

TEST(MetaRuleInvarianceTest, NormalizedSumPasses) {
  MetaRuleOptions options;
  const Matrix data = CurvedTestData();
  const auto result = CheckScaleTranslationInvariance(
      FitNormalizedSum, data, Orientation::AllBenefit(2), options);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(MetaRuleInvarianceTest, RawSumFails) {
  // Raw sums reweight attributes under rescaling. The data must contain
  // incomparable pairs whose order depends on the attribute weighting
  // (trade-off rows), otherwise every positive weighting agrees.
  MetaRuleOptions options;
  options.invariance_trials = 8;
  Matrix data(10, 2);
  for (int i = 0; i < 10; ++i) {
    data(i, 0) = i;            // ascending
    data(i, 1) = 9.0 - i;      // descending: pure trade-off
  }
  const auto result = CheckScaleTranslationInvariance(
      FitRawSum, data, Orientation::AllBenefit(2), options);
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(MetaRuleMonotonicityTest, MonotoneScorePasses) {
  MetaRuleOptions options;
  const Matrix data = CurvedTestData();
  const ScoreFn score = FitNormalizedSum(data, Orientation::AllBenefit(2));
  const auto result = CheckStrictMonotonicityRule(
      score, data, Orientation::AllBenefit(2), options);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(MetaRuleMonotonicityTest, SingleAttributeScoreFails) {
  MetaRuleOptions options;
  const Matrix data = CurvedTestData();
  const ScoreFn score = [](const Vector& x) { return x[0]; };
  const auto result = CheckStrictMonotonicityRule(
      score, data, Orientation::AllBenefit(2), options);
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(MetaRuleExplicitnessTest, KnownCountPasses) {
  EXPECT_TRUE(CheckExplicitnessRule(8).passed);
  EXPECT_FALSE(CheckExplicitnessRule(std::nullopt).passed);
}

TEST(MetaRuleSmoothnessTest, FallbackDetectsJumpyScore) {
  // A step-function score (rank-like) must fail the fallback probe.
  MetaRuleOptions options;
  const Matrix data = CurvedTestData();
  MethodUnderTest method;
  method.name = "step";
  method.fit = [](const Matrix&, const Orientation&) -> ScoreFn {
    return [](const Vector& x) { return std::floor(4.0 * x[0] / 100.0); };
  };
  const auto result = CheckSmoothnessRule(
      method, data, Orientation::AllBenefit(2), options);
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(MetaRuleSmoothnessTest, FallbackAcceptsContinuousScore) {
  MetaRuleOptions options;
  const Matrix data = CurvedTestData();
  MethodUnderTest method;
  method.name = "smooth";
  method.fit = FitNormalizedSum;
  const auto result = CheckSmoothnessRule(
      method, data, Orientation::AllBenefit(2), options);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(MetaRuleCapacityTest, NotApplicableWithoutSkeleton) {
  MetaRuleOptions options;
  MethodUnderTest method;
  method.name = "no-skeleton";
  method.fit = FitNormalizedSum;
  const auto result = CheckCapacityRule(
      method, CurvedTestData(), Orientation::AllBenefit(2), options);
  EXPECT_FALSE(result.applicable);
  EXPECT_FALSE(result.passed);
}

TEST(MetaRuleReportTest, AllPassedAndToString) {
  MetaRuleReport report;
  report.method_name = "test";
  report.scale_translation_invariance.passed = true;
  report.strict_monotonicity.passed = true;
  report.capacity.passed = true;
  report.smoothness.passed = true;
  report.explicitness.passed = true;
  EXPECT_TRUE(report.AllPassed());
  report.capacity.passed = false;
  EXPECT_FALSE(report.AllPassed());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("strict monotonicity"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace rpc::order
