#include "order/monotonicity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rpc::order {
namespace {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

TEST(CurveMonotonicityTest, MonotoneCubicPasses) {
  const BezierCurve curve(
      Matrix{{0.0, 0.3, 0.7, 1.0}, {0.0, 0.1, 0.9, 1.0}});
  const auto report =
      CheckCurveMonotonicity(curve, Orientation::AllBenefit(2));
  EXPECT_TRUE(report.strictly_monotone);
  EXPECT_GT(report.min_oriented_derivative, 0.0);
  EXPECT_EQ(report.violations, 0);
}

TEST(CurveMonotonicityTest, CostAttributeOrientationRespected) {
  // Second coordinate decreasing: monotone under alpha = (+1, -1).
  const BezierCurve curve(
      Matrix{{0.0, 0.3, 0.7, 1.0}, {1.0, 0.9, 0.1, 0.0}});
  const auto plus = Orientation::FromSigns({1, -1});
  ASSERT_TRUE(plus.ok());
  EXPECT_TRUE(CheckCurveMonotonicity(curve, *plus).strictly_monotone);
  // And non-monotone under all-benefit.
  EXPECT_FALSE(CheckCurveMonotonicity(curve, Orientation::AllBenefit(2))
                   .strictly_monotone);
}

TEST(CurveMonotonicityTest, NonMonotoneCurveFlagged) {
  // y coordinate rises then falls (parabola-like).
  const BezierCurve curve(
      Matrix{{0.0, 0.3, 0.7, 1.0}, {0.0, 1.5, 1.5, 0.0}});
  const auto report =
      CheckCurveMonotonicity(curve, Orientation::AllBenefit(2));
  EXPECT_FALSE(report.strictly_monotone);
  EXPECT_GT(report.violations, 0);
  EXPECT_EQ(report.worst_dimension, 1);
  EXPECT_LT(report.min_oriented_derivative, 0.0);
}

TEST(CurveMonotonicityTest, Proposition1HoldsForRandomInteriorPoints) {
  // Property sweep behind Proposition 1: any cubic with corner end points
  // and interior control points is strictly monotone.
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(5));
    std::vector<int> signs(static_cast<size_t>(d));
    for (int j = 0; j < d; ++j) {
      signs[static_cast<size_t>(j)] = rng.Uniform() < 0.5 ? 1 : -1;
    }
    const auto alpha = Orientation::FromSigns(signs);
    ASSERT_TRUE(alpha.ok());
    Matrix control(d, 4);
    control.SetColumn(0, alpha->WorstCorner());
    control.SetColumn(3, alpha->BestCorner());
    for (int j = 0; j < d; ++j) {
      control(j, 1) = rng.Uniform(0.001, 0.999);
      control(j, 2) = rng.Uniform(0.001, 0.999);
    }
    const auto report =
        CheckCurveMonotonicity(BezierCurve(control), *alpha, 256);
    EXPECT_TRUE(report.strictly_monotone)
        << "trial " << trial << ": " << report.ToString();
  }
}

TEST(CurveMonotonicityTest, BoundaryControlPointsLoseStrictness) {
  // b1 -> 1, b2 -> 0 gives f'(0.5) = 0: the degenerate case excluded by the
  // open-cube requirement.
  const BezierCurve curve(Matrix{{0.0, 1.0, 0.0, 1.0}});
  const auto report =
      CheckCurveMonotonicity(curve, Orientation::AllBenefit(1), 512);
  EXPECT_FALSE(report.strictly_monotone);
}

TEST(ScoreMonotonicityTest, LinearScorePasses) {
  const auto score = [](const Vector& x) { return x[0] + 2.0 * x[1]; };
  Rng rng(5);
  Matrix points(40, 2);
  for (int i = 0; i < 40; ++i) {
    points(i, 0) = rng.Uniform();
    points(i, 1) = rng.Uniform();
  }
  const auto report = CheckScoreMonotonicity(
      score, points, Orientation::AllBenefit(2));
  EXPECT_GT(report.comparable_pairs, 0);
  EXPECT_TRUE(report.strictly_monotone());
}

TEST(ScoreMonotonicityTest, SingleCoordinateScoreTies) {
  // Ignoring x2 produces strict-tie violations for pairs differing only in
  // x2 — exactly Example 1's x1/x2 failure.
  const auto score = [](const Vector& x) { return x[0]; };
  Matrix points{{58.0, 1.4}, {58.0, 16.2}, {60.0, 5.0}};
  const auto report = CheckScoreMonotonicity(
      score, points, Orientation::AllBenefit(2));
  EXPECT_FALSE(report.strictly_monotone());
  EXPECT_GE(report.ties, 1);
  EXPECT_EQ(report.violations, 0);
}

TEST(ScoreMonotonicityTest, AntitoneScoreViolates) {
  const auto score = [](const Vector& x) { return -x[0] - x[1]; };
  Matrix points{{0.0, 0.0}, {1.0, 1.0}};
  const auto report = CheckScoreMonotonicity(
      score, points, Orientation::AllBenefit(2));
  EXPECT_EQ(report.comparable_pairs, 1);
  EXPECT_EQ(report.violations, 1);
}

TEST(ScoreMonotonicityTest, IncomparablePairsSkipped) {
  const auto score = [](const Vector& x) { return x[0]; };
  Matrix points{{1.0, 0.0}, {0.0, 1.0}};
  const auto report = CheckScoreMonotonicity(
      score, points, Orientation::AllBenefit(2));
  EXPECT_EQ(report.comparable_pairs, 0);
}

}  // namespace
}  // namespace rpc::order
