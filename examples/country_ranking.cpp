// Country life-quality ranking — the Section 6.2.1 workload end to end:
// GAPMINDER-like data (171 countries x {GDP, LEB, IMR, TB}), RPC vs the
// Elmap and first-PCA baselines, explained variance, and the learned
// control points in original units (Table 2's bottom rows).
//
//   build/examples/country_ranking [n_countries] [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/elmap.h"
#include "core/interpretation.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/first_pca.h"
#include "rank/metrics.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 171;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const rpc::data::Dataset countries =
      rpc::data::GenerateCountryData(n, seed, /*include_anchors=*/true);
  const auto alpha = rpc::order::Orientation::FromSigns({+1, +1, -1, -1});
  if (!alpha.ok()) return 1;
  std::printf("Ranking %d countries on %s with alpha = %s\n\n",
              countries.num_objects(), "GDP, LEB, IMR, Tuberculosis",
              alpha->ToString().c_str());

  const auto rpc_ranker =
      rpc::core::RpcRanker::FitDataset(countries, *alpha);
  if (!rpc_ranker.ok()) {
    std::fprintf(stderr, "RPC fit failed: %s\n",
                 rpc_ranker.status().ToString().c_str());
    return 1;
  }
  const rpc::rank::RankingList list = rpc_ranker->RankDataset(countries);
  std::printf("Top of the list:\n%s\n", list.ToTableString(8).c_str());

  // Baselines for context.
  const auto elmap =
      rpc::baselines::ElmapCurve::Fit(countries.values(), *alpha);
  const auto pca =
      rpc::rank::FirstPcaRanker::Fit(countries.values(), *alpha);
  if (elmap.ok() && pca.ok()) {
    const rpc::linalg::Vector rpc_scores =
        rpc_ranker->ScoreRows(countries.values());
    const rpc::linalg::Vector elmap_scores =
        elmap->ScoreRows(countries.values());
    const rpc::linalg::Vector pca_scores =
        pca->ScoreRows(countries.values());
    std::printf("Agreement with baselines (Kendall tau-b):\n");
    std::printf("  RPC vs Elmap     %.3f\n",
                rpc::rank::KendallTauB(rpc_scores, elmap_scores));
    std::printf("  RPC vs first PCA %.3f\n\n",
                rpc::rank::KendallTauB(rpc_scores, pca_scores));

    const rpc::linalg::Matrix normalized =
        rpc_ranker->normalizer().Transform(countries.values());
    std::printf("Explained variance (normalised space):\n");
    std::printf("  RPC   %.1f%%\n",
                100.0 * rpc::rank::ExplainedVariance(
                            rpc_ranker->fit_result().final_j, normalized));
    std::printf("  Elmap %.1f%%\n\n",
                100.0 * rpc::rank::ExplainedVariance(elmap->residual_j(),
                                                     normalized));
  }

  // The interpretable model: control points back in original units.
  const rpc::linalg::Matrix points =
      rpc_ranker->ControlPointsInOriginalSpace();
  std::printf("Learned control/end points (original units):\n");
  std::printf("%-4s %12s %8s %8s %8s\n", "", "GDP", "LEB", "IMR", "TB");
  for (int r = 0; r < points.rows(); ++r) {
    std::printf("p%-3d %12.1f %8.2f %8.1f %8.1f\n", r, points(r, 0),
                points(r, 1), points(r, 2), points(r, 3));
  }
  std::printf("\n%s", rpc::core::InterpretationReport(
                          rpc_ranker->curve(), countries.attribute_names())
                          .c_str());
  return 0;
}
