// Meta-rule audit — Section 3 in executable form: evaluate the five
// meta-rules (scale/translation invariance, strict monotonicity,
// linear/nonlinear capacity, smoothness, explicit parameter size) for the
// RPC and every baseline on the same dataset.
//
//   build/examples/meta_rule_audit [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/elmap.h"
#include "baselines/polyline_curve.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "order/meta_rules.h"
#include "rank/first_pca.h"
#include "rank/rank_aggregation.h"
#include "rank/weighted_sum.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::MethodUnderTest;
using rpc::order::Orientation;
using rpc::order::ScoreFn;

MethodUnderTest RpcMethod() {
  MethodUnderTest method;
  method.name = "RPC (this paper)";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    auto ranker = rpc::core::RpcRanker::Fit(data, alpha);
    auto shared = std::make_shared<rpc::core::RpcRanker>(
        std::move(ranker).value());
    return [shared](const Vector& x) { return shared->Score(x); };
  };
  method.skeleton = [](const Matrix& data, const Orientation& alpha,
                       int grid) -> Matrix {
    auto ranker = rpc::core::RpcRanker::Fit(data, alpha);
    return ranker->SampleSkeletonRaw(grid);
  };
  method.parameter_count = 0;  // set per dataset below (4d)
  return method;
}

MethodUnderTest PcaMethod() {
  MethodUnderTest method;
  method.name = "First PCA";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    auto ranker = rpc::rank::FirstPcaRanker::Fit(data, alpha);
    auto shared = std::make_shared<rpc::rank::FirstPcaRanker>(
        std::move(ranker).value());
    return [shared](const Vector& x) { return shared->Score(x); };
  };
  method.skeleton = [](const Matrix& data, const Orientation& alpha,
                       int grid) -> Matrix {
    auto ranker = rpc::rank::FirstPcaRanker::Fit(data, alpha);
    return ranker->SampleSkeleton(grid);
  };
  return method;
}

MethodUnderTest ElmapMethod() {
  MethodUnderTest method;
  method.name = "Elmap";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    auto model = rpc::baselines::ElmapCurve::Fit(data, alpha);
    auto shared = std::make_shared<rpc::baselines::ElmapCurve>(
        std::move(model).value());
    return [shared](const Vector& x) { return shared->Score(x); };
  };
  method.skeleton = [](const Matrix& data, const Orientation& alpha,
                       int grid) -> Matrix {
    auto model = rpc::baselines::ElmapCurve::Fit(data, alpha);
    return model->SampleSkeletonRaw(grid);
  };
  return method;  // parameter_count left unknown: size not known a priori
}

MethodUnderTest PolylineMethod() {
  MethodUnderTest method;
  method.name = "Polyline PC";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    auto model = rpc::baselines::PolylineCurve::Fit(data, alpha);
    auto shared = std::make_shared<rpc::baselines::PolylineCurve>(
        std::move(model).value());
    return [shared](const Vector& x) { return shared->Score(x); };
  };
  method.skeleton = [](const Matrix& data, const Orientation& alpha,
                       int grid) -> Matrix {
    auto model = rpc::baselines::PolylineCurve::Fit(data, alpha);
    return model->SampleSkeletonRaw(grid);
  };
  return method;
}

MethodUnderTest WeightedSumMethod() {
  MethodUnderTest method;
  method.name = "Weighted sum";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    auto ranker = rpc::rank::WeightedSumRanker::FitEqualWeights(data, alpha);
    auto shared = std::make_shared<rpc::rank::WeightedSumRanker>(
        std::move(ranker).value());
    return [shared](const Vector& x) { return shared->Score(x); };
  };
  // Its skeleton is the diagonal line; report none so capacity is judged
  // not-applicable rather than by a degenerate skeleton.
  method.parameter_count = 0;  // set below (d)
  return method;
}

MethodUnderTest RankAggMethod() {
  MethodUnderTest method;
  method.name = "RankAgg (Eq. 30)";
  method.fit = [](const Matrix& data, const Orientation& alpha) -> ScoreFn {
    // Extend the aggregate to arbitrary x: position of each coordinate
    // within the training column, averaged — a step function.
    auto columns = std::make_shared<std::vector<std::vector<double>>>();
    for (int j = 0; j < data.cols(); ++j) {
      std::vector<double> column(static_cast<size_t>(data.rows()));
      for (int i = 0; i < data.rows(); ++i) column[i] = data(i, j);
      std::sort(column.begin(), column.end());
      columns->push_back(std::move(column));
    }
    const Orientation alpha_copy = alpha;
    return [columns, alpha_copy](const Vector& x) {
      double total = 0.0;
      for (int j = 0; j < x.size(); ++j) {
        const auto& column = (*columns)[static_cast<size_t>(j)];
        const double below = static_cast<double>(
            std::lower_bound(column.begin(), column.end(), x[j]) -
            column.begin());
        total += alpha_copy.sign(j) > 0
                     ? below
                     : static_cast<double>(column.size()) - below;
      }
      return total / x.size();
    };
  };
  return method;  // nonparametric: no parameter_count
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const auto alpha_result = Orientation::FromSigns({+1, +1, -1});
  if (!alpha_result.ok()) return 1;
  const Orientation alpha = *alpha_result;
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha, {.n = 120, .noise_sigma = 0.03, .control_margin = 0.1,
                  .seed = seed});
  // Scale the cloud into "raw units" so the invariance rule is non-trivial.
  Matrix raw(sample.data.rows(), 3);
  for (int i = 0; i < raw.rows(); ++i) {
    raw(i, 0) = 300.0 + 70000.0 * sample.data(i, 0);
    raw(i, 1) = 40.0 + 43.0 * sample.data(i, 1);
    raw(i, 2) = 2.0 + 420.0 * sample.data(i, 2);
  }

  std::vector<MethodUnderTest> methods = {RpcMethod(),        PcaMethod(),
                                          ElmapMethod(),      PolylineMethod(),
                                          WeightedSumMethod(), RankAggMethod()};
  methods[0].parameter_count = 4 * raw.cols();  // RPC: 4d
  methods[1].parameter_count = 2 * raw.cols();  // PCA: w and mu
  methods[4].parameter_count = raw.cols();      // weighted sum: d weights

  rpc::order::MetaRuleOptions options;
  options.seed = seed;
  for (const MethodUnderTest& method : methods) {
    const rpc::order::MetaRuleReport report =
        rpc::order::EvaluateMetaRules(method, raw, alpha, options);
    std::printf("%s", report.ToString().c_str());
    std::printf("  => %s\n\n",
                report.AllPassed() ? "satisfies all five meta-rules"
                                   : "breaks at least one meta-rule");
  }
  return 0;
}
