// telemetry_demo — the observability subsystem end to end:
//
//   1. Serve a workload (two datasets, mixed batch sizes, a coalesced
//      pair) so the registry fills with real counters and histograms.
//   2. Trace one query with an explicit trace id and reconstruct its
//      span timeline (admission -> queued -> execute) from the rings.
//   3. Slow-query log: a threshold routes offending queries — with their
//      span timelines — through a TelemetrySink.
//   4. Exporters: the Prometheus text scrape and the JSON snapshot,
//      plus the PeriodicFlusher that emits the latter on a cadence.
//
//   build/examples/telemetry_demo                # narrated walk-through
//   build/examples/telemetry_demo --prometheus   # raw scrape text only
//
// The --prometheus mode is what CI pipes into ci/check_metrics_format.py.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace {

using rpc::Rng;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::serve::RankingService;

rpc::core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  rpc::core::PortableRpcModel model;
  model.alpha = rpc::order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bool prometheus_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prometheus") == 0) prometheus_only = true;
  }

  // -- 1. a serving workload that populates the registry ----------------
  rpc::obs::VectorSink sink;
  RankingService::Options options;
  options.telemetry_sink = &sink;
  options.slow_query_threshold = std::chrono::nanoseconds(1);  // log all
  options.max_coalesce_delay = std::chrono::milliseconds(1);
  RankingService service(options);
  for (const char* id : {"countries", "journals"}) {
    const rpc::Status registered = service.RegisterDataset(
        id, MonotoneModel(id[0] == 'c' ? 4 : 6, id[0]));
    if (!registered.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
  }
  for (int i = 0; i < 32; ++i) {
    const char* id = (i % 2 == 0) ? "countries" : "journals";
    const int d = (i % 2 == 0) ? 4 : 6;
    const auto batch =
        service.Query(id, RandomRows(1 + (i % 3) * 40, d,
                                     100 + static_cast<uint64_t>(i)));
    if (!batch.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
  }

  // -- 2. one traced query, timeline reconstructed from the rings -------
  const rpc::obs::TraceId trace = 0xDE40;  // explicit id forces tracing
  rpc::serve::QueryOptions traced;
  traced.trace_id = trace;
  const auto traced_batch =
      service.Query("countries", RandomRows(64, 4, 7), traced);
  if (!traced_batch.ok()) {
    std::fprintf(stderr, "traced query failed: %s\n",
                 traced_batch.status().ToString().c_str());
    return 1;
  }

  if (prometheus_only) {
    // Raw scrape text on stdout, nothing else — CI parses this.
    std::fputs(rpc::obs::PrometheusText().c_str(), stdout);
    return 0;
  }

  std::printf("== traced query timeline (trace_id=%llu) ==\n",
              static_cast<unsigned long long>(trace));
  const std::vector<rpc::obs::SpanRecord> spans =
      rpc::obs::CollectTrace(trace);
  if (spans.empty()) {
    std::printf("(no spans: RPC_OBS_DISABLED build)\n");
  }
  for (const rpc::obs::SpanRecord& span : spans) {
    std::printf("  %-16s thread=%u  +%8.1f us  dur=%8.1f us\n", span.name,
                span.thread,
                static_cast<double>(span.start_ns - spans[0].start_ns) / 1e3,
                static_cast<double>(span.end_ns - span.start_ns) / 1e3);
  }

  // -- 3. the slow-query log the sink captured ---------------------------
  const auto slow = sink.EventsOfKind("slow_query");
  std::printf("\n== slow-query log (%zu events, threshold 1ns) ==\n",
              slow.size());
  if (!slow.empty()) {
    std::printf("last: %.240s...\n", slow.back().payload.c_str());
  }

  // -- 4. exporters ------------------------------------------------------
  {
    rpc::obs::PeriodicFlusher::Options flush_options;
    flush_options.period = std::chrono::milliseconds(20);
    rpc::obs::PeriodicFlusher flusher(&sink, flush_options);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // destructor emits one final "metrics" snapshot
  std::printf("\n== PeriodicFlusher emitted %zu metrics snapshot(s) ==\n",
              sink.EventsOfKind("metrics").size());

  const std::string json = rpc::obs::JsonSnapshot();
  std::printf("\n== JSON snapshot: %zu bytes ==\n%.400s...\n", json.size(),
              json.c_str());

  std::printf("\n== Prometheus scrape ==\n%s",
              rpc::obs::PrometheusText().c_str());
  return 0;
}
