// Feature selection with RPCs — the Section 7 "future work" direction made
// concrete: rank the indicators of the journal dataset by how much of the
// comprehensive order each carries, then greedily pick the smallest subset
// whose RPC ranking still matches the full list.
//
//   build/examples/feature_selection [target_tau]
#include <cstdio>
#include <cstdlib>

#include "core/feature_selection.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  const double target_tau = argc > 1 ? std::atof(argv[1]) : 0.9;

  const rpc::data::Dataset journals =
      rpc::data::GenerateJournalData(451, 58, 11, true).FilterCompleteRows();
  const auto alpha = rpc::order::Orientation::AllBenefit(5);
  const auto ranker = rpc::core::RpcRanker::Fit(journals.values(), alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 ranker.status().ToString().c_str());
    return 1;
  }

  const auto importances = rpc::core::RankAttributes(*ranker, journals);
  if (!importances.ok()) {
    std::fprintf(stderr, "%s\n", importances.status().ToString().c_str());
    return 1;
  }
  std::printf("Indicator importance for the comprehensive journal order:\n");
  std::printf("%-16s %18s %14s\n", "indicator", "|Spearman| vs RPC",
              "nonlinearity");
  for (const auto& imp : *importances) {
    std::printf("%-16s %18.3f %14.3f\n", imp.name.c_str(),
                imp.score_alignment, imp.nonlinearity);
  }

  const auto selection = rpc::core::GreedySelectAttributes(
      journals, alpha, target_tau);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  std::printf("\nGreedy forward selection toward Kendall tau-b >= %.2f:\n",
              target_tau);
  for (size_t step = 0; step < selection->selected.size(); ++step) {
    std::printf("  + %-16s -> tau %.3f\n",
                journals.attribute_name(selection->selected[step]).c_str(),
                selection->tau_trajectory[step]);
  }
  std::printf(
      "\n%zu of %d indicators reproduce the full ranking to tau %.3f.\n",
      selection->selected.size(), journals.num_attributes(),
      selection->achieved_tau);
  return 0;
}
