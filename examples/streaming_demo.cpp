// streaming_demo — continuous ranking: objects keep arriving while the
// model is being served, and the principal curve follows them without a
// stop-the-world refit.
//
//   1. Start: cold-fit an RPC model on the initial rows, publish version 1
//      into serve::RankingService.
//   2. Append: stream new observations through the bounded ingestion
//      queue; each is projected once onto the live curve and is servable
//      immediately.
//   3. Drift policy: after enough appends (or enough normalisation-bound
//      drift) the StreamingRanker snapshots its store and runs a *warm*
//      refit in the background — seeded with the live control points and
//      per-row s*, a few warm iterations instead of a cold fit.
//   4. Version swap: the refreshed model is registered as a new immutable
//      version; in-flight queries never see a torn model, and the served
//      scores match the snapshot model's own scoring bit for bit.
//
//   build/examples/streaming_demo
#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

int main() {
  using rpc::linalg::Matrix;
  using rpc::linalg::Vector;

  const auto alpha = *rpc::order::Orientation::FromSigns({+1, +1, -1});
  const Matrix initial =
      rpc::data::GenerateLatentCurveData(
          alpha, {.n = 300, .noise_sigma = 0.05, .control_margin = 0.1,
                  .seed = 7})
          .data;

  std::printf("== 1. start: cold fit on %d rows, publish version 1 ==\n",
              initial.rows());
  rpc::serve::RankingService service;
  rpc::stream::StreamingRankerOptions options;
  options.drift.refit_on_row_delta = 50;        // refresh every 50 events
  options.drift.refit_on_normalizer_drift = 0.05;  // ... or on 5% drift
  rpc::stream::StreamingRanker ranker(&service, "live", options);
  const rpc::Status started = ranker.Start(initial, alpha);
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("   serving dataset 'live' at version %llu\n",
              static_cast<unsigned long long>(*service.DatasetVersion("live")));

  std::printf("== 2. stream 160 fresh objects through the queue ==\n");
  rpc::Rng rng(99);
  for (int a = 0; a < 160; ++a) {
    Vector row = initial.Row(static_cast<int>(rng.UniformInt(initial.rows())));
    for (int j = 0; j < row.size(); ++j) row[j] *= rng.Uniform(0.95, 1.08);
    const auto id = ranker.Append(row);
    if (!id.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (!ranker.Flush().ok()) return 1;

  const rpc::stream::StreamStats stats = ranker.stats();
  std::printf("   appended %lld rows; %lld background warm refreshes "
              "(last %.1f ms), drift %.4f\n",
              static_cast<long long>(stats.appended),
              static_cast<long long>(stats.refreshes),
              1e3 * stats.last_refresh_seconds, stats.last_drift);

  std::printf("== 3. ranks refresh as versions swap ==\n");
  const auto snapshot = ranker.snapshot();
  const auto version = service.DatasetVersion("live");
  if (!version.ok() || *version != snapshot.version) {
    std::fprintf(stderr, "served version out of sync\n");
    return 1;
  }
  std::printf("   now serving version %llu over %d live rows\n",
              static_cast<unsigned long long>(*version),
              snapshot.scores.size());

  // Query the served model and check it against the snapshot's own
  // scoring — the bit-identity guarantee across versioned swaps.
  Matrix probe(5, 3);
  for (int i = 0; i < probe.rows(); ++i) {
    probe.SetRow(i, initial.Row(17 * i + 3));
  }
  const auto batch = service.Query("live", probe);
  if (!batch.ok()) return 1;
  for (int i = 0; i < probe.rows(); ++i) {
    const auto expected = snapshot.model.Score(probe.Row(i));
    if (!expected.ok() || batch->scores[i] != *expected) {
      std::fprintf(stderr, "served score mismatch on probe %d\n", i);
      return 1;
    }
    std::printf("   probe %d: score %.6f rank %d/%d\n", i, batch->scores[i],
                batch->ranks[static_cast<size_t>(i)], probe.rows());
  }

  std::printf("== 4. retire one initial row and refresh once more ==\n");
  if (!ranker.Retire(0).ok() || !ranker.ForceRefresh().ok()) return 1;
  std::printf("   version %llu after retirement refresh\n",
              static_cast<unsigned long long>(*service.DatasetVersion("live")));
  std::printf("streaming demo done\n");
  return 0;
}
