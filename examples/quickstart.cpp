// Quickstart: rank a handful of multi-attribute objects with a Ranking
// Principal Curve in ~30 lines of user code.
//
//   build/examples/quickstart
//
// The data are six fictional laptops scored on battery life (hours, higher
// is better), weight (kg, lower is better) and price ($, lower is better).
#include <cstdio>

#include "core/interpretation.h"
#include "core/rpc_ranker.h"
#include "data/dataset.h"
#include "order/orientation.h"

int main() {
  // 1. Assemble the observations. Rows are objects, columns attributes.
  rpc::data::Dataset laptops;
  laptops.AppendRow("Featherlight", rpc::linalg::Vector{9.0, 1.1, 1800.0});
  laptops.AppendRow("Workhorse", rpc::linalg::Vector{12.0, 2.2, 1400.0});
  laptops.AppendRow("Budgeteer", rpc::linalg::Vector{6.5, 2.0, 600.0});
  laptops.AppendRow("Slab", rpc::linalg::Vector{4.0, 3.1, 700.0});
  laptops.AppendRow("Allrounder", rpc::linalg::Vector{10.0, 1.6, 1100.0});
  laptops.AppendRow("Relic", rpc::linalg::Vector{3.0, 2.9, 350.0});
  rpc::Status named = laptops.SetAttributeNames(
      {"battery_h", "weight_kg", "price_usd"});
  if (!named.ok()) {
    std::fprintf(stderr, "%s\n", named.ToString().c_str());
    return 1;
  }

  // 2. Declare the orientation: +1 = higher is better, -1 = lower is
  //    better (the alpha vector of the paper, Eq. 2-3).
  const auto alpha = rpc::order::Orientation::FromSigns({+1, -1, -1});
  if (!alpha.ok()) {
    std::fprintf(stderr, "%s\n", alpha.status().ToString().c_str());
    return 1;
  }

  // 3. Fit the ranking principal curve (normalisation + Algorithm 1).
  const auto ranker = rpc::core::RpcRanker::FitDataset(laptops, *alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 ranker.status().ToString().c_str());
    return 1;
  }

  // 4. Print the ranking list (position 1 = best).
  std::printf("Laptop ranking by RPC score (s in [0,1], higher = better)\n");
  std::printf("%s\n", ranker->RankDataset(laptops).ToTableString().c_str());

  // 5. Score a new, unseen object against the learned curve.
  const rpc::linalg::Vector newcomer{8.0, 1.4, 900.0};
  std::printf("Newcomer (8h, 1.4kg, $900) scores %.4f\n\n",
              ranker->Score(newcomer));

  // 6. Interpret the learned curve: the model is four points per
  //    attribute, classified into the Fig. 4 shapes.
  std::printf("%s", rpc::core::InterpretationReport(
                        ranker->curve(), laptops.attribute_names())
                        .c_str());
  std::printf(
      "\nDiagnostics: J = %.5f, explained variance = %.1f%%, %d iterations, "
      "curve strictly monotone: %s\n",
      ranker->fit_result().final_j,
      100.0 * ranker->fit_result().explained_variance,
      ranker->fit_result().iterations,
      ranker->curve().CheckMonotonicity().strictly_monotone ? "yes" : "no");
  return 0;
}
