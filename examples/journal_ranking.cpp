// Journal ranking — the Section 6.2.2 workload: JCR2012-like citation data
// (451 journals, 58 with missing cells), the filtering step, and the
// comprehensive RPC list including the TKDE-vs-SMCA inversion the paper
// discusses.
//
//   build/examples/journal_ranking [total] [missing] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/rank_aggregation.h"

int main(int argc, char** argv) {
  const int total = argc > 1 ? std::atoi(argv[1]) : 451;
  const int missing = argc > 2 ? std::atoi(argv[2]) : 58;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  const rpc::data::Dataset journals = rpc::data::GenerateJournalData(
      total, missing, seed, /*include_anchors=*/true);
  std::printf("Loaded %d journals; %d with missing data are removed "
              "(Section 6.2.2's 58-of-451 step).\n",
              journals.num_objects(), journals.CountIncompleteRows());
  const rpc::data::Dataset complete = journals.FilterCompleteRows();
  std::printf("Ranking %d complete journals on IF, 5-year IF, Immediacy, "
              "Eigenfactor, Influence (all benefit attributes).\n\n",
              complete.num_objects());

  const auto alpha = rpc::order::Orientation::AllBenefit(5);
  const auto ranker = rpc::core::RpcRanker::Fit(complete.values(), alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 ranker.status().ToString().c_str());
    return 1;
  }
  const rpc::rank::RankingList list = ranker->RankDataset(complete);
  std::printf("Top journals:\n%s\n", list.ToTableString(8).c_str());

  // The single-indicator story: per-indicator positions vs the RPC list.
  const auto show = [&](const char* label) {
    const auto idx = complete.LabelIndex(label);
    if (!idx.ok()) return;
    std::printf("%-22s RPC position %3d | per-indicator positions:", label,
                list.PositionOf(idx.value()));
    for (int j = 0; j < complete.num_attributes(); ++j) {
      const rpc::linalg::Vector ranks = rpc::rank::RanksFromScores(
          complete.values().Column(j), /*ascending=*/false);
      std::printf(" %s=%d", complete.attribute_name(j).c_str(),
                  static_cast<int>(ranks[idx.value()]));
    }
    std::printf("\n");
  };
  std::printf("One indicator does not tell the whole story (Table 3):\n");
  show("IEEE T KNOWL DATA EN");
  show("IEEE T SYST MAN CY A");
  show("ENTERP INF SYST UK");
  show("ACM COMPUT SURV");

  const auto tkde = complete.LabelIndex("IEEE T KNOWL DATA EN");
  const auto smca = complete.LabelIndex("IEEE T SYST MAN CY A");
  if (tkde.ok() && smca.ok()) {
    std::printf(
        "\nTKDE %s SMCA in the comprehensive list (paper: TKDE above, "
        "despite SMCA's higher Impact Factor).\n",
        list.PositionOf(tkde.value()) < list.PositionOf(smca.value())
            ? "above"
            : "below");
  }
  return 0;
}
