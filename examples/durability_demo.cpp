// durability_demo — crash-safe streaming: every applied event goes through
// a checksummed write-ahead log, milestone snapshots bound the replay, and
// Recover() rebuilds the exact pre-crash ranker.
//
//   1. Start a durable StreamingRanker: the durability directory gets a
//      base snapshot and a segmented event log.
//   2. Ingest appends and retirements; Flush() is the acknowledgment
//      boundary (records synced to disk).
//   3. Kill the process mid-write at a fault-injection point (torn tail
//      write by default; set RPC_DURABLE_FAILPOINT to any of
//      torn_tail_write, checksum_flip, partial_snapshot,
//      crash_between_fsync_and_rename — optionally ":N" for the N-th hit).
//   4. Recover() on the crash image: load the newest intact snapshot,
//      replay the log tail, cut the torn record, re-publish the served
//      model — then verify the served scores bit-for-bit against a
//      replica that never crashed.
//
//   build/examples/durability_demo
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "data/generators.h"
#include "durable/fault_injector.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

namespace {

std::string MakeTempDir() {
  char templ[] = "/tmp/rpc_durability_demo_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main() {
  using rpc::linalg::Matrix;
  using rpc::linalg::Vector;

  const auto alpha = *rpc::order::Orientation::FromSigns({+1, +1, -1});
  const Matrix initial =
      rpc::data::GenerateLatentCurveData(
          alpha, {.n = 250, .noise_sigma = 0.05, .control_margin = 0.1,
                  .seed = 7})
          .data;

  const std::string live_dir = MakeTempDir();
  const std::string crash_dir = MakeTempDir();
  if (live_dir.empty() || crash_dir.empty()) return 1;
  RemoveDir(crash_dir);  // recreated below as an exact crash image

  const char* spec_env = std::getenv("RPC_DURABLE_FAILPOINT");
  const std::string spec = spec_env != nullptr ? spec_env : "torn_tail_write";
  auto injector = std::make_shared<rpc::durable::FaultInjector>();

  rpc::stream::StreamingRankerOptions options;
  options.num_threads = 1;  // deterministic: crashed vs reference is exact
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.learner.seed = 42;
  options.durability.dir = live_dir;
  options.durability.snapshot_every_events = 50;
  options.durability.injector = injector;

  rpc::stream::StreamingRankerOptions plain = options;
  plain.durability = {};  // the never-crashed replica runs without a log

  std::printf("== 1. start durable ranker (WAL + snapshots in %s) ==\n",
              live_dir.c_str());
  rpc::serve::RankingService crashed_service, reference_service;
  rpc::stream::StreamingRanker reference(&reference_service, "live", plain);
  if (!reference.Start(initial, alpha).ok()) return 1;

  {
    rpc::stream::StreamingRanker ranker(&crashed_service, "live", options);
    if (!ranker.Start(initial, alpha).ok()) return 1;

    std::printf("== 2. ingest 120 appends + 3 retirements, then Flush ==\n");
    const auto drive = [&](rpc::stream::StreamingRanker* target) {
      rpc::Rng replay(99);
      for (int a = 0; a < 120; ++a) {
        Vector row =
            initial.Row(static_cast<int>(replay.UniformInt(initial.rows())));
        for (int j = 0; j < row.size(); ++j) {
          row[j] *= replay.Uniform(0.95, 1.08);
        }
        if (!target->Append(row).ok()) return false;
      }
      return target->Retire(3).ok() && target->Retire(11).ok() &&
             target->Retire(19).ok();
    };
    if (!drive(&ranker) || !drive(&reference)) return 1;
    if (!ranker.ForceRefresh().ok() || !reference.ForceRefresh().ok()) {
      return 1;
    }
    if (!ranker.Flush().ok() || !reference.Flush().ok()) return 1;
    std::printf("   acknowledged: %lld log records staged and synced\n",
                static_cast<long long>(ranker.stats().wal_records));

    std::printf("== 3. kill -9 at failpoint '%s' ==\n", spec.c_str());
    if (!injector->ArmFromSpec(spec).ok()) {
      std::fprintf(stderr, "bad RPC_DURABLE_FAILPOINT spec '%s'\n",
                   spec.c_str());
      return 1;
    }
    // These arrivals were never acknowledged; the armed fault fires while
    // they are being made durable.
    for (int a = 0; a < 60; ++a) {
      Vector row = initial.Row(a % initial.rows());
      for (int j = 0; j < row.size(); ++j) row[j] *= 1.01;
      (void)ranker.Append(row);
    }
    (void)ranker.Flush();
    if (!injector->crashed()) {
      std::fprintf(stderr, "failpoint '%s' never fired\n", spec.c_str());
      return 1;
    }
    // Freeze the on-disk state at the instant of the crash, while the
    // process is still "up" — a faithful kill -9 image.
    std::error_code ec;
    std::filesystem::copy(live_dir, crash_dir,
                          std::filesystem::copy_options::recursive, ec);
    if (ec) return 1;
    std::printf("   crashed with %lld durable errors; image frozen\n",
                static_cast<long long>(ranker.stats().durable_errors));
  }

  std::printf("== 4. Recover() on the crash image ==\n");
  rpc::stream::StreamingRankerOptions recover_options = options;
  recover_options.durability.dir = crash_dir;
  recover_options.durability.injector = nullptr;
  rpc::serve::RankingService recovered_service;
  rpc::stream::StreamingRanker recovered(&recovered_service, "live",
                                         recover_options);
  const rpc::Status status = recovered.Recover();
  if (!status.ok()) {
    std::fprintf(stderr, "recover failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto info = recovered.recovery_info();
  std::printf("   snapshot %s + %llu replayed records%s\n",
              std::filesystem::path(info.snapshot_path).filename().c_str(),
              static_cast<unsigned long long>(info.replayed_records),
              info.tail_truncated ? " (torn tail cut)" : "");

  // The recovered ranker must serve exactly what a replica that processed
  // the same acknowledged events — and never crashed — serves.
  const auto version = recovered_service.DatasetVersion("live");
  const auto want_version = reference_service.DatasetVersion("live");
  if (!version.ok() || !want_version.ok() || *version != *want_version) {
    std::fprintf(stderr, "recovered version out of sync\n");
    return 1;
  }
  Matrix probe(8, 3);
  for (int i = 0; i < probe.rows(); ++i) {
    probe.SetRow(i, initial.Row(13 * i + 2));
  }
  const auto got = recovered_service.ScoreBatch("live", probe);
  const auto want = reference_service.ScoreBatch("live", probe);
  if (!got.ok() || !want.ok()) return 1;
  for (int i = 0; i < probe.rows(); ++i) {
    if (got->scores[i] != want->scores[i]) {
      std::fprintf(stderr, "recovered score %d differs from the replica\n",
                   i);
      return 1;
    }
  }
  std::printf("   version %llu restored; %d probe scores bit-identical to "
              "the uncrashed replica\n",
              static_cast<unsigned long long>(*version), probe.rows());

  recovered.Stop();
  reference.Stop();
  RemoveDir(live_dir);
  RemoveDir(crash_dir);
  std::printf("durability demo done\n");
  return 0;
}
