// replication_demo — replicated durability end to end: a standby
// bootstraps from a shipped snapshot, streams the primary's WAL tail over
// a (deliberately unreliable) link, survives its own crash mid-catch-up,
// and when the primary dies takes over behind a durable epoch fence.
//
//   1. Start a durable primary and ingest; attach a ReplicationSource.
//   2. A stateless standby pulls: snapshot bootstrap, then WAL batches,
//      every batch locally fsynced before it is acked. The link's fault
//      mode comes from RPC_REPLICA_FAULT (none, drop, duplicate, reorder,
//      delay, truncate, everything — default none).
//   3. The standby "crashes" mid-catch-up and restarts from its own
//      durability directory: replication resumes at its durable offset.
//   4. The primary dies. The standby promotes: epoch+1 is persisted
//      before the ranker takes over, so the deposed primary's source is
//      permanently fenced the moment the new lineage speaks to it.
//   5. The promoted standby serves and ingests as the new primary; its
//      state is verified bit-for-bit against a replica of the old primary
//      that never crashed.
//
//   build/examples/replication_demo
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "data/generators.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "replica/epoch.h"
#include "replica/replication.h"
#include "replica/transport.h"
#include "replica/wire.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_replication_demo_") + tag +
                      "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

bool PlanFromName(const std::string& name, rpc::replica::FaultPlan* plan) {
  *plan = {};
  plan->seed = 20260808;
  if (name == "none") return true;
  if (name == "drop") { plan->drop = 0.3; return true; }
  if (name == "duplicate") { plan->duplicate = 0.4; return true; }
  if (name == "reorder") { plan->reorder = 0.4; return true; }
  if (name == "delay") { plan->delay = 0.4; return true; }
  if (name == "truncate") { plan->truncate = 0.3; return true; }
  if (name == "everything") {
    plan->drop = plan->duplicate = plan->reorder = plan->delay = 0.15;
    plan->truncate = 0.1;
    return true;
  }
  return false;
}

rpc::stream::StreamingRankerOptions RankerOptions(const std::string& dir) {
  rpc::stream::StreamingRankerOptions options;
  options.num_threads = 1;  // deterministic: promoted vs reference is exact
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.learner.seed = 42;
  options.durability.dir = dir;
  options.durability.snapshot_every_events = 50;
  return options;
}

rpc::replica::ReplicaApplierOptions ApplierOptions(const std::string& dir) {
  rpc::replica::ReplicaApplierOptions options;
  options.dir = dir;
  options.d = 3;
  options.request_timeout_seconds = 0.02;  // fault modes need fast retries
  options.retry.initial_backoff_seconds = 0.001;
  options.retry.max_backoff_seconds = 0.02;
  options.retry.max_attempts = 0;         // unlimited attempts...
  options.retry.deadline_seconds = 60.0;  // ...bounded by wall clock
  return options;
}

}  // namespace

int main() {
  const char* fault_env = std::getenv("RPC_REPLICA_FAULT");
  const std::string fault = fault_env != nullptr ? fault_env : "none";
  rpc::replica::FaultPlan plan;
  if (!PlanFromName(fault, &plan)) {
    std::fprintf(stderr, "bad RPC_REPLICA_FAULT '%s'\n", fault.c_str());
    return 1;
  }

  const auto alpha = *rpc::order::Orientation::FromSigns({+1, +1, -1});
  const Matrix initial =
      rpc::data::GenerateLatentCurveData(
          alpha, {.n = 250, .noise_sigma = 0.05, .control_margin = 0.1,
                  .seed = 7})
          .data;
  const std::string p_dir = MakeTempDir("primary");
  const std::string s_dir = MakeTempDir("standby");
  if (p_dir.empty() || s_dir.empty()) return 1;

  std::printf("== 1. durable primary + replication source (faults: %s) ==\n",
              fault.c_str());
  rpc::serve::RankingService primary_service;
  rpc::stream::StreamingRanker primary(&primary_service, "live",
                                       RankerOptions(p_dir));
  if (!primary.Start(initial, alpha).ok()) return 1;
  // The never-crashed reference replica: fed exactly the same ops, used at
  // the end to verify the promoted standby bit for bit.
  rpc::stream::StreamingRankerOptions plain = RankerOptions("");
  plain.durability = {};
  rpc::serve::RankingService reference_service;
  rpc::stream::StreamingRanker reference(&reference_service, "live", plain);
  if (!reference.Start(initial, alpha).ok()) return 1;

  const auto drive = [&](rpc::stream::StreamingRanker* target, int from,
                         int count) {
    for (int a = from; a < from + count; ++a) {
      Vector row = initial.Row(a % initial.rows());
      for (int j = 0; j < row.size(); ++j) row[j] *= 1.0 + 0.0005 * (a + 1);
      if (!target->Append(row).ok()) return false;
    }
    return target->Flush().ok();
  };
  if (!drive(&primary, 0, 120) || !drive(&reference, 0, 120)) return 1;

  auto pair = rpc::replica::MakeLoopbackPair();
  auto standby_link =
      rpc::replica::WrapWithFaults(std::move(pair.standby), plan);
  plan.seed += 1;  // independent fault stream for the reply direction
  auto primary_link =
      rpc::replica::WrapWithFaults(std::move(pair.primary), plan);
  rpc::replica::ReplicationSourceOptions source_options;
  source_options.dir = p_dir;
  source_options.d = 3;
  source_options.max_batch_records = 32;
  rpc::replica::ReplicationSource source(
      primary_link.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  std::thread serving([&source] { (void)source.Serve(); });

  std::printf("== 2. stateless standby bootstraps and streams the tail ==\n");
  std::uint64_t durable_before_crash = 0;
  {
    rpc::stream::StreamingRanker standby(nullptr, "live",
                                         RankerOptions(s_dir));
    rpc::replica::ReplicaApplier applier(&standby, standby_link.get(),
                                         ApplierOptions(s_dir));
    if (!applier.Init().ok()) return 1;
    // Catch up only part of the way: this incarnation is about to die.
    if (!applier.CatchUpTo(60).ok()) return 1;
    durable_before_crash = applier.durable_seq();
    standby.Stop();
    // Standby "crash": applier and ranker die; only s_dir survives.
  }
  std::printf("   first incarnation died at durable offset %llu\n",
              static_cast<unsigned long long>(durable_before_crash));

  std::printf("== 3. standby restarts and resumes from its own WAL ==\n");
  rpc::serve::RankingService standby_service;
  rpc::stream::StreamingRanker standby(&standby_service, "live",
                                       RankerOptions(s_dir));
  rpc::replica::ReplicaApplier applier(&standby, standby_link.get(),
                                       ApplierOptions(s_dir));
  if (!applier.Init().ok()) return 1;
  if (!applier.has_state() ||
      applier.durable_seq() < durable_before_crash) {
    std::fprintf(stderr, "standby failed to resume from local state\n");
    return 1;
  }
  const std::uint64_t tip = primary.wal_synced_seq();
  if (!applier.CatchUpTo(tip).ok()) return 1;
  std::printf("   resumed at %llu, caught up to %llu (lag now %llu); "
              "%lld snapshot + %lld wal batches shipped\n",
              static_cast<unsigned long long>(durable_before_crash),
              static_cast<unsigned long long>(applier.durable_seq()),
              static_cast<unsigned long long>(tip - applier.durable_seq()),
              static_cast<long long>(source.snapshots_shipped()),
              static_cast<long long>(source.batches_shipped()));

  std::printf("== 4. primary dies; standby promotes behind the fence ==\n");
  standby_link->Close();
  serving.join();
  if (!applier.Promote().ok()) return 1;
  const auto epoch = rpc::replica::LoadEpoch(s_dir);
  if (!epoch.ok() || *epoch != 2) {
    std::fprintf(stderr, "promotion did not persist the new epoch\n");
    return 1;
  }
  std::printf("   promoted: epoch %llu durable on disk before takeover\n",
              static_cast<unsigned long long>(*epoch));

  // The deposed primary's source is fenced the instant the new lineage
  // speaks to it — demonstrated on a fresh link, as a restarted old
  // primary would present.
  {
    auto probe_pair = rpc::replica::MakeLoopbackPair();
    rpc::replica::ReplicationSource deposed(
        probe_pair.primary.get(), [&] { return primary.wal_synced_seq(); },
        source_options);
    rpc::replica::Message hello;
    hello.type = rpc::replica::MessageType::kCatchUpRequest;
    hello.epoch = *epoch;
    hello.b = 1;
    if (!probe_pair.standby->Send(EncodeMessage(hello)).ok()) return 1;
    if (deposed.HandleOne(0.5).code() != rpc::StatusCode::kAborted ||
        !deposed.fenced()) {
      std::fprintf(stderr, "deposed source failed to fence itself\n");
      return 1;
    }
    std::printf("   deposed primary's source fenced on first contact\n");
  }

  std::printf("== 5. new primary serves and ingests; verify vs reference ==\n");
  if (!drive(&standby, 120, 40) || !drive(&reference, 120, 40)) return 1;
  if (!standby.ForceRefresh().ok() || !reference.ForceRefresh().ok()) {
    return 1;
  }
  if (!standby.Flush().ok() || !reference.Flush().ok()) return 1;
  Matrix probe(8, 3);
  for (int i = 0; i < probe.rows(); ++i) {
    probe.SetRow(i, initial.Row(13 * i + 2));
  }
  const auto got = standby_service.ScoreBatch("live", probe);
  const auto want = reference_service.ScoreBatch("live", probe);
  if (!got.ok() || !want.ok()) return 1;
  for (int i = 0; i < probe.rows(); ++i) {
    if (got->scores[i] != want->scores[i]) {
      std::fprintf(stderr, "promoted score %d differs from the replica "
                   "that never failed over\n", i);
      return 1;
    }
  }
  std::printf("   %d probe scores bit-identical to the never-crashed "
              "replica after failover\n", probe.rows());

  primary.Stop();
  standby.Stop();
  reference.Stop();
  RemoveDir(p_dir);
  RemoveDir(s_dir);
  std::printf("replication demo done (faults: %s)\n", fault.c_str());
  return 0;
}
