// rank_csv — command-line tool: rank the rows of any CSV file with a
// ranking principal curve.
//
//   build/examples/rank_csv <input.csv> <signs> [output.csv]
//
//   <signs>  one character per attribute column: '+' for benefit (higher
//            is better), '-' for cost (lower is better), e.g. "++--".
//
// The input's first column must hold object labels and the first row the
// header. Rows with missing cells (empty/NA/NaN/?) are excluded from the
// fit and reported. When an output path is given, a CSV with scores and
// positions is written; otherwise the list is printed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rpc_ranker.h"
#include "data/csv.h"
#include "order/orientation.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <signs e.g. ++--> [output.csv]\n",
                 argv[0]);
    return 2;
  }
  const std::string input_path = argv[1];
  const std::string signs_text = argv[2];

  const auto dataset = rpc::data::ReadCsvFile(input_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", input_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  if (static_cast<int>(signs_text.size()) != dataset->num_attributes()) {
    std::fprintf(stderr,
                 "sign string '%s' has %zu characters but the file has %d "
                 "attribute columns\n",
                 signs_text.c_str(), signs_text.size(),
                 dataset->num_attributes());
    return 2;
  }
  std::vector<int> signs;
  for (char c : signs_text) {
    if (c == '+') {
      signs.push_back(1);
    } else if (c == '-') {
      signs.push_back(-1);
    } else {
      std::fprintf(stderr, "signs must be '+' or '-', got '%c'\n", c);
      return 2;
    }
  }
  const auto alpha = rpc::order::Orientation::FromSigns(signs);
  if (!alpha.ok()) {
    std::fprintf(stderr, "%s\n", alpha.status().ToString().c_str());
    return 2;
  }

  const int dropped = dataset->CountIncompleteRows();
  if (dropped > 0) {
    std::fprintf(stderr, "note: %d rows with missing cells excluded\n",
                 dropped);
  }
  const rpc::data::Dataset complete = dataset->FilterCompleteRows();

  const auto ranker = rpc::core::RpcRanker::Fit(complete.values(), *alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 ranker.status().ToString().c_str());
    return 1;
  }
  const rpc::rank::RankingList list = ranker->RankDataset(complete);

  if (argc > 3) {
    rpc::data::Dataset out;
    for (const auto& item : list.items()) {
      out.AppendRow(item.label,
                    rpc::linalg::Vector{static_cast<double>(item.position),
                                        item.score});
    }
    rpc::Status named = out.SetAttributeNames({"position", "rpc_score"});
    (void)named;
    const rpc::Status written = rpc::data::WriteCsvFile(out, argv[3]);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %d ranked objects to %s\n", list.size(), argv[3]);
  } else {
    std::printf("%s", list.ToTableString().c_str());
  }
  std::printf(
      "explained variance %.1f%%; curve strictly monotone: %s\n",
      100.0 * ranker->fit_result().explained_variance,
      ranker->curve().CheckMonotonicity().strictly_monotone ? "yes" : "no");
  return 0;
}
