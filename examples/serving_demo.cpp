// serving_demo — the full production loop: fit once, save the portable
// model, load it into the serving tier, query it many times.
//
//   1. Fit an RPC model per dataset (countries and journals here).
//   2. SaveModel: persist each as the small text "white box".
//   3. serve::RankingService: one shard per dataset, loaded from the files.
//   4. Query: rank fresh objects by dataset id — and check the served
//      scores agree bit-for-bit with the in-process rankers.
//   5. QoS: the same entry point with a deadline, a priority class and the
//      service's latency histogram.
//
//   build/examples/serving_demo
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/rpc_ranker.h"
#include "curve/simd_backend.h"
#include "data/generators.h"
#include "serve/ranking_service.h"

namespace {

struct FittedDataset {
  std::string id;
  rpc::data::Dataset data;
  rpc::core::RpcRanker ranker;
};

std::string TempModelPath(const std::string& id) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/rpc_serving_" +
         id + ".model";
}

}  // namespace

int main() {
  std::printf("== 1. fit (once per dataset) ==\n");
  std::vector<FittedDataset> fitted;
  {
    const rpc::data::Dataset countries =
        rpc::data::GenerateCountryData(120, 3, false).FilterCompleteRows();
    const auto alpha = rpc::order::Orientation::FromSigns({1, 1, -1, -1});
    auto ranker = rpc::core::RpcRanker::Fit(countries.values(), *alpha);
    if (!ranker.ok()) {
      std::fprintf(stderr, "country fit failed: %s\n",
                   ranker.status().ToString().c_str());
      return 1;
    }
    fitted.push_back({"countries", countries, std::move(*ranker)});
  }
  {
    const rpc::data::Dataset journals =
        rpc::data::GenerateJournalData(150, 0, 11, false).FilterCompleteRows();
    const auto alpha = rpc::order::Orientation::FromSigns({1, 1, 1, 1, 1});
    auto ranker = rpc::core::RpcRanker::Fit(journals.values(), *alpha);
    if (!ranker.ok()) {
      std::fprintf(stderr, "journal fit failed: %s\n",
                   ranker.status().ToString().c_str());
      return 1;
    }
    fitted.push_back({"journals", journals, std::move(*ranker)});
  }
  for (const FittedDataset& f : fitted) {
    std::printf("  %-9s  n=%3d d=%d  explained variance %.1f%%\n",
                f.id.c_str(), f.data.num_objects(), f.data.num_attributes(),
                100.0 * f.ranker.fit_result().explained_variance);
  }

  std::printf("== 2. save (the portable text white box) ==\n");
  for (const FittedDataset& f : fitted) {
    const std::string path = TempModelPath(f.id);
    const rpc::Status saved =
        rpc::core::SaveModel(f.ranker.ToPortableModel(), path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("  %-9s  -> %s\n", f.id.c_str(), path.c_str());
  }

  std::printf("== 3. serve (one shard per dataset) ==\n");
  rpc::serve::RankingService service;
  for (const FittedDataset& f : fitted) {
    const rpc::Status loaded =
        service.RegisterDatasetFromFile(f.id, TempModelPath(f.id));
    if (!loaded.ok()) {
      std::fprintf(stderr, "register failed: %s\n", loaded.ToString().c_str());
      return 1;
    }
  }
  // Which projection kernels this deployment runs (scalar / avx2 / avx512 /
  // neon — auto-detected, RPC_SIMD_BACKEND overrides; see docs/simd.md).
  // Every backend is bit-identical, so this line is diagnostic, not a
  // correctness concern.
  std::printf("  %d shard(s) resident, pool parallelism %d, "
              "simd backend %s\n",
              service.stats().datasets, service.parallelism(),
              rpc::curve::BackendName());

  std::printf("== 4. query by dataset id ==\n");
  int mismatches = 0;
  for (const FittedDataset& f : fitted) {
    const auto batch = service.Query(f.id, f.data.values());
    if (!batch.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    // Served scores must equal the in-process ranker's, bit for bit.
    for (int i = 0; i < f.data.num_objects(); ++i) {
      if (batch->scores[i] != f.ranker.Score(f.data.values().Row(i))) {
        ++mismatches;
      }
    }
    // Top three of the batch, served.
    std::printf("  %s: top 3 of %d\n", f.id.c_str(), f.data.num_objects());
    for (int position = 1; position <= 3; ++position) {
      for (int i = 0; i < f.data.num_objects(); ++i) {
        if (batch->ranks[static_cast<size_t>(i)] == position) {
          std::printf("    %d. %-24s score %.4f\n", position,
                      f.data.labels()[static_cast<size_t>(i)].c_str(),
                      batch->scores[i]);
        }
      }
    }
  }

  std::printf("== 5. QoS: deadlines and priority classes ==\n");
  {
    // A generous deadline: the query completes normally and its trace shows
    // where the latency went.
    rpc::serve::QueryOptions opts;
    opts.deadline = rpc::serve::QueryDeadline(std::chrono::seconds(5));
    opts.priority = rpc::serve::QueryPriority::kInteractive;
    const auto traced = service.Query("countries", fitted[0].data.values(),
                                      opts);
    if (!traced.ok()) {
      std::fprintf(stderr, "deadline query failed: %s\n",
                   traced.status().ToString().c_str());
      return 1;
    }
    std::printf("  interactive query: %d segment(s), admission %lld us, "
                "execution %lld us\n",
                traced->trace.segments,
                static_cast<long long>(traced->trace.admission_wait.count() /
                                       1000),
                static_cast<long long>(traced->trace.execution_time.count() /
                                       1000));

    // An already-expired deadline is refused at admission — the canonical
    // "caller gave up" path.
    rpc::serve::QueryOptions expired;
    expired.deadline = rpc::serve::QueryDeadline(std::chrono::seconds(-1));
    const auto refused =
        service.Query("countries", fitted[0].data.values(), expired);
    std::printf("  expired-deadline query: %s\n",
                refused.ok() ? "UNEXPECTEDLY OK"
                             : refused.status().ToString().c_str());
    if (refused.ok()) return 1;
  }

  const rpc::serve::ServiceStats stats = service.stats();
  std::printf("served %lld queries / %lld rows; served == in-process: %s\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.rows),
              mismatches == 0 ? "yes" : "NO");
  std::printf("deadline_expired %lld; latency p50 <= %.0f us, p99 <= %.0f "
              "us (fixed-bucket histogram over %lld queries)\n",
              static_cast<long long>(stats.deadline_expired),
              stats.latency.QuantileUpperBoundUs(0.5),
              stats.latency.QuantileUpperBoundUs(0.99),
              static_cast<long long>(stats.latency.total()));
  for (const FittedDataset& f : fitted) {
    std::remove(TempModelPath(f.id).c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
