#ifndef RPC_BENCH_BENCH_UTIL_H_
#define RPC_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

namespace rpc::bench {

/// Prints a banner naming the experiment and the paper artefact it
/// regenerates.
void PrintHeader(const std::string& experiment,
                 const std::string& paper_artefact);

/// Prints a separator line.
void PrintRule();

/// One paper-vs-measured comparison row.
struct Comparison {
  std::string quantity;
  std::string paper;
  std::string measured;
  bool matches = false;
};

/// Prints a paper-vs-measured block and returns the number of mismatches.
int PrintComparisons(const std::vector<Comparison>& comparisons);

/// Formats booleans for the match column.
std::string YesNo(bool value);

}  // namespace rpc::bench

#endif  // RPC_BENCH_BENCH_UTIL_H_
