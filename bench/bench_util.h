#ifndef RPC_BENCH_BENCH_UTIL_H_
#define RPC_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

namespace rpc::bench {

/// Prints a banner naming the experiment and the paper artefact it
/// regenerates.
void PrintHeader(const std::string& experiment,
                 const std::string& paper_artefact);

/// Prints a separator line.
void PrintRule();

/// One paper-vs-measured comparison row.
struct Comparison {
  std::string quantity;
  std::string paper;
  std::string measured;
  bool matches = false;
};

/// Prints a paper-vs-measured block and returns the number of mismatches.
int PrintComparisons(const std::vector<Comparison>& comparisons);

/// Formats booleans for the match column.
std::string YesNo(bool value);

/// Writes a JSON snapshot of the global telemetry registry next to a
/// bench's JSON sink: "<path minus .json>.telemetry.json". Called after a
/// bench closes its BENCH_*.json so the run's counters/histograms (fsync
/// latency, queue depths, refresh phases, ...) land beside the perf rows
/// they explain. Silently does nothing if the file cannot be opened.
void WriteTelemetrySnapshot(const std::string& bench_json_path);

}  // namespace rpc::bench

#endif  // RPC_BENCH_BENCH_UTIL_H_
