// Durable-tier recovery time: how fast StreamingRanker::Recover() turns a
// crash image (snapshot + write-ahead log) back into a serving ranker.
// Two variants bracket the bounded-replay design space:
//
//   replay_heavy    only the Start() snapshot exists, so every ingested
//                   event replays from the log — the worst case, and the
//                   CI-gated replay throughput number (rows_per_sec);
//   snapshot_recent milestone snapshots every 1000 events, so recovery
//                   loads a near-tip snapshot and replays a short tail —
//                   the configuration the docs recommend.
//
// Before any timing, recovery correctness is verified: the recovered
// ranker's model must serialize identically to the pre-crash one and score
// a probe batch bit-for-bit the same. Any mismatch fails the run.
//
//   build/bench_recovery_time [--quick]
//
// Full runs rewrite BENCH_recovery_time.json (the committed baseline the
// CI regression gate compares against); --quick runs a smaller ingest with
// the same identity keys and writes BENCH_recovery_time.quick.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/generators.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

#include "bench_util.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;
using rpc::stream::StreamingRanker;
using rpc::stream::StreamingRankerOptions;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Matrix RawData(const Orientation& alpha, int n, uint64_t seed) {
  return rpc::data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

void Emit(std::FILE* sink, const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_bench_recovery_") + tag +
                      "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

struct VariantResult {
  bool ok = false;
  std::uint64_t replayed_records = 0;
  double recover_seconds = 0.0;
  double time_to_first_query_seconds = 0.0;
};

// Ingests `appends` events into a durable ranker, freezes the durability
// directory as a crash image (copied while the ranker is live, exactly as
// a kill -9 would leave it), then times Recover() + the first served
// query on that image and verifies bit-identity against the pre-crash
// ranker.
VariantResult RunVariant(const Orientation& alpha, int initial_rows,
                         int appends, std::uint64_t snapshot_every_events,
                         const Matrix& probe) {
  VariantResult result;
  const std::string live_dir = MakeTempDir("live");
  const std::string crash_dir = MakeTempDir("crash");
  if (live_dir.empty() || crash_dir.empty()) return result;
  RemoveDir(crash_dir);  // the copy recreates it as an exact image

  const int d = alpha.dimension();
  const Matrix raw = RawData(alpha, initial_rows + appends, 4242);
  Matrix initial(initial_rows, d);
  for (int i = 0; i < initial_rows; ++i) initial.SetRow(i, raw.Row(i));

  StreamingRankerOptions options;
  options.num_threads = 1;  // inline: deterministic, machine-comparable
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 2026;
  options.durability.dir = live_dir;
  options.durability.snapshot_every_events = snapshot_every_events;

  std::string expected_model;
  Vector expected_scores(probe.rows());
  std::uint64_t expected_version = 0;
  {
    StreamingRanker ranker(nullptr, "bench", options);
    if (!ranker.Start(initial, alpha).ok()) return result;
    for (int a = 0; a < appends; ++a) {
      if (!ranker.Append(raw.Row(initial_rows + a)).ok()) return result;
    }
    if (!ranker.ForceRefresh().ok() || !ranker.Flush().ok()) return result;

    const StreamingRanker::Snapshot snap = ranker.snapshot();
    expected_model = snap.model.Serialize();
    expected_version = snap.version;
    for (int i = 0; i < probe.rows(); ++i) {
      const auto score = snap.model.Score(probe.Row(i));
      if (!score.ok()) return result;
      expected_scores[i] = *score;
    }

    // kill -9: freeze the on-disk state while the process is still "up".
    std::error_code ec;
    std::filesystem::copy(live_dir, crash_dir,
                          std::filesystem::copy_options::recursive, ec);
    if (ec) return result;
  }

  StreamingRankerOptions recover_options = options;
  recover_options.durability.dir = crash_dir;
  rpc::serve::RankingService service;
  StreamingRanker recovered(&service, "bench", recover_options);

  const auto start = std::chrono::steady_clock::now();
  if (!recovered.Recover().ok()) return result;
  result.recover_seconds = Seconds(start);
  const auto first_query = service.Query("bench", probe);
  result.time_to_first_query_seconds = Seconds(start);
  if (!first_query.ok()) return result;

  // Correctness before speed: the recovered ranker must be the pre-crash
  // ranker, bit for bit.
  const StreamingRanker::Snapshot snap = recovered.snapshot();
  if (snap.version != expected_version ||
      snap.model.Serialize() != expected_model) {
    std::fprintf(stderr, "recovery verify: model/version mismatch\n");
    return result;
  }
  for (int i = 0; i < probe.rows(); ++i) {
    if (first_query->scores[i] != expected_scores[i]) {
      std::fprintf(stderr, "recovery verify: score %d differs\n", i);
      return result;
    }
  }
  result.replayed_records = recovered.recovery_info().replayed_records;
  recovered.Stop();
  RemoveDir(live_dir);
  RemoveDir(crash_dir);
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1, +1});
  const int d = 4;
  const int initial_rows = 2000;
  const int appends = quick ? 3000 : 20000;
  const Matrix probe = RawData(alpha, 256, 77);

  const char* sink_path =
      quick ? "BENCH_recovery_time.quick.json" : "BENCH_recovery_time.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# durable-tier crash recovery (d=%d, %d appends); JSON also "
              "in %s\n", d, appends, sink_path);

  // Worst case: no milestone snapshots after Start, every event replays.
  {
    const VariantResult r =
        RunVariant(alpha, initial_rows, appends, /*snapshot_every=*/0, probe);
    if (!r.ok) {
      std::fprintf(stderr, "replay_heavy variant failed\n");
      return 1;
    }
    const double rows_per_sec =
        static_cast<double>(r.replayed_records) /
        (r.recover_seconds > 0.0 ? r.recover_seconds : 1e-9);
    Emit(sink, std::string("{\"bench\":\"recovery_time\",\"variant\":"
                           "\"replay_heavy\",\"d\":") + std::to_string(d) +
                   ",\"initial_rows\":" + std::to_string(initial_rows) +
                   ",\"threads\":1,\"replayed_records\":" +
                   std::to_string(r.replayed_records) +
                   ",\"rows_per_sec\":" + std::to_string(rows_per_sec) +
                   ",\"recover_seconds\":" +
                   std::to_string(r.recover_seconds) +
                   ",\"time_to_first_query_seconds\":" +
                   std::to_string(r.time_to_first_query_seconds) + "}");
  }

  // Recommended configuration: a near-tip snapshot bounds the replay.
  {
    const VariantResult r = RunVariant(alpha, initial_rows, appends,
                                       /*snapshot_every=*/1000, probe);
    if (!r.ok) {
      std::fprintf(stderr, "snapshot_recent variant failed\n");
      return 1;
    }
    if (r.replayed_records > 1000) {
      std::fprintf(stderr,
                   "snapshot cadence failed to bound the replay: %llu "
                   "records\n",
                   static_cast<unsigned long long>(r.replayed_records));
      return 1;
    }
    Emit(sink, std::string("{\"bench\":\"recovery_time\",\"variant\":"
                           "\"snapshot_recent\",\"d\":") + std::to_string(d) +
                   ",\"initial_rows\":" + std::to_string(initial_rows) +
                   ",\"threads\":1,\"replayed_records\":" +
                   std::to_string(r.replayed_records) +
                   ",\"recover_seconds\":" +
                   std::to_string(r.recover_seconds) +
                   ",\"time_to_first_query_seconds\":" +
                   std::to_string(r.time_to_first_query_seconds) + "}");
  }

  std::printf("# verify: recovered model, version, and probe scores match "
              "the pre-crash ranker bit for bit\n");
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
