// E13 — the five meta-rules as measurements: which ranking approaches
// satisfy which rules (the qualitative table implied throughout Sections
// 3-4: RPC satisfies all five; first PCA breaks strict monotonicity /
// nonlinearity; polyline breaks smoothness; Elmap lacks explicitness;
// weighted sums lack nonlinear capacity; rank aggregation breaks
// smoothness and monotonicity).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/elmap.h"
#include "baselines/polyline_curve.h"
#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "linalg/stats.h"
#include "order/meta_rules.h"
#include "rank/first_pca.h"
#include "rank/weighted_sum.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::MethodUnderTest;
using rpc::order::MetaRuleReport;
using rpc::order::Orientation;
using rpc::order::ScoreFn;

template <typename Model, typename FitFnT>
ScoreFn WrapScore(FitFnT fitter, const Matrix& data,
                  const Orientation& alpha) {
  auto model = fitter(data, alpha);
  auto shared = std::make_shared<Model>(std::move(model).value());
  return [shared](const Vector& x) { return shared->Score(x); };
}

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E13: meta-rule audit of six ranking approaches",
      "Sections 3-4 (which methods satisfy the five meta-rules)");

  const auto alpha_result = Orientation::FromSigns({1, 1, -1});
  const Orientation alpha = *alpha_result;
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha,
          {.n = 120, .noise_sigma = 0.03, .control_margin = 0.1, .seed = 3});
  Matrix raw(sample.data.rows(), 3);
  for (int i = 0; i < raw.rows(); ++i) {
    raw(i, 0) = 300.0 + 70000.0 * sample.data(i, 0);
    raw(i, 1) = 40.0 + 43.0 * sample.data(i, 1);
    raw(i, 2) = 2.0 + 420.0 * sample.data(i, 2);
  }

  std::vector<MethodUnderTest> methods;
  {
    MethodUnderTest m;
    m.name = "RPC";
    m.fit = [](const Matrix& d, const Orientation& a) {
      return WrapScore<rpc::core::RpcRanker>(
          [](const Matrix& dd, const Orientation& aa) {
            return rpc::core::RpcRanker::Fit(dd, aa);
          },
          d, a);
    };
    m.skeleton = [](const Matrix& d, const Orientation& a, int grid) {
      auto fit = rpc::core::RpcRanker::Fit(d, a);
      return fit->SampleSkeletonRaw(grid);
    };
    m.parameter_count = 4 * 3;
    methods.push_back(m);
  }
  {
    MethodUnderTest m;
    m.name = "FirstPCA";
    m.fit = [](const Matrix& d, const Orientation& a) {
      return WrapScore<rpc::rank::FirstPcaRanker>(
          [](const Matrix& dd, const Orientation& aa) {
            return rpc::rank::FirstPcaRanker::Fit(dd, aa);
          },
          d, a);
    };
    m.skeleton = [](const Matrix& d, const Orientation& a, int grid) {
      auto fit = rpc::rank::FirstPcaRanker::Fit(d, a);
      return fit->SampleSkeleton(grid);
    };
    m.parameter_count = 2 * 3;
    methods.push_back(m);
  }
  {
    MethodUnderTest m;
    m.name = "Elmap";
    m.fit = [](const Matrix& d, const Orientation& a) {
      return WrapScore<rpc::baselines::ElmapCurve>(
          [](const Matrix& dd, const Orientation& aa) {
            return rpc::baselines::ElmapCurve::Fit(dd, aa);
          },
          d, a);
    };
    m.skeleton = [](const Matrix& d, const Orientation& a, int grid) {
      auto fit = rpc::baselines::ElmapCurve::Fit(d, a);
      return fit->SampleSkeletonRaw(grid);
    };
    // Deliberately no parameter_count: node count is not known a priori —
    // the paper's explicitness critique of Elmap.
    methods.push_back(m);
  }
  {
    MethodUnderTest m;
    m.name = "PolylinePC";
    m.fit = [](const Matrix& d, const Orientation& a) {
      return WrapScore<rpc::baselines::PolylineCurve>(
          [](const Matrix& dd, const Orientation& aa) {
            return rpc::baselines::PolylineCurve::Fit(dd, aa);
          },
          d, a);
    };
    m.skeleton = [](const Matrix& d, const Orientation& a, int grid) {
      auto fit = rpc::baselines::PolylineCurve::Fit(d, a);
      return fit->SampleSkeletonRaw(grid);
    };
    m.parameter_count = 8 * 3;
    methods.push_back(m);
  }
  {
    MethodUnderTest m;
    m.name = "WeightedSum";
    m.fit = [](const Matrix& d, const Orientation& a) {
      return WrapScore<rpc::rank::WeightedSumRanker>(
          [](const Matrix& dd, const Orientation& aa) {
            return rpc::rank::WeightedSumRanker::FitEqualWeights(dd, aa);
          },
          d, a);
    };
    // Its skeleton is the straight diagonal of the box — report it so the
    // capacity rule can fail it on the nonlinear half.
    m.skeleton = [](const Matrix& d, const Orientation& a, int grid) {
      const Vector mins = rpc::linalg::ColumnMins(d);
      const Vector maxs = rpc::linalg::ColumnMaxs(d);
      Matrix line(grid + 1, d.cols());
      for (int i = 0; i <= grid; ++i) {
        const double t = static_cast<double>(i) / grid;
        for (int j = 0; j < d.cols(); ++j) {
          const double lo = a.sign(j) > 0 ? mins[j] : maxs[j];
          const double hi = a.sign(j) > 0 ? maxs[j] : mins[j];
          line(i, j) = lo + t * (hi - lo);
        }
      }
      return line;
    };
    m.parameter_count = 3;
    methods.push_back(m);
  }
  {
    MethodUnderTest m;
    m.name = "RankAgg";
    m.fit = [](const Matrix& d, const Orientation& a) -> ScoreFn {
      auto columns = std::make_shared<std::vector<std::vector<double>>>();
      for (int j = 0; j < d.cols(); ++j) {
        std::vector<double> column(static_cast<size_t>(d.rows()));
        for (int i = 0; i < d.rows(); ++i) column[i] = d(i, j);
        std::sort(column.begin(), column.end());
        columns->push_back(std::move(column));
      }
      const Orientation alpha_copy = a;
      return [columns, alpha_copy](const Vector& x) {
        double total = 0.0;
        for (int j = 0; j < x.size(); ++j) {
          const auto& column = (*columns)[static_cast<size_t>(j)];
          const double below = static_cast<double>(
              std::lower_bound(column.begin(), column.end(), x[j]) -
              column.begin());
          total += alpha_copy.sign(j) > 0
                       ? below
                       : static_cast<double>(column.size()) - below;
        }
        return total / x.size();
      };
    };
    methods.push_back(m);
  }

  rpc::order::MetaRuleOptions options;
  options.seed = 11;
  std::printf("\n%-12s %-10s %-10s %-10s %-10s %-10s %s\n", "method",
              "invariant", "monotone", "capacity", "smooth", "explicit",
              "all five");
  std::vector<MetaRuleReport> reports;
  for (const MethodUnderTest& method : methods) {
    const MetaRuleReport report =
        rpc::order::EvaluateMetaRules(method, raw, alpha, options);
    reports.push_back(report);
    const auto cell = [](const rpc::order::MetaRuleResult& r) {
      return !r.applicable ? "n/a" : (r.passed ? "pass" : "FAIL");
    };
    std::printf("%-12s %-10s %-10s %-10s %-10s %-10s %s\n",
                report.method_name.c_str(),
                cell(report.scale_translation_invariance),
                cell(report.strict_monotonicity), cell(report.capacity),
                cell(report.smoothness), cell(report.explicitness),
                report.AllPassed() ? "YES" : "no");
  }

  std::vector<rpc::bench::Comparison> comparisons;
  comparisons.push_back({"RPC satisfies all five meta-rules", "yes",
                         rpc::bench::YesNo(reports[0].AllPassed()),
                         reports[0].AllPassed()});
  comparisons.push_back(
      {"first PCA breaks a rule (Section 4.1)", "yes",
       rpc::bench::YesNo(!reports[1].AllPassed()), !reports[1].AllPassed()});
  comparisons.push_back(
      {"Elmap lacks explicit parameter size", "yes (Section 6.2.1)",
       rpc::bench::YesNo(!reports[2].explicitness.passed),
       !reports[2].explicitness.passed});
  comparisons.push_back(
      {"polyline PC breaks smoothness", "yes (Fig. 2a)",
       rpc::bench::YesNo(!reports[3].smoothness.passed),
       !reports[3].smoothness.passed});
  comparisons.push_back(
      {"weighted sum lacks nonlinear capacity", "yes (Section 1)",
       rpc::bench::YesNo(!reports[4].capacity.passed),
       !reports[4].capacity.passed});
  comparisons.push_back(
      {"RankAgg breaks smoothness/monotonicity", "yes (Section 6.1)",
       rpc::bench::YesNo(!reports[5].smoothness.passed ||
                         !reports[5].strict_monotonicity.passed),
       !reports[5].smoothness.passed ||
           !reports[5].strict_monotonicity.passed});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE13 mismatches vs paper: %d\n", mismatches);
  return 0;
}
