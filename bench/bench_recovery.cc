// E12 — extension: latent-order recovery under the paper's generative model
// x = f(s) + eps (Eq. 11). Sweeps noise and sample size; compares RPC,
// first PCA and Elmap on Kendall tau against the hidden order. The paper
// could not run this (no ground truth on its real data); with the synthetic
// substrate we can quantify the claim that the RPC "detects the ordinal
// information embedded in the numerical observations".
#include <cstdio>
#include <vector>

#include "baselines/elmap.h"
#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/first_pca.h"
#include "rank/metrics.h"

namespace {

using rpc::linalg::Vector;
using rpc::order::Orientation;

struct Cell {
  double rpc = 0.0;
  double pca = 0.0;
  double elmap = 0.0;
};

Cell Measure(int n, double noise, int seeds) {
  const Orientation alpha = Orientation::AllBenefit(2);
  Cell cell;
  int counted = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    const rpc::data::LatentCurveSample sample =
        rpc::data::GenerateLatentCurveData(
            alpha, {.n = n, .noise_sigma = noise, .control_margin = 0.05,
                    .seed = static_cast<uint64_t>(100 * seed + n)});
    const auto rpc_fit = rpc::core::RpcRanker::Fit(sample.data, alpha);
    const auto pca_fit = rpc::rank::FirstPcaRanker::Fit(sample.data, alpha);
    const auto elmap_fit =
        rpc::baselines::ElmapCurve::Fit(sample.data, alpha);
    if (!rpc_fit.ok() || !pca_fit.ok() || !elmap_fit.ok()) continue;
    cell.rpc += rpc::rank::KendallTauB(rpc_fit->ScoreRows(sample.data),
                                       sample.latent);
    cell.pca += rpc::rank::KendallTauB(pca_fit->ScoreRows(sample.data),
                                       sample.latent);
    cell.elmap += rpc::rank::KendallTauB(elmap_fit->ScoreRows(sample.data),
                                         sample.latent);
    ++counted;
  }
  if (counted > 0) {
    cell.rpc /= counted;
    cell.pca /= counted;
    cell.elmap /= counted;
  }
  return cell;
}

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E12: latent-order recovery sweep (extension)",
      "the Eq. 11 generative model with known ground truth");

  const int kSeeds = 5;
  std::printf("\nKendall tau-b vs the hidden order (mean over %d seeds)\n",
              kSeeds);
  std::printf("%-8s %-8s | %8s %8s %8s\n", "n", "noise", "RPC", "PCA",
              "Elmap");
  Cell low_noise_cell;
  Cell high_noise_cell;
  for (int n : {50, 200, 800}) {
    for (double noise : {0.01, 0.05, 0.15}) {
      const Cell cell = Measure(n, noise, kSeeds);
      std::printf("%-8d %-8.2f | %8.3f %8.3f %8.3f\n", n, noise, cell.rpc,
                  cell.pca, cell.elmap);
      if (n == 200 && noise == 0.01) low_noise_cell = cell;
      if (n == 200 && noise == 0.15) high_noise_cell = cell;
    }
  }

  std::vector<rpc::bench::Comparison> comparisons;
  comparisons.push_back(
      {"RPC near-perfect at low noise", "expected (tau > 0.95)",
       rpc::StrFormat("tau %.3f", low_noise_cell.rpc),
       low_noise_cell.rpc > 0.95});
  comparisons.push_back(
      {"RPC no worse than linear PCA on bent truths", "expected",
       rpc::StrFormat("%.3f vs %.3f", low_noise_cell.rpc,
                      low_noise_cell.pca),
       low_noise_cell.rpc >= low_noise_cell.pca - 0.01});
  comparisons.push_back(
      {"recovery degrades gracefully with noise", "expected",
       rpc::StrFormat("%.3f -> %.3f", low_noise_cell.rpc,
                      high_noise_cell.rpc),
       high_noise_cell.rpc > 0.5 && high_noise_cell.rpc < low_noise_cell.rpc});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE12 mismatches vs expectation: %d\n", mismatches);
  return 0;
}
