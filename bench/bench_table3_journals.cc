// E3 — Table 3: JCR2012 computer-science journals; missing-data filtering,
// per-indicator orders, and the comprehensive RPC list.
#include <cstdio>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/fixtures.h"
#include "data/generators.h"
#include "rank/metrics.h"
#include "rank/rank_aggregation.h"

namespace {

using rpc::core::RpcRanker;
using rpc::linalg::Vector;

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E3: journal ranking on five citation indicators",
      "Table 3 (JCR2012 computer-science categories)");

  const rpc::data::Dataset journals =
      rpc::data::GenerateJournalData(451, 58, 11, /*include_anchors=*/true);
  const rpc::data::Dataset complete = journals.FilterCompleteRows();
  std::printf("\n%d journals, %d dropped for missing data, %d ranked "
              "(paper: 451 / 58 / 393).\n",
              journals.num_objects(), journals.CountIncompleteRows(),
              complete.num_objects());

  const auto alpha = rpc::order::Orientation::AllBenefit(5);
  const auto ranker = RpcRanker::Fit(complete.values(), alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "%s\n", ranker.status().ToString().c_str());
    return 1;
  }
  const Vector scores =
      rpc::core::RescaleToUnit(ranker->ScoreRows(complete.values()));
  const rpc::rank::RankingList list(scores, complete.labels());

  // Per-indicator descending positions, as in Table 3's Order columns.
  std::vector<Vector> indicator_positions;
  for (int j = 0; j < complete.num_attributes(); ++j) {
    indicator_positions.push_back(rpc::rank::RanksFromScores(
        complete.values().Column(j), /*ascending=*/false));
  }

  std::printf("\n%-22s %6s %6s %6s %8s %6s | %-8s %-5s (paper: %-7s %-4s)\n",
              "journal", "IF", "5IF", "Imm", "EF", "AIS", "RPC", "ord",
              "score", "ord");
  for (const auto& anchor : rpc::data::Table3Anchors()) {
    const int idx = complete.LabelIndex(anchor.name).value();
    std::printf(
        "%-22s %6.3f %6.3f %6.3f %8.5f %6.3f | %8.4f %5d (paper: %7.4f "
        "%4d)\n",
        anchor.name, anchor.impact_factor, anchor.five_year_if,
        anchor.immediacy, anchor.eigenfactor, anchor.influence, scores[idx],
        list.PositionOf(idx), anchor.rpc_score, anchor.rpc_order);
  }

  std::vector<rpc::bench::Comparison> comparisons;
  comparisons.push_back({"journals removed for missing data", "58",
                         rpc::StrFormat("%d", journals.CountIncompleteRows()),
                         journals.CountIncompleteRows() == 58});
  comparisons.push_back({"journals ranked", "393",
                         rpc::StrFormat("%d", complete.num_objects()),
                         complete.num_objects() == 393});
  const int tkde = complete.LabelIndex("IEEE T KNOWL DATA EN").value();
  const int smca = complete.LabelIndex("IEEE T SYST MAN CY A").value();
  const bool inversion = list.PositionOf(tkde) < list.PositionOf(smca);
  comparisons.push_back(
      {"TKDE above SMCA despite lower IF", "yes (67 vs 69)",
       rpc::StrFormat("%s (%d vs %d)", inversion ? "yes" : "no",
                      list.PositionOf(tkde), list.PositionOf(smca)),
       inversion});
  const auto& anchors = rpc::data::Table3Anchors();
  bool tiers_hold = true;
  for (size_t top = 0; top < 5; ++top) {
    for (size_t mid = 5; mid < 10; ++mid) {
      const int t = complete.LabelIndex(anchors[top].name).value();
      const int m = complete.LabelIndex(anchors[mid].name).value();
      tiers_hold = tiers_hold && list.PositionOf(t) < list.PositionOf(m);
    }
  }
  comparisons.push_back({"paper's top-5 anchors all above its rank-65-69",
                         "yes", rpc::bench::YesNo(tiers_hold), tiers_hold});
  // Eigenfactor decorrelates from the frequency-count indices.
  const Vector ef_pos = indicator_positions[3];
  const Vector if_pos = indicator_positions[0];
  const double ef_if_rho = rpc::rank::SpearmanRho(ef_pos, if_pos);
  comparisons.push_back(
      {"Eigenfactor order differs from IF order", "clearly (PageRank-like)",
       rpc::StrFormat("Spearman %.2f", ef_if_rho), ef_if_rho < 0.75});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE3 mismatches vs paper: %d\n", mismatches);
  return 0;
}
