// E7 — Fig. 8: two-dimensional projections of the learned journal RPC,
// plus the paper's observations: 5-year IF is almost linear with the other
// frequency indices while Eigenfactor shows no clear relationship.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "linalg/stats.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E7: 2-D projections of the journal RPC",
      "Fig. 8 (5x5 panel: IF, 5IF, Immediacy, Eigenfactor, Influence)");

  const rpc::data::Dataset complete =
      rpc::data::GenerateJournalData(451, 58, 11, true).FilterCompleteRows();
  const auto alpha = rpc::order::Orientation::AllBenefit(5);
  const auto ranker = rpc::core::RpcRanker::Fit(complete.values(), alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "%s\n", ranker.status().ToString().c_str());
    return 1;
  }

  const Matrix curve = ranker->curve().Sample(10);
  const auto& names = complete.attribute_names();
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      std::printf("curve %s-vs-%s:", names[static_cast<size_t>(a)].c_str(),
                  names[static_cast<size_t>(b)].c_str());
      for (int i = 0; i < curve.rows(); ++i) {
        std::printf(" (%.3f,%.3f)", curve(i, a), curve(i, b));
      }
      std::printf("\n");
    }
  }

  // Correlations on the normalised data, as the panels visualise.
  const Matrix normalized =
      ranker->normalizer().Transform(complete.values());
  const auto corr = [&](int a, int b) {
    return rpc::linalg::PearsonCorrelation(normalized.Column(a),
                                           normalized.Column(b));
  };
  std::printf("\nPairwise correlations (normalised):\n");
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      std::printf("  %-14s %-14s %6.3f\n",
                  names[static_cast<size_t>(a)].c_str(),
                  names[static_cast<size_t>(b)].c_str(), corr(a, b));
    }
  }

  std::vector<rpc::bench::Comparison> comparisons;
  const double if_5if = corr(0, 1);
  comparisons.push_back(
      {"5-year IF nearly linear with IF", "yes (Fig. 8)",
       rpc::StrFormat("r = %.2f", if_5if), if_5if > 0.85});
  // Eigenfactor's strongest correlation with any frequency index is weak.
  double ef_strongest = 0.0;
  for (int other : {0, 1, 2, 4}) {
    ef_strongest = std::max(ef_strongest, std::fabs(corr(3, other)));
  }
  comparisons.push_back(
      {"Eigenfactor shows no clear relationship",
       "yes (computed like PageRank)",
       rpc::StrFormat("max |r| = %.2f", ef_strongest), ef_strongest < 0.7});
  const auto report = ranker->curve().CheckMonotonicity();
  comparisons.push_back({"journal RPC strictly monotone", "yes",
                         rpc::bench::YesNo(report.strictly_monotone),
                         report.strictly_monotone});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE7 mismatches vs paper: %d\n", mismatches);
  return 0;
}
