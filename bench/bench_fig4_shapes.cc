// E4 — Fig. 4: the four basic nonlinear shapes of a strictly monotone cubic
// Bezier curve, as determined by the interior control points. Emits the
// curve series (for plotting) and certifies strict monotonicity of each.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/interpretation.h"
#include "core/rpc_curve.h"

namespace {

using rpc::core::CurveShape;
using rpc::core::RpcCurve;
using rpc::linalg::Matrix;

struct ShapeCase {
  const char* name;
  CurveShape expected;
  double b1;
  double b2;
};

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E4: the four basic monotone shapes of a cubic Bezier",
      "Fig. 4 (control-point locations determine the curve shape)");

  const ShapeCase cases[] = {
      {"convex (slow-fast)", CurveShape::kConvex, 0.10, 0.40},
      {"concave (fast-slow)", CurveShape::kConcave, 0.60, 0.90},
      {"S-shape (slow-fast-slow)", CurveShape::kSShape, 0.10, 0.90},
      {"inverse-S (fast-slow-fast)", CurveShape::kInverseS, 0.60, 0.40},
  };

  const auto alpha = rpc::order::Orientation::AllBenefit(2);
  std::vector<rpc::bench::Comparison> comparisons;
  for (const ShapeCase& c : cases) {
    // x runs linearly, y carries the shape — like each Fig. 4 panel.
    Matrix control{{0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}, {0.0, c.b1, c.b2, 1.0}};
    const auto curve = RpcCurve::FromControlPoints(control, alpha);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    const auto report = curve->CheckMonotonicity();
    const auto interp = rpc::core::InterpretCurve(*curve)[1];

    std::printf("\n%s: control values b1=%.2f b2=%.2f -> %s\n", c.name,
                c.b1, c.b2, rpc::core::CurveShapeToString(interp.shape));
    std::printf("  strictly monotone: %s (min oriented derivative %.3f)\n",
                report.strictly_monotone ? "yes" : "no",
                report.min_oriented_derivative);
    std::printf("  series (s, x, y):");
    const Matrix samples = curve->Sample(8);
    for (int i = 0; i < samples.rows(); ++i) {
      std::printf(" (%.3f, %.3f, %.3f)", static_cast<double>(i) / 8,
                  samples(i, 0), samples(i, 1));
    }
    std::printf("\n");

    comparisons.push_back(
        {rpc::StrFormat("%s classified", c.name), "as named",
         rpc::core::CurveShapeToString(interp.shape),
         interp.shape == c.expected});
    comparisons.push_back(
        {rpc::StrFormat("%s strictly monotone (Prop. 1)", c.name), "yes",
         rpc::bench::YesNo(report.strictly_monotone),
         report.strictly_monotone});
  }

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE4 mismatches vs paper: %d\n", mismatches);
  return 0;
}
