// E1 — Table 1(a)/(b) and Fig. 6: three objects, RankAgg vs RPC, and the
// sensitivity of the RPC to an observation change RankAgg cannot see.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_learner.h"
#include "data/fixtures.h"
#include "rank/rank_aggregation.h"
#include "rank/ranking_list.h"

namespace {

using rpc::core::RpcFitResult;
using rpc::core::RpcLearnOptions;
using rpc::core::RpcLearner;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;

RpcFitResult FitToy(const Matrix& points) {
  RpcLearnOptions options;
  options.init = rpc::core::RpcInit::kDiagonal;  // deterministic tiny fit
  auto fit = RpcLearner(options).Fit(
      points, rpc::order::Orientation::AllBenefit(2));
  if (!fit.ok()) {
    std::fprintf(stderr, "toy fit failed: %s\n",
                 fit.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(fit).value();
}

int OrderOfScore(const Vector& scores, int index) {
  // 1-based ascending position, matching the paper's Order columns.
  int order = 1;
  for (int i = 0; i < scores.size(); ++i) {
    if (scores[i] < scores[index]) ++order;
  }
  return order;
}

void RunTable(const char* title,
              const std::vector<rpc::data::ToyObject>& rows,
              const Matrix& points, std::vector<rpc::bench::Comparison>* out) {
  const auto rankagg = rpc::rank::AggregateAttributeRanks(points, {1, 1});
  const RpcFitResult fit = FitToy(points);

  std::printf("\n%s\n", title);
  std::printf("%-8s %6s %6s | %-8s | %-10s %-6s (paper: %-10s %-5s)\n",
              "object", "x1", "x2", "RankAgg", "RPC score", "order",
              "score", "order");
  for (int i = 0; i < 3; ++i) {
    const auto& row = rows[static_cast<size_t>(i)];
    std::printf("%-8s %6.2f %6.2f | %-8.1f | %-10.4f %-6d (paper: %-10.4f %-5d)\n",
                row.name, row.x1, row.x2, (*rankagg)[i], fit.scores[i],
                OrderOfScore(fit.scores, i), row.rpc_score, row.rpc_order);
  }
  for (int i = 0; i < 3; ++i) {
    const auto& row = rows[static_cast<size_t>(i)];
    out->push_back({rpc::StrFormat("%s: %s RankAgg kappa", title, row.name),
                    rpc::StrFormat("%.1f", row.rankagg),
                    rpc::StrFormat("%.1f", (*rankagg)[i]),
                    (*rankagg)[i] == row.rankagg});
    out->push_back({rpc::StrFormat("%s: %s RPC order", title, row.name),
                    rpc::StrFormat("%d", row.rpc_order),
                    rpc::StrFormat("%d", OrderOfScore(fit.scores, i)),
                    OrderOfScore(fit.scores, i) == row.rpc_order});
  }
}

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E1: toy ranking — RankAgg (Eq. 30) vs RPC",
      "Table 1(a), Table 1(b), Fig. 6");

  std::vector<rpc::bench::Comparison> comparisons;
  RunTable("Table 1(a)", rpc::data::Table1a(), rpc::data::Table1aMatrix(),
           &comparisons);
  RunTable("Table 1(b)", rpc::data::Table1b(), rpc::data::Table1bMatrix(),
           &comparisons);

  // The headline qualitative claims.
  const auto agg_a =
      rpc::rank::AggregateAttributeRanks(rpc::data::Table1aMatrix(), {1, 1});
  const auto agg_b =
      rpc::rank::AggregateAttributeRanks(rpc::data::Table1bMatrix(), {1, 1});
  const RpcFitResult fit_a = FitToy(rpc::data::Table1aMatrix());
  const RpcFitResult fit_b = FitToy(rpc::data::Table1bMatrix());
  comparisons.push_back(
      {"RankAgg ties A and B in both tables", "yes",
       rpc::bench::YesNo((*agg_a)[0] == (*agg_a)[1] &&
                         (*agg_b)[0] == (*agg_b)[1]),
       (*agg_a)[0] == (*agg_a)[1] && (*agg_b)[0] == (*agg_b)[1]});
  comparisons.push_back(
      {"RPC distinguishes A and B in both tables", "yes",
       rpc::bench::YesNo(fit_a.scores[0] != fit_a.scores[1] &&
                         fit_b.scores[0] != fit_b.scores[1]),
       fit_a.scores[0] != fit_a.scores[1] &&
           fit_b.scores[0] != fit_b.scores[1]});
  const bool flipped =
      fit_a.scores[0] < fit_a.scores[1] && fit_b.scores[0] > fit_b.scores[1];
  comparisons.push_back({"moving A to A' flips the {A,B} order (Fig. 6)",
                         "yes", rpc::bench::YesNo(flipped), flipped});

  // Even the Markov-chain aggregation of [34] (MC4) cannot split A and B:
  // one attribute list prefers each, so neither majority-dominates.
  const Matrix table_a = rpc::data::Table1aMatrix();
  const auto mc4 = rpc::rank::AggregateRanksMc4(
      {rpc::rank::RanksFromScores(table_a.Column(0)),
       rpc::rank::RanksFromScores(table_a.Column(1))});
  if (mc4.ok()) {
    const bool mc4_tied = std::fabs((*mc4)[0] - (*mc4)[1]) < 1e-9;
    comparisons.push_back(
        {"MC4 (Dwork et al. [34]) also ties A and B",
         "yes (aggregation sees only orders)", rpc::bench::YesNo(mc4_tied),
         mc4_tied});
  }

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE1 mismatches vs paper: %d\n", mismatches);
  return 0;
}
