#include "bench_util.h"

#include <cstdio>

namespace rpc::bench {

void PrintHeader(const std::string& experiment,
                 const std::string& paper_artefact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Regenerates: %s\n", paper_artefact.c_str());
  std::printf("================================================================\n");
}

void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

int PrintComparisons(const std::vector<Comparison>& comparisons) {
  std::printf("\n%-44s %-22s %-22s %s\n", "quantity", "paper", "measured",
              "match");
  int mismatches = 0;
  for (const Comparison& c : comparisons) {
    std::printf("%-44s %-22s %-22s %s\n", c.quantity.c_str(),
                c.paper.c_str(), c.measured.c_str(),
                c.matches ? "yes" : "NO");
    if (!c.matches) ++mismatches;
  }
  return mismatches;
}

std::string YesNo(bool value) { return value ? "yes" : "no"; }

}  // namespace rpc::bench
