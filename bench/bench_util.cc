#include "bench_util.h"

#include <cstdio>

#include "obs/export.h"

namespace rpc::bench {

void PrintHeader(const std::string& experiment,
                 const std::string& paper_artefact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Regenerates: %s\n", paper_artefact.c_str());
  std::printf("================================================================\n");
}

void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

int PrintComparisons(const std::vector<Comparison>& comparisons) {
  std::printf("\n%-44s %-22s %-22s %s\n", "quantity", "paper", "measured",
              "match");
  int mismatches = 0;
  for (const Comparison& c : comparisons) {
    std::printf("%-44s %-22s %-22s %s\n", c.quantity.c_str(),
                c.paper.c_str(), c.measured.c_str(),
                c.matches ? "yes" : "NO");
    if (!c.matches) ++mismatches;
  }
  return mismatches;
}

std::string YesNo(bool value) { return value ? "yes" : "no"; }

void WriteTelemetrySnapshot(const std::string& bench_json_path) {
  std::string path = bench_json_path;
  const std::string suffix = ".json";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.resize(path.size() - suffix.size());
  }
  path += ".telemetry.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return;
  const std::string snapshot =
      obs::JsonSnapshot(obs::Registry::Global(), /*include_spans=*/false);
  std::fwrite(snapshot.data(), 1, snapshot.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace rpc::bench
