// E9 — ablation of the projection solver (Step 4 of Algorithm 1): Golden
// Section Search (the paper's choice) vs exact quintic root solving (the
// Jenkins-Traub role) vs a coarse grid. Measures wall time per projection
// and, as counters, the residual gap to the exact solver.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/rpc_curve.h"
#include "data/generators.h"
#include "opt/curve_projection.h"

namespace {

using rpc::core::RpcCurve;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::opt::ProjectionMethod;
using rpc::opt::ProjectionOptions;
using rpc::order::Orientation;

Matrix QueryPoints(int n, int d, uint64_t seed) {
  rpc::Rng rng(seed);
  Matrix points(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) points(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return points;
}

RpcCurve TestCurve(int d) {
  const Orientation alpha = Orientation::AllBenefit(d);
  rpc::Rng rng(17);
  Matrix control(d, 4);
  control.SetColumn(0, alpha.WorstCorner());
  control.SetColumn(3, alpha.BestCorner());
  for (int j = 0; j < d; ++j) {
    control(j, 1) = rng.Uniform(0.1, 0.9);
    control(j, 2) = rng.Uniform(0.1, 0.9);
  }
  auto curve = RpcCurve::FromControlPoints(control, alpha);
  return std::move(curve).value();
}

void RunProjection(benchmark::State& state, ProjectionMethod method,
                   int grid_points) {
  const int d = static_cast<int>(state.range(0));
  const RpcCurve curve = TestCurve(d);
  const Matrix queries = QueryPoints(256, d, 23);

  ProjectionOptions options;
  options.method = method;
  options.grid_points = grid_points;

  // Residual gap to the exact quintic solution, reported as a counter.
  ProjectionOptions exact;
  exact.method = ProjectionMethod::kQuinticRoots;
  double gap = 0.0;
  for (int i = 0; i < queries.rows(); ++i) {
    const auto approx =
        rpc::opt::ProjectOntoCurve(curve.bezier(), queries.Row(i), options);
    const auto truth =
        rpc::opt::ProjectOntoCurve(curve.bezier(), queries.Row(i), exact);
    gap += approx.squared_distance - truth.squared_distance;
  }

  for (auto _ : state) {
    for (int i = 0; i < queries.rows(); ++i) {
      auto result = rpc::opt::ProjectOntoCurve(curve.bezier(),
                                               queries.Row(i), options);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.rows());
  state.counters["excess_sqdist_total"] = gap;
}

void BM_ProjectGss(benchmark::State& state) {
  RunProjection(state, ProjectionMethod::kGoldenSection, 32);
}
BENCHMARK(BM_ProjectGss)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectQuinticRoots(benchmark::State& state) {
  RunProjection(state, ProjectionMethod::kQuinticRoots, 32);
}
BENCHMARK(BM_ProjectQuinticRoots)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectNewton(benchmark::State& state) {
  RunProjection(state, ProjectionMethod::kNewton, 32);
}
BENCHMARK(BM_ProjectNewton)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectGridOnly32(benchmark::State& state) {
  RunProjection(state, ProjectionMethod::kGridOnly, 32);
}
BENCHMARK(BM_ProjectGridOnly32)->Arg(2)->Arg(4)->Arg(8);

void BM_ProjectGridOnly512(benchmark::State& state) {
  RunProjection(state, ProjectionMethod::kGridOnly, 512);
}
BENCHMARK(BM_ProjectGridOnly512)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
