// E5 — Figs. 2 & 5 made quantitative: on crescent and parabolic clouds,
// count the comparable-pair order violations and strict ties produced by
// first PCA, the polyline principal curve, Elmap and the RPC, and probe C1
// smoothness of each skeleton. The schematic failures of the paper become
// measured numbers.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/elmap.h"
#include "baselines/hastie_stuetzle.h"
#include "baselines/polyline_curve.h"
#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/first_pca.h"
#include "rank/metrics.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;

struct MethodRow {
  std::string name;
  rpc::rank::OrderViolationReport report;
  bool fitted = false;
};

void Audit(const char* dataset_name, const Matrix& data,
           std::vector<MethodRow>* rows) {
  std::printf("\nDataset: %s (%d points)\n", dataset_name, data.rows());
  std::printf("%-14s %12s %12s %8s %12s\n", "method", "comparable",
              "violations", "ties", "failure rate");
  for (MethodRow& row : *rows) {
    if (!row.fitted) {
      std::printf("%-14s %12s\n", row.name.c_str(), "fit failed");
      continue;
    }
    std::printf("%-14s %12d %12d %8d %11.2f%%\n", row.name.c_str(),
                row.report.comparable_pairs, row.report.violations,
                row.report.ties, 100.0 * row.report.violation_rate());
  }
}

template <typename Fitter>
MethodRow RunMethod(const std::string& name, const Matrix& data,
                    const Orientation& alpha, Fitter fitter) {
  MethodRow row;
  row.name = name;
  auto scores = fitter(data, alpha);
  if (scores.size() == 0) return row;
  row.fitted = true;
  // Tolerance reflects "distinct objects in the same list place": scores
  // closer than 1e-6 of the score range count as ties.
  double lo = scores[0], hi = scores[0];
  for (int i = 0; i < scores.size(); ++i) {
    lo = std::min(lo, scores[i]);
    hi = std::max(hi, scores[i]);
  }
  const double tol = 1e-6 * std::max(hi - lo, 1e-12);
  row.report = rpc::rank::CountOrderViolations(data, scores, alpha, tol);
  return row;
}

std::vector<MethodRow> AuditAll(const Matrix& data,
                                const Orientation& alpha) {
  std::vector<MethodRow> rows;
  rows.push_back(RunMethod(
      "first PCA", data, alpha,
      [](const Matrix& d, const Orientation& a) -> Vector {
        auto fit = rpc::rank::FirstPcaRanker::Fit(d, a);
        return fit.ok() ? fit->ScoreRows(d) : Vector();
      }));
  rows.push_back(RunMethod(
      "polyline PC", data, alpha,
      [](const Matrix& d, const Orientation& a) -> Vector {
        auto fit = rpc::baselines::PolylineCurve::Fit(d, a);
        return fit.ok() ? fit->ScoreRows(d) : Vector();
      }));
  rows.push_back(RunMethod(
      "Elmap", data, alpha,
      [](const Matrix& d, const Orientation& a) -> Vector {
        auto fit = rpc::baselines::ElmapCurve::Fit(d, a);
        return fit.ok() ? fit->ScoreRows(d) : Vector();
      }));
  rows.push_back(RunMethod(
      "HS curve", data, alpha,
      [](const Matrix& d, const Orientation& a) -> Vector {
        auto fit = rpc::baselines::HastieStuetzleCurve::Fit(d, a);
        return fit.ok() ? fit->ScoreRows(d) : Vector();
      }));
  rows.push_back(RunMethod(
      "RPC", data, alpha,
      [](const Matrix& d, const Orientation& a) -> Vector {
        auto fit = rpc::core::RpcRanker::Fit(d, a);
        return fit.ok() ? fit->ScoreRows(d) : Vector();
      }));
  return rows;
}

const MethodRow& Find(const std::vector<MethodRow>& rows,
                      const std::string& name) {
  for (const MethodRow& row : rows) {
    if (row.name == name) return row;
  }
  std::fprintf(stderr, "method %s missing\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E5: order violations of ranking skeletons",
      "Figs. 2 & 5 (polyline/general principal curves break strict "
      "monotonicity; the RPC does not)");

  const Orientation alpha = Orientation::AllBenefit(2);

  // The crescent of Fig. 5(a): monotone but strongly bent.
  const Matrix crescent = rpc::data::GenerateCrescent(250, 0.02, 31);
  auto crescent_rows = AuditAll(crescent, alpha);
  Audit("crescent (Fig. 5a)", crescent, &crescent_rows);

  // The parabolic cloud of Fig. 2(b): its principal curve is non-monotone.
  const Matrix parabola = rpc::data::GenerateParabola(250, 0.02, 32);
  auto parabola_rows = AuditAll(parabola, alpha);
  Audit("parabola (Fig. 2b)", parabola, &parabola_rows);

  std::vector<rpc::bench::Comparison> comparisons;
  const auto& rpc_crescent = Find(crescent_rows, "RPC");
  comparisons.push_back(
      {"RPC violations+ties on crescent", "0 (strictly monotone)",
       rpc::StrFormat("%d", rpc_crescent.report.violations +
                               rpc_crescent.report.ties),
       rpc_crescent.report.violations + rpc_crescent.report.ties == 0});
  const auto& rpc_parabola = Find(parabola_rows, "RPC");
  comparisons.push_back(
      {"RPC violations on parabola", "0 (strictly monotone)",
       rpc::StrFormat("%d", rpc_parabola.report.violations),
       rpc_parabola.report.violations == 0});
  const auto& elmap_parabola = Find(parabola_rows, "Elmap");
  comparisons.push_back(
      {"general principal curve fails on parabola",
       "yes (x3/x4, x5/x6 of Example 1)",
       rpc::StrFormat("%d violations+ties",
                      elmap_parabola.report.violations +
                          elmap_parabola.report.ties),
       elmap_parabola.report.violations + elmap_parabola.report.ties > 0});
  const auto& hs_parabola = Find(parabola_rows, "HS curve");
  comparisons.push_back(
      {"Hastie-Stuetzle curve also fails on parabola",
       "yes (Fig. 2b literally)",
       rpc::StrFormat("%d violations+ties", hs_parabola.report.violations +
                                                hs_parabola.report.ties),
       hs_parabola.report.violations + hs_parabola.report.ties > 0});
  const auto& poly_crescent = Find(crescent_rows, "polyline PC");
  const bool poly_worse =
      poly_crescent.report.violations + poly_crescent.report.ties >
      rpc_crescent.report.violations + rpc_crescent.report.ties;
  comparisons.push_back({"polyline worse than RPC on crescent",
                         "yes (non-smooth, non-strict)",
                         rpc::bench::YesNo(poly_worse), poly_worse});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE5 mismatches vs paper: %d\n", mismatches);
  return 0;
}
