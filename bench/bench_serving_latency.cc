// Serving-tier latency under QoS: per-priority-class latency quantiles
// (p50/p99/p999) of serve::RankingService at saturating mixed-priority
// load, plus a single-thread closed-loop row whose queries_per_sec the CI
// regression gate checks, plus a micro-batch coalescing row.
//
// Before any timing the served scores are verified bit-identical to
// PortableRpcModel::Score (the same normalise + project arithmetic
// RpcRanker runs in process); any mismatch fails the run.
//
//   build/bench_serving_latency [--quick]
//
// Full runs rewrite BENCH_serving_latency.json (one JSON row per
// configuration, the committed perf record the CI regression gate compares
// against); --quick runs a key-identical grid with shorter timing windows
// and writes BENCH_serving_latency.quick.json instead, so CI smokes never
// clobber the curated baselines.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

#include "bench_util.h"

namespace {

using rpc::Rng;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::serve::AdmissionPolicy;
using rpc::serve::QueryOptions;
using rpc::serve::QueryPriority;
using rpc::serve::RankingService;

// Synthetic all-benefit portable model over a random strictly monotone
// cubic — the serving tier never fits, so neither does its bench. Keep in
// sync with the copy in tests/serve/ranking_service_test.cc.
rpc::core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  rpc::core::PortableRpcModel model;
  model.alpha = rpc::order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

// One driver class's aggregated outcome over the timing window.
struct ClassResult {
  std::vector<double> latencies_us;  // completed queries only
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t deadline_expired = 0;
  std::int64_t coalesced = 0;
  double seconds = 0.0;

  void Merge(const ClassResult& other) {
    latencies_us.insert(latencies_us.end(), other.latencies_us.begin(),
                        other.latencies_us.end());
    completed += other.completed;
    shed += other.shed;
    deadline_expired += other.deadline_expired;
    coalesced += other.coalesced;
  }
};

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto n = static_cast<std::int64_t>(sorted_us.size());
  const auto rank = std::min<std::int64_t>(
      n - 1, static_cast<std::int64_t>(q * static_cast<double>(n)));
  return sorted_us[static_cast<size_t>(rank)];
}

void EmitJson(std::FILE* sink, const char* variant, const char* priority,
              int batch, int threads, int callers, ClassResult& r) {
  std::sort(r.latencies_us.begin(), r.latencies_us.end());
  const double qps =
      r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;
  const std::string line =
      std::string("{\"bench\":\"serving_latency\",\"variant\":\"") + variant +
      "\",\"priority\":\"" + priority +
      "\",\"batch\":" + std::to_string(batch) +
      ",\"threads\":" + std::to_string(threads) +
      ",\"callers\":" + std::to_string(callers) +
      ",\"queries_per_sec\":" + std::to_string(qps) +
      ",\"p50_us\":" + std::to_string(Quantile(r.latencies_us, 0.5)) +
      ",\"p99_us\":" + std::to_string(Quantile(r.latencies_us, 0.99)) +
      ",\"p999_us\":" + std::to_string(Quantile(r.latencies_us, 0.999)) +
      ",\"completed\":" + std::to_string(r.completed) +
      ",\"shed\":" + std::to_string(r.shed) +
      ",\"deadline_expired\":" + std::to_string(r.deadline_expired) +
      ",\"coalesced\":" + std::to_string(r.coalesced) + "}";
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

// Issues `options`-policy queries in a closed loop until `min_seconds`
// elapses, recording per-query latency for the completed ones.
ClassResult Drive(const RankingService& service, const Matrix& rows,
                  const QueryOptions& options, double min_seconds) {
  ClassResult result;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto before = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(before - start).count() >= min_seconds) {
      break;
    }
    QueryOptions per_query = options;
    if (options.deadline != std::chrono::steady_clock::time_point::max()) {
      // Re-arm relative deadlines per query; `options.deadline` carries the
      // budget encoded as an offset from the epoch.
      per_query.deadline = before + options.deadline.time_since_epoch();
    }
    const auto batch = service.Query("ds", rows, per_query);
    const auto after = std::chrono::steady_clock::now();
    if (batch.ok()) {
      ++result.completed;
      if (batch->trace.coalesced) ++result.coalesced;
      result.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(after - before).count());
    } else if (batch.status().code() ==
               rpc::StatusCode::kDeadlineExceeded) {
      ++result.deadline_expired;
    } else {
      ++result.shed;
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

// Runs `callers` Drive loops concurrently and merges their results.
ClassResult DriveConcurrent(const RankingService& service, const Matrix& rows,
                            const QueryOptions& options, int callers,
                            double min_seconds) {
  std::vector<ClassResult> per_caller(static_cast<size_t>(callers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(callers));
  for (int c = 0; c < callers; ++c) {
    threads.emplace_back([&, c] {
      per_caller[static_cast<size_t>(c)] =
          Drive(service, rows, options, min_seconds);
    });
  }
  for (auto& t : threads) t.join();
  ClassResult merged;
  merged.seconds = min_seconds;
  for (ClassResult& r : per_caller) {
    merged.seconds = std::max(merged.seconds, r.seconds);
    merged.Merge(r);
  }
  return merged;
}

int VerifyBitIdentity(const RankingService& service,
                      const rpc::core::PortableRpcModel& model,
                      const Matrix& rows) {
  const auto batch = service.Query("ds", rows);
  if (!batch.ok()) {
    std::fprintf(stderr, "verify: query failed: %s\n",
                 batch.status().ToString().c_str());
    return rows.rows();
  }
  int mismatches = 0;
  for (int i = 0; i < rows.rows(); ++i) {
    const auto expected = model.Score(rows.Row(i));
    if (!expected.ok() || batch->scores[i] != *expected) ++mismatches;
  }
  return mismatches;
}

// Encodes a relative deadline budget in a QueryOptions the Drive loop can
// re-arm per query (see Drive).
QueryOptions WithBudget(QueryPriority priority, AdmissionPolicy admission,
                        std::chrono::nanoseconds budget) {
  QueryOptions options;
  options.priority = priority;
  options.admission = admission;
  options.deadline =
      std::chrono::steady_clock::time_point(budget);  // offset, re-armed
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  constexpr int kDim = 8;
  const double min_seconds = quick ? 0.15 : 0.5;
  const rpc::core::PortableRpcModel model = MonotoneModel(kDim, 42);

  const char* sink_path = quick ? "BENCH_serving_latency.quick.json"
                                : "BENCH_serving_latency.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("# serving latency under QoS; %d hardware thread(s); JSON "
              "also in %s\n",
              hw > 0 ? hw : 1, sink_path);

  // -- Row 1: single-thread closed loop, the machine-comparable row the CI
  //    regression gate checks (threads == 1, callers == 1).
  {
    RankingService::Options options;
    options.num_threads = 1;
    RankingService service(options);
    if (!service.RegisterDataset("ds", model).ok()) return 1;
    const Matrix rows = RandomRows(8, kDim, 7);
    if (VerifyBitIdentity(service, model, rows) != 0) {
      std::fprintf(stderr, "verify: served scores are not bit-identical\n");
      return 1;
    }
    (void)service.Query("ds", rows);  // warm-up
    ClassResult r = Drive(service, rows, QueryOptions(), min_seconds);
    EmitJson(sink, "closed_loop", "interactive", rows.rows(), 1, 1, r);
  }

  // -- Rows 2-4: saturating mixed-priority load on a full-pool service with
  //    a small admission queue. Two batch-class callers push large blocking
  //    queries (the saturators), two interactive callers run small
  //    deadline-bounded queries through lane 0, and two background callers
  //    offer kReject load that the watermarks shed first. Caller counts are
  //    fixed (not hw-derived) so row identities match across machines;
  //    these rows are reported, never gated.
  {
    RankingService::Options options;
    // One dedicated worker regardless of the machine: the point of this
    // scenario is queue behaviour under saturation, which an inline pool
    // (hw = 1) would hide and a huge pool would need far more load to show.
    options.num_threads = 2;
    options.queue_capacity = 16;  // watermarks: 16 / 12 / 8
    options.segment_rows = 256;
    RankingService service(options);
    if (!service.RegisterDataset("ds", model).ok()) return 1;
    const Matrix small = RandomRows(8, kDim, 8);
    const Matrix large = RandomRows(8192, kDim, 9);
    if (VerifyBitIdentity(service, model, small) != 0) return 1;

    const QueryOptions interactive =
        WithBudget(QueryPriority::kInteractive, AdmissionPolicy::kBlock,
                   std::chrono::milliseconds(100));
    QueryOptions batch;
    batch.priority = QueryPriority::kBatch;
    QueryOptions background;
    background.priority = QueryPriority::kBackground;
    background.admission = AdmissionPolicy::kReject;

    ClassResult r_interactive, r_batch, r_background;
    std::thread t_batch([&] {
      r_batch = DriveConcurrent(service, large, batch, 2, min_seconds);
    });
    std::thread t_background([&] {
      r_background =
          DriveConcurrent(service, small, background, 2, min_seconds);
    });
    r_interactive =
        DriveConcurrent(service, small, interactive, 2, min_seconds);
    t_batch.join();
    t_background.join();

    EmitJson(sink, "qos_saturated", "interactive", small.rows(), 2, 2,
             r_interactive);
    EmitJson(sink, "qos_saturated", "batch", large.rows(), 2, 2, r_batch);
    EmitJson(sink, "qos_saturated", "background", small.rows(), 2, 2,
             r_background);
  }

  // -- Row 5: micro-batch coalescing. Four callers issue single-row
  //    queries; the 200 us window groups them so several rides share one
  //    workspace checkout + dispatch.
  {
    RankingService::Options options;
    options.num_threads = 0;
    options.max_coalesce_delay = std::chrono::microseconds(200);
    options.coalesce_max_rows = 4;
    options.coalesce_flush_rows = 16;
    RankingService service(options);
    if (!service.RegisterDataset("ds", model).ok()) return 1;
    const Matrix one = RandomRows(1, kDim, 10);
    if (VerifyBitIdentity(service, model, one) != 0) return 1;
    ClassResult r =
        DriveConcurrent(service, one, QueryOptions(), 4, min_seconds);
    EmitJson(sink, "coalesce", "interactive", one.rows(), 0, 4, r);
  }

  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
