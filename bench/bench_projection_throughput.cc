// Projection-engine throughput and end-to-end fit time.
//
// Default mode: rows/sec for the seed's allocating serial path vs. the
// allocation-free batch engine (1 thread and a full pool), across n x d
// configurations; JSON lines on stdout and written to
// BENCH_projection_throughput.json.
//
// --fit mode: end-to-end RpcLearner::Fit wall time for every projection
// method under ReprojectionMode::kFull vs kWarmStart (single-thread,
// identical data and options), with the warm fit's final J and ranking
// order checked against the full fit; JSON lines on stdout and in
// BENCH_fit_time.json. Both files keep the perf trajectory diffable
// across PRs; --quick runs write *.quick.json instead so CI smokes never
// clobber the committed full-mode records.
//
//   build/bench_projection_throughput [--fit] [--quick]
//
// --quick shrinks the grid and the minimum timing window for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/rpc_learner.h"
#include "curve/bernstein.h"
#include "curve/simd_backend.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/batch_projection.h"
#include "opt/curve_projection.h"
#include "opt/golden_section.h"
#include "order/orientation.h"
#include "rank/ranking_list.h"

#include "bench_util.h"

namespace {

using rpc::Rng;
using rpc::ThreadPool;
using rpc::curve::BezierCurve;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::opt::ProjectionOptions;
using rpc::opt::ProjectionResult;

// ---- Seed replica ---------------------------------------------------------
// The pre-engine hot path, reproduced verbatim in spirit: de Casteljau with
// a fresh std::vector<Vector> per curve evaluation and Golden Section via
// std::function — dozens of heap allocations per projected point. Kept here
// so the speedup baseline stays honest after the library path was replaced.

Vector SeedEvaluate(const BezierCurve& curve, double s) {
  const int k = curve.degree();
  const int d = curve.dimension();
  const Matrix& points = curve.control_points();
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points.Column(r));
  for (int level = k; level >= 1; --level) {
    for (int r = 0; r < level; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
  }
  return work[0];
}

double SeedSquaredDistanceAt(const BezierCurve& curve, const Vector& x,
                             double s) {
  const Vector f = SeedEvaluate(curve, s);
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double diff = x[i] - f[i];
    sum += diff * diff;
  }
  return sum;
}

constexpr double kTieRelTol = 1e-9;

ProjectionResult SeedProjectGss(const BezierCurve& curve, const Vector& x,
                                const ProjectionOptions& options) {
  const int g = options.grid_points;
  std::vector<double> dist(static_cast<size_t>(g) + 1);
  for (int i = 0; i <= g; ++i) {
    dist[static_cast<size_t>(i)] =
        SeedSquaredDistanceAt(curve, x, static_cast<double>(i) / g);
  }
  ProjectionResult best;
  best.squared_distance = dist[0];
  best.s = 0.0;
  for (int i = 1; i <= g; ++i) {
    const double s = static_cast<double>(i) / g;
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (dist[static_cast<size_t>(i)] < best.squared_distance - slack ||
        (dist[static_cast<size_t>(i)] <= best.squared_distance + slack &&
         s > best.s)) {
      best.squared_distance = dist[static_cast<size_t>(i)];
      best.s = s;
    }
  }
  const std::function<double(double)> objective = [&](double s) {
    return SeedSquaredDistanceAt(curve, x, s);
  };
  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || dist[static_cast<size_t>(i)] <=
                                       dist[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || dist[static_cast<size_t>(i)] <=
                                        dist[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const rpc::opt::ScalarMinResult gss =
        rpc::opt::GoldenSectionMinimize(objective, lo, hi, options.tol);
    const double refined = SeedSquaredDistanceAt(curve, x, gss.x);
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (refined < best.squared_distance - slack ||
        (refined <= best.squared_distance + slack && gss.x > best.s)) {
      best.squared_distance = refined;
      best.s = gss.x;
    }
  }
  return best;
}

// ---- Harness --------------------------------------------------------------

BezierCurve RandomMonotoneCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return data;
}

// Runs `pass` (one full sweep over n rows) until `min_seconds` of wall time
// has elapsed; returns rows per second.
double MeasureRowsPerSec(int n, double min_seconds,
                         const std::function<void()>& pass) {
  pass();  // warm-up: page in data, spin up threads
  const auto start = std::chrono::steady_clock::now();
  int passes = 0;
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < min_seconds);
  return static_cast<double>(n) * passes / elapsed;
}

// `extra` is appended verbatim (",\"key\":value" pairs) — the per-variant
// fields: the SIMD backend that ran the row (informational, ignored by the
// gate's row matching so baselines stay machine-portable), the curve count
// of the batch-of-curves rows, speedup_vs_separate.
void EmitJson(std::FILE* sink, const std::string& variant, int n, int d,
              int threads, double rows_per_sec, double speedup,
              const std::string& extra = std::string()) {
  const std::string line = std::string("{\"bench\":\"projection_throughput\"") +
      ",\"method\":\"gss\",\"variant\":\"" + variant +
      "\",\"n\":" + std::to_string(n) + ",\"d\":" + std::to_string(d) +
      ",\"threads\":" + std::to_string(threads) +
      ",\"rows_per_sec\":" + std::to_string(rows_per_sec) +
      ",\"speedup_vs_seed\":" + std::to_string(speedup) + extra + "}";
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

// ---- End-to-end fit bench -------------------------------------------------

const char* MethodTag(rpc::opt::ProjectionMethod method) {
  switch (method) {
    case rpc::opt::ProjectionMethod::kGoldenSection: return "gss";
    case rpc::opt::ProjectionMethod::kQuinticRoots: return "quintic";
    case rpc::opt::ProjectionMethod::kGridOnly: return "grid";
    case rpc::opt::ProjectionMethod::kNewton: return "newton";
  }
  return "?";
}

// Ranking order induced by the scores (best first, index ties broken low) —
// the same library helper the warm-start equivalence test gates on.
std::vector<int> RankingOrder(const Vector& scores) {
  return rpc::rank::RankingList(scores).OrderedIndices();
}

int RunFitBench(bool quick) {
  const int n = quick ? 2000 : 100000;
  const int d = 4;
  const rpc::order::Orientation alpha =
      *rpc::order::Orientation::FromSigns({+1, +1, +1, +1});
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
                  .seed = 20260726});
  const auto norm = rpc::data::Normalizer::Fit(sample.data);
  if (!norm.ok()) {
    std::fprintf(stderr, "normalizer failed: %s\n",
                 norm.status().ToString().c_str());
    return 1;
  }
  const Matrix normalized = norm->Transform(sample.data);

  // Quick (CI smoke) runs write to a separate file so they never truncate
  // the committed full-mode record the ROADMAP numbers cite.
  const char* sink_path =
      quick ? "BENCH_fit_time.quick.json" : "BENCH_fit_time.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# end-to-end fit time (n=%d, d=%d, 1 thread); JSON also in "
              "%s\n", n, d, sink_path);

  // The warm fit must reproduce the full fit's quality: same final J within
  // this relative tolerance (ranking-order identity on the paper's small,
  // well-separated fixtures is asserted by rpc_learner_warmstart_test; at
  // n = 100k two *independently learned* curves always permute some
  // near-tied neighbours, so the bench reports rank agreement as a
  // diagnostic instead of gating on it).
  constexpr double kJRelTol = 1e-4;

  int failures = 0;
  for (rpc::opt::ProjectionMethod method :
       {rpc::opt::ProjectionMethod::kGoldenSection,
        rpc::opt::ProjectionMethod::kNewton,
        rpc::opt::ProjectionMethod::kQuinticRoots,
        rpc::opt::ProjectionMethod::kGridOnly}) {
    double full_seconds = 0.0;
    double full_j = 0.0;
    Vector full_scores;
    bool full_ok = false;
    for (int warm = 0; warm <= 1; ++warm) {
      rpc::core::RpcLearnOptions options;
      options.projection.method = method;
      options.num_threads = 1;
      options.seed = 1234;
      // The paper's recommended usage: several random restarts, best J
      // wins (Theorem 3). This also amortises iteration-count luck — a
      // single trajectory can hit the Step 6-8 rollback after a handful of
      // iterations, which is not the convergence regime the warm start
      // targets.
      options.restarts = quick ? 2 : 8;
      options.reprojection = warm ? rpc::core::ReprojectionMode::kWarmStart
                                  : rpc::core::ReprojectionMode::kFull;
      const auto start = std::chrono::steady_clock::now();
      const auto fit =
          rpc::core::RpcLearner(options).Fit(normalized, alpha);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!fit.ok()) {
        std::fprintf(stderr, "fit failed (%s): %s\n", MethodTag(method),
                     fit.status().ToString().c_str());
        ++failures;
        continue;
      }
      bool order_matches = true;
      double j_rel_diff = 0.0;
      double max_score_diff = 0.0;
      if (warm == 0) {
        full_seconds = seconds;
        full_j = fit->final_j;
        full_scores = fit->scores;
        full_ok = true;
      } else if (full_ok) {
        j_rel_diff = std::fabs(fit->final_j - full_j) /
                     std::max(std::fabs(full_j), 1e-300);
        order_matches = RankingOrder(fit->scores) == RankingOrder(full_scores);
        for (int i = 0; i < fit->scores.size(); ++i) {
          max_score_diff = std::max(
              max_score_diff, std::fabs(fit->scores[i] - full_scores[i]));
        }
        if (j_rel_diff > kJRelTol) ++failures;
      }
      std::string line =
          std::string("{\"bench\":\"fit_time\",\"method\":\"") +
          MethodTag(method) + "\",\"reprojection\":\"" +
          (warm ? "warm" : "full") + "\",\"n\":" + std::to_string(n) +
          ",\"d\":" + std::to_string(d) + ",\"threads\":1" +
          ",\"restarts\":" + std::to_string(options.restarts) +
          ",\"seconds\":" + std::to_string(seconds) +
          // Stage split (summed over restarts): Step 4 vs the Step 5
          // normal-equation streaming + control-point update.
          ",\"projection_seconds\":" +
          std::to_string(fit->projection_seconds) +
          ",\"update_seconds\":" + std::to_string(fit->update_seconds) +
          ",\"iterations\":" + std::to_string(fit->iterations) +
          ",\"final_j\":" + std::to_string(fit->final_j);
      // Comparison fields only when the full baseline actually ran — a warm
      // line must not read as a perfect match when there was no comparison.
      if (warm == 0 || full_ok) {
        line += ",\"speedup_vs_full\":" +
                std::to_string(warm ? full_seconds / seconds : 1.0) +
                ",\"j_rel_diff_vs_full\":" + std::to_string(j_rel_diff) +
                ",\"max_score_diff_vs_full\":" +
                std::to_string(max_score_diff) +
                ",\"ranking_matches_full\":" +
                (order_matches ? "true" : "false");
      }
      line += "}";
      std::printf("%s\n", line.c_str());
      if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
    }
  }
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool fit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--fit") == 0) fit = true;
  }
  if (fit) return RunFitBench(quick);

  const std::vector<int> ns =
      quick ? std::vector<int>{1000, 10000}
            : std::vector<int>{1000, 10000, 100000};
  const std::vector<int> ds =
      quick ? std::vector<int>{2, 8} : std::vector<int>{2, 8, 32};
  const double min_seconds = quick ? 0.05 : 0.25;

  ThreadPool pool(0);  // hardware concurrency
  const int hw_threads = pool.parallelism();
  const char* sink_path = quick ? "BENCH_projection_throughput.quick.json"
                                : "BENCH_projection_throughput.json";
  std::FILE* sink = std::fopen(sink_path, "w");

  const rpc::curve::SimdBackendKind active_backend =
      rpc::curve::ActiveSimdKind();
  const std::string backend_extra =
      std::string(",\"backend\":\"") + rpc::curve::BackendName() + "\"";

  std::printf("# projection throughput (GSS, grid=32); %d hardware "
              "thread(s); SIMD backend %s; JSON also in %s\n",
              hw_threads, rpc::curve::BackendName(), sink_path);
  for (int d : ds) {
    const BezierCurve curve = RandomMonotoneCubic(d, 1000 + d);
    for (int n : ns) {
      const Matrix data = RandomData(n, d, 2000 + n + d);
      const ProjectionOptions options;  // GSS, grid 32

      // Seed path on a subsample when n is large, scaled to rows/sec, so
      // the slow baseline doesn't dominate bench runtime.
      const int seed_rows = std::min(n, 10000);
      const double seed_rps =
          MeasureRowsPerSec(seed_rows, min_seconds, [&] {
            for (int i = 0; i < seed_rows; ++i) {
              const ProjectionResult r =
                  SeedProjectGss(curve, data.Row(i), options);
              (void)r;
            }
          });
      EmitJson(sink, "seed_serial", n, d, 1, seed_rps, 1.0);

      const double engine1_rps = MeasureRowsPerSec(n, min_seconds, [&] {
        double total = 0.0;
        const Vector scores =
            rpc::opt::ProjectRowsBatch(curve, data, options, nullptr, &total);
        (void)scores;
      });
      EmitJson(sink, "engine_serial", n, d, 1, engine1_rps,
               engine1_rps / seed_rps, backend_extra);

      // Same single-thread sweep with the dispatcher pinned to the scalar
      // backend: the vector backends' value is exactly the gap between
      // this row and engine_serial on the same machine.
      rpc::curve::SetSimdBackend(rpc::curve::SimdBackendKind::kScalar);
      const double scalar_rps = MeasureRowsPerSec(n, min_seconds, [&] {
        double total = 0.0;
        const Vector scores =
            rpc::opt::ProjectRowsBatch(curve, data, options, nullptr, &total);
        (void)scores;
      });
      rpc::curve::SetSimdBackend(active_backend);
      EmitJson(sink, "engine_serial_scalar", n, d, 1, scalar_rps,
               scalar_rps / seed_rps, ",\"backend\":\"scalar\"");

      const double engineN_rps = MeasureRowsPerSec(n, min_seconds, [&] {
        double total = 0.0;
        const Vector scores =
            rpc::opt::ProjectRowsBatch(curve, data, options, &pool, &total);
        (void)scores;
      });
      EmitJson(sink, "engine_parallel", n, d, hw_threads, engineN_rps,
               engineN_rps / seed_rps, backend_extra);

      // Batch-of-curves rows, once per d at the largest n: M model
      // candidates scored over one dataset (the model-selection / A-B
      // serving shape). rows_per_sec counts row-projections (n * curves
      // per pass); "separate" runs the single-curve batch per curve,
      // "batch" packs each SoA tile once and scores all curves from it.
      if (n == ns.back()) {
        constexpr int kCurves = 4;
        std::vector<BezierCurve> owned;
        owned.reserve(kCurves);
        for (int c = 0; c < kCurves; ++c) {
          owned.push_back(RandomMonotoneCubic(d, 3000 + 16 * d + c));
        }
        std::vector<const BezierCurve*> curves;
        for (const BezierCurve& c : owned) curves.push_back(&c);
        const std::string curves_extra = ",\"curves\":" +
                                         std::to_string(kCurves);

        const double separate_rps =
            MeasureRowsPerSec(n * kCurves, min_seconds, [&] {
              for (const BezierCurve* c : curves) {
                double total = 0.0;
                const Vector scores = rpc::opt::ProjectRowsBatch(
                    *c, data, options, nullptr, &total);
                (void)scores;
              }
            });
        EmitJson(sink, "multi_curve_separate", n, d, 1, separate_rps,
                 separate_rps / seed_rps, curves_extra + backend_extra);

        const double batch_rps =
            MeasureRowsPerSec(n * kCurves, min_seconds, [&] {
              std::vector<double> totals;
              const std::vector<Vector> scores =
                  rpc::opt::ProjectRowsBatchMultiCurve(curves, data, options,
                                                       nullptr, &totals);
              (void)scores;
            });
        EmitJson(sink, "multi_curve_batch", n, d, 1, batch_rps,
                 batch_rps / seed_rps,
                 curves_extra + ",\"speedup_vs_separate\":" +
                     std::to_string(batch_rps / separate_rps) +
                     backend_extra);
      }
    }
  }
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
