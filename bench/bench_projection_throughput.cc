// Projection-engine throughput: rows/sec for the seed's allocating serial
// path vs. the allocation-free batch engine (1 thread and a full pool),
// across n x d configurations. One JSON line per measurement on stdout and
// appended to BENCH_projection_throughput.json, so the perf trajectory is
// diffable across PRs.
//
//   build/bench_projection_throughput [--quick]
//
// --quick shrinks the grid and the minimum timing window for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "curve/bernstein.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/batch_projection.h"
#include "opt/curve_projection.h"
#include "opt/golden_section.h"

namespace {

using rpc::Rng;
using rpc::ThreadPool;
using rpc::curve::BezierCurve;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::opt::ProjectionOptions;
using rpc::opt::ProjectionResult;

// ---- Seed replica ---------------------------------------------------------
// The pre-engine hot path, reproduced verbatim in spirit: de Casteljau with
// a fresh std::vector<Vector> per curve evaluation and Golden Section via
// std::function — dozens of heap allocations per projected point. Kept here
// so the speedup baseline stays honest after the library path was replaced.

Vector SeedEvaluate(const BezierCurve& curve, double s) {
  const int k = curve.degree();
  const int d = curve.dimension();
  const Matrix& points = curve.control_points();
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points.Column(r));
  for (int level = k; level >= 1; --level) {
    for (int r = 0; r < level; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
  }
  return work[0];
}

double SeedSquaredDistanceAt(const BezierCurve& curve, const Vector& x,
                             double s) {
  const Vector f = SeedEvaluate(curve, s);
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double diff = x[i] - f[i];
    sum += diff * diff;
  }
  return sum;
}

constexpr double kTieRelTol = 1e-9;

ProjectionResult SeedProjectGss(const BezierCurve& curve, const Vector& x,
                                const ProjectionOptions& options) {
  const int g = options.grid_points;
  std::vector<double> dist(static_cast<size_t>(g) + 1);
  for (int i = 0; i <= g; ++i) {
    dist[static_cast<size_t>(i)] =
        SeedSquaredDistanceAt(curve, x, static_cast<double>(i) / g);
  }
  ProjectionResult best;
  best.squared_distance = dist[0];
  best.s = 0.0;
  for (int i = 1; i <= g; ++i) {
    const double s = static_cast<double>(i) / g;
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (dist[static_cast<size_t>(i)] < best.squared_distance - slack ||
        (dist[static_cast<size_t>(i)] <= best.squared_distance + slack &&
         s > best.s)) {
      best.squared_distance = dist[static_cast<size_t>(i)];
      best.s = s;
    }
  }
  const std::function<double(double)> objective = [&](double s) {
    return SeedSquaredDistanceAt(curve, x, s);
  };
  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || dist[static_cast<size_t>(i)] <=
                                       dist[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || dist[static_cast<size_t>(i)] <=
                                        dist[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const rpc::opt::ScalarMinResult gss =
        rpc::opt::GoldenSectionMinimize(objective, lo, hi, options.tol);
    const double refined = SeedSquaredDistanceAt(curve, x, gss.x);
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (refined < best.squared_distance - slack ||
        (refined <= best.squared_distance + slack && gss.x > best.s)) {
      best.squared_distance = refined;
      best.s = gss.x;
    }
  }
  return best;
}

// ---- Harness --------------------------------------------------------------

BezierCurve RandomMonotoneCubic(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  return BezierCurve(control);
}

Matrix RandomData(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return data;
}

// Runs `pass` (one full sweep over n rows) until `min_seconds` of wall time
// has elapsed; returns rows per second.
double MeasureRowsPerSec(int n, double min_seconds,
                         const std::function<void()>& pass) {
  pass();  // warm-up: page in data, spin up threads
  const auto start = std::chrono::steady_clock::now();
  int passes = 0;
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < min_seconds);
  return static_cast<double>(n) * passes / elapsed;
}

void EmitJson(std::FILE* sink, const std::string& variant, int n, int d,
              int threads, double rows_per_sec, double speedup) {
  const std::string line = std::string("{\"bench\":\"projection_throughput\"") +
      ",\"method\":\"gss\",\"variant\":\"" + variant +
      "\",\"n\":" + std::to_string(n) + ",\"d\":" + std::to_string(d) +
      ",\"threads\":" + std::to_string(threads) +
      ",\"rows_per_sec\":" + std::to_string(rows_per_sec) +
      ",\"speedup_vs_seed\":" + std::to_string(speedup) + "}";
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> ns =
      quick ? std::vector<int>{1000, 10000}
            : std::vector<int>{1000, 10000, 100000};
  const std::vector<int> ds =
      quick ? std::vector<int>{2, 8} : std::vector<int>{2, 8, 32};
  const double min_seconds = quick ? 0.05 : 0.25;

  ThreadPool pool(0);  // hardware concurrency
  const int hw_threads = pool.parallelism();
  std::FILE* sink = std::fopen("BENCH_projection_throughput.json", "w");

  std::printf("# projection throughput (GSS, grid=32); %d hardware "
              "thread(s); JSON also in BENCH_projection_throughput.json\n",
              hw_threads);
  for (int d : ds) {
    const BezierCurve curve = RandomMonotoneCubic(d, 1000 + d);
    for (int n : ns) {
      const Matrix data = RandomData(n, d, 2000 + n + d);
      const ProjectionOptions options;  // GSS, grid 32

      // Seed path on a subsample when n is large, scaled to rows/sec, so
      // the slow baseline doesn't dominate bench runtime.
      const int seed_rows = std::min(n, 10000);
      const double seed_rps =
          MeasureRowsPerSec(seed_rows, min_seconds, [&] {
            for (int i = 0; i < seed_rows; ++i) {
              const ProjectionResult r =
                  SeedProjectGss(curve, data.Row(i), options);
              (void)r;
            }
          });
      EmitJson(sink, "seed_serial", n, d, 1, seed_rps, 1.0);

      const double engine1_rps = MeasureRowsPerSec(n, min_seconds, [&] {
        double total = 0.0;
        const Vector scores =
            rpc::opt::ProjectRowsBatch(curve, data, options, nullptr, &total);
        (void)scores;
      });
      EmitJson(sink, "engine_serial", n, d, 1, engine1_rps,
               engine1_rps / seed_rps);

      const double engineN_rps = MeasureRowsPerSec(n, min_seconds, [&] {
        double total = 0.0;
        const Vector scores =
            rpc::opt::ProjectRowsBatch(curve, data, options, &pool, &total);
        (void)scores;
      });
      EmitJson(sink, "engine_parallel", n, d, hw_threads, engineN_rps,
               engineN_rps / seed_rps);
    }
  }
  if (sink != nullptr) std::fclose(sink);
  return 0;
}
