// Telemetry overhead on the serving closed loop: the same single-thread
// query loop the serving-throughput bench gates, measured with runtime
// tracing ON (every query mints a trace id and emits its span timeline)
// and OFF (obs::SetTracingEnabled(false): metrics still count, span sites
// are no-ops). The contract in docs/observability.md: enabled stays
// within 2% of disabled; an RPC_OBS_DISABLED build compiles every span
// site away entirely and both variants measure the same loop.
//
//   build/bench_obs_overhead [--quick]
//
// Full runs rewrite BENCH_obs_overhead.json; --quick runs write
// BENCH_obs_overhead.quick.json with the same row keys for the CI gate.
// The enabled/disabled windows interleave round-robin so slow drift in
// machine load cancels instead of biasing one variant.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/trace.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace {

using rpc::Rng;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::serve::RankingService;

// Same synthetic monotone model as bench_serving_throughput.cc.
rpc::core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  rpc::core::PortableRpcModel model;
  model.alpha = rpc::order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

struct Tally {
  std::int64_t queries = 0;
  std::int64_t rows = 0;
  double seconds = 0.0;
  double QueriesPerSec() const {
    return seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  }
  double RowsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0;
  }
};

// One closed-loop window: synchronous queries until `window_seconds` of
// wall time elapse, accumulated into `tally`.
void RunWindow(const RankingService& service, const Matrix& batch,
               double window_seconds, Tally* tally) {
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (true) {
    const auto result = service.Query("d", batch);
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
    if (!result.ok()) break;  // unreachable: the dataset is registered
    ++tally->queries;
    tally->rows += result->scores.size();
    if (elapsed >= window_seconds) break;
  }
  tally->seconds += elapsed;
}

void EmitJson(std::FILE* sink, const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int d = 8;
  const int batch_rows = 64;
  const int rounds = quick ? 3 : 6;
  const double window_seconds = quick ? 0.05 : 0.25;

  RankingService::Options options;
  options.num_threads = 1;  // the machine-comparable closed-loop row
  RankingService service(options);
  const rpc::Status registered =
      service.RegisterDataset("d", MonotoneModel(d, 41));
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    return 1;
  }
  const Matrix batch = RandomRows(batch_rows, d, 42);

  const char* sink_path =
      quick ? "BENCH_obs_overhead.quick.json" : "BENCH_obs_overhead.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# telemetry overhead on the serving closed loop "
              "(threads=1, batch=%d, d=%d); JSON also in %s\n",
              batch_rows, d, sink_path);

  // Warm-up outside both tallies.
  {
    Tally warm;
    RunWindow(service, batch, window_seconds, &warm);
  }

  Tally enabled;
  Tally disabled;
  for (int round = 0; round < rounds; ++round) {
    rpc::obs::SetTracingEnabled(false);
    RunWindow(service, batch, window_seconds, &disabled);
    rpc::obs::SetTracingEnabled(true);
    RunWindow(service, batch, window_seconds, &enabled);
  }
  rpc::obs::SetTracingEnabled(true);  // leave the process default behind

  const std::string identity = std::string(",\"threads\":1,\"callers\":1") +
                               ",\"batch\":" + std::to_string(batch_rows) +
                               ",\"d\":" + std::to_string(d);
  EmitJson(sink,
           "{\"bench\":\"obs_overhead\",\"variant\":\"disabled\"" + identity +
               ",\"queries_per_sec\":" +
               std::to_string(disabled.QueriesPerSec()) +
               ",\"rows_per_sec\":" + std::to_string(disabled.RowsPerSec()) +
               "}");
  EmitJson(sink,
           "{\"bench\":\"obs_overhead\",\"variant\":\"enabled\"" + identity +
               ",\"queries_per_sec\":" +
               std::to_string(enabled.QueriesPerSec()) +
               ",\"rows_per_sec\":" + std::to_string(enabled.RowsPerSec()) +
               "}");
  const double overhead_pct =
      disabled.QueriesPerSec() > 0.0
          ? (1.0 - enabled.QueriesPerSec() / disabled.QueriesPerSec()) * 100.0
          : 0.0;
  EmitJson(sink, "{\"bench\":\"obs_overhead\",\"variant\":\"overhead\"" +
                     identity +
                     ",\"overhead_pct\":" + std::to_string(overhead_pct) +
                     "}");
  std::printf("# tracing-enabled overhead: %.2f%% (budget: 2%%)\n",
              overhead_pct);

  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
