// E11 — ablation of the control-point update rule. Section 5 argues the
// direct pseudo-inverse solve (Eq. 26) is ill-conditioned mid-iteration and
// adopts a preconditioned Richardson step (Eq. 27). We compare: Richardson
// with preconditioner (the paper), Richardson without, and the direct
// pseudo-inverse, on residual, iteration count, J-trajectory stability and
// the Gram matrix condition number they face.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_learner.h"
#include "curve/cubic_bezier.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/eigen.h"

namespace {

using rpc::core::RpcLearner;
using rpc::core::RpcLearnOptions;
using rpc::linalg::Matrix;
using rpc::order::Orientation;

struct UpdateResult {
  std::string name;
  double final_j = 0.0;
  double iterations = 0.0;
  int non_monotone_j_steps = 0;  // J increases along the recorded history
  int failures = 0;
};

UpdateResult Run(const std::string& name, RpcLearnOptions options) {
  const Orientation alpha = Orientation::AllBenefit(3);
  UpdateResult result;
  result.name = name;
  const int kSeeds = 10;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const rpc::data::LatentCurveSample sample =
        rpc::data::GenerateLatentCurveData(
            alpha, {.n = 150, .noise_sigma = 0.04, .control_margin = 0.08,
                    .seed = static_cast<uint64_t>(seed)});
    auto norm = rpc::data::Normalizer::Fit(sample.data);
    options.seed = static_cast<uint64_t>(seed);
    options.record_history = true;
    const auto fit =
        RpcLearner(options).Fit(norm->Transform(sample.data), alpha);
    if (!fit.ok()) {
      ++result.failures;
      continue;
    }
    result.final_j += fit->final_j;
    result.iterations += fit->iterations;
    for (size_t i = 0; i + 1 < fit->j_history.size(); ++i) {
      if (fit->j_history[i + 1] > fit->j_history[i] + 1e-12) {
        ++result.non_monotone_j_steps;
      }
    }
  }
  const int successes = kSeeds - result.failures;
  if (successes > 0) {
    result.final_j /= successes;
    result.iterations /= successes;
  }
  return result;
}

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E11: control-point update ablation",
      "Section 5's preconditioned Richardson (Eq. 27) vs the raw iteration "
      "and the direct pseudo-inverse (Eq. 26)");

  RpcLearnOptions paper;  // preconditioned Richardson (defaults)
  RpcLearnOptions raw;
  raw.use_preconditioner = false;
  RpcLearnOptions pinv;
  pinv.use_pseudo_inverse_update = true;

  const std::vector<UpdateResult> results = {
      Run("Richardson + preconditioner (paper)", paper),
      Run("Richardson, no preconditioner", raw),
      Run("direct pseudo-inverse (Eq. 26)", pinv),
  };

  std::printf("\n%-36s %12s %10s %16s %9s\n", "update rule", "mean J",
              "mean iters", "J increases seen", "failures");
  for (const UpdateResult& res : results) {
    std::printf("%-36s %12.5f %10.1f %16d %9d\n", res.name.c_str(),
                res.final_j, res.iterations, res.non_monotone_j_steps,
                res.failures);
  }

  // Condition numbers of the Gram matrix (MZ)(MZ)^T along a typical run —
  // the paper's justification for avoiding the pseudo-inverse.
  const Orientation alpha = Orientation::AllBenefit(3);
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha,
          {.n = 150, .noise_sigma = 0.04, .control_margin = 0.08, .seed = 3});
  auto norm = rpc::data::Normalizer::Fit(sample.data);
  const auto fit = RpcLearner(paper).Fit(norm->Transform(sample.data), alpha);
  if (fit.ok()) {
    const Matrix design = rpc::curve::CubicZMatrix(fit->scores);
    const Matrix gram = rpc::linalg::TimesTranspose(
        rpc::curve::CubicM() * design, rpc::curve::CubicM() * design);
    const auto cond = rpc::linalg::SymmetricConditionNumber(gram);
    if (cond.ok()) {
      std::printf("\nGram matrix condition number at convergence: %.3g "
                  "(the ill-conditioning the preconditioner addresses)\n",
                  *cond);
    }
  }

  std::vector<rpc::bench::Comparison> comparisons;
  const UpdateResult& with = results[0];
  const UpdateResult& without = results[1];
  const UpdateResult& direct = results[2];
  comparisons.push_back(
      {"paper's update reaches a good fit", "yes",
       rpc::StrFormat("mean J %.4f, %d failures", with.final_j,
                      with.failures),
       with.failures == 0});
  comparisons.push_back(
      {"J sequence non-increasing (Prop. 2)", "yes",
       rpc::StrFormat("%d increases observed", with.non_monotone_j_steps),
       with.non_monotone_j_steps == 0});
  comparisons.push_back(
      {"paper's update at least as robust as alternatives", "yes",
       rpc::StrFormat("failures: %d vs %d/%d; J: %.4f vs %.4f/%.4f",
                      with.failures, without.failures, direct.failures,
                      with.final_j, without.final_j, direct.final_j),
       with.failures <= without.failures &&
           with.failures <= direct.failures &&
           with.final_j <= 1.1 * std::min(without.final_j, direct.final_j)});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE11 mismatches vs paper: %d\n", mismatches);
  return 0;
}
