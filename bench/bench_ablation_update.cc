// E11 — ablation of the control-point update rule, plus the update-stage
// throughput bench behind the CI regression gate.
//
// Ablation: Section 5 argues the direct pseudo-inverse solve (Eq. 26) is
// ill-conditioned mid-iteration and adopts a preconditioned Richardson step
// (Eq. 27). We compare: Richardson with preconditioner (the paper),
// Richardson without, and the direct pseudo-inverse, on residual, iteration
// count, J-trajectory stability and the Gram matrix condition number they
// face.
//
// Throughput: one Step 5 update (normal equations + solve) through the
// historical dense design-matrix formulation — reproduced here the way
// bench_projection_throughput keeps its seed replica, since the library
// path was replaced — vs the streaming core::FitWorkspace pipeline, for
// both update rules. Rows/sec (rows folded through the update per second)
// land as JSON lines in BENCH_ablation_update.json; --quick runs write
// BENCH_ablation_update.quick.json for the ci/check_bench_regression.py
// gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stringutil.h"
#include "core/fit_workspace.h"
#include "core/rpc_learner.h"
#include "curve/bernstein.h"
#include "curve/cubic_bezier.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/eigen.h"
#include "linalg/pinv.h"
#include "opt/richardson.h"

namespace {

using rpc::Rng;
using rpc::core::ControlUpdateOptions;
using rpc::core::FitWorkspace;
using rpc::core::RpcLearner;
using rpc::core::RpcLearnOptions;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;

struct UpdateResult {
  std::string name;
  double final_j = 0.0;
  double iterations = 0.0;
  int non_monotone_j_steps = 0;  // J increases along the recorded history
  int failures = 0;
};

UpdateResult Run(const std::string& name, RpcLearnOptions options) {
  const Orientation alpha = Orientation::AllBenefit(3);
  UpdateResult result;
  result.name = name;
  const int kSeeds = 10;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const rpc::data::LatentCurveSample sample =
        rpc::data::GenerateLatentCurveData(
            alpha, {.n = 150, .noise_sigma = 0.04, .control_margin = 0.08,
                    .seed = static_cast<uint64_t>(seed)});
    auto norm = rpc::data::Normalizer::Fit(sample.data);
    options.seed = static_cast<uint64_t>(seed);
    options.record_history = true;
    const auto fit =
        RpcLearner(options).Fit(norm->Transform(sample.data), alpha);
    if (!fit.ok()) {
      ++result.failures;
      continue;
    }
    result.final_j += fit->final_j;
    result.iterations += fit->iterations;
    for (size_t i = 0; i + 1 < fit->j_history.size(); ++i) {
      if (fit->j_history[i + 1] > fit->j_history[i] + 1e-12) {
        ++result.non_monotone_j_steps;
      }
    }
  }
  const int successes = kSeeds - result.failures;
  if (successes > 0) {
    result.final_j /= successes;
    result.iterations /= successes;
  }
  return result;
}

// ---- Update-stage throughput ---------------------------------------------

// The pre-workspace Step 5: materialise the (k+1) x n design, form the
// Gram/cross products through the allocating matrix helpers, then solve.
// This is the baseline the streaming pipeline is gated against.
// Both update paths return the updated control matrix's Frobenius norm as
// a liveness checksum, or a negative sentinel on solver failure so a
// broken pass can never masquerade as a (near-instant, throughput-
// inflating) fast one.
double DenseUpdate(const Matrix& data, const Vector& scores,
                   const Matrix& start, bool use_pinv) {
  const Matrix design = rpc::curve::BernsteinDesign(3, scores);
  const Matrix gram = rpc::linalg::TimesTranspose(design, design);
  const Matrix cross =
      rpc::linalg::TransposeTimes(data, design.Transposed());
  Matrix control = start;
  if (use_pinv) {
    const auto gram_pinv = rpc::linalg::PseudoInverseSymmetric(gram);
    if (!gram_pinv.ok()) return -1.0;
    control = cross * gram_pinv.value();
  } else {
    for (int step = 0; step < 4; ++step) {
      auto next = rpc::opt::RichardsonStep(control, gram, cross, {});
      if (!next.ok()) return -1.0;
      control = std::move(next).value();
    }
  }
  return control.FrobeniusNorm();
}

double WorkspaceUpdate(const Matrix& data, const Vector& scores,
                       const Matrix& start, bool use_pinv,
                       FitWorkspace* workspace) {
  ControlUpdateOptions options;
  options.use_pseudo_inverse_update = use_pinv;
  Matrix control = start;
  workspace->AccumulateNormalEquations(data, scores, nullptr);
  if (!workspace->UpdateControlPoints(options, &control).ok()) return -1.0;
  return control.FrobeniusNorm();
}

// Runs `pass` (one full update over n rows) until `min_seconds` of wall
// time has elapsed; returns rows folded through the update per second, or
// 0 (and sets *failed) the moment any pass reports failure — a zero rate
// also trips the CI regression gate.
double MeasureUpdateRowsPerSec(int n, double min_seconds,
                               const std::function<double()>& pass,
                               bool* failed) {
  if (pass() < 0.0) {  // warm-up
    *failed = true;
    return 0.0;
  }
  const auto start = std::chrono::steady_clock::now();
  int passes = 0;
  double elapsed = 0.0;
  do {
    if (pass() < 0.0) {
      *failed = true;
      return 0.0;
    }
    ++passes;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < min_seconds);
  return static_cast<double>(n) * passes / elapsed;
}

void EmitUpdateJson(std::FILE* sink, const std::string& variant, int n,
                    int d, double rows_per_sec, double speedup_vs_dense) {
  const std::string line =
      std::string("{\"bench\":\"ablation_update\",\"variant\":\"") + variant +
      "\",\"n\":" + std::to_string(n) + ",\"d\":" + std::to_string(d) +
      ",\"threads\":1,\"rows_per_sec\":" + std::to_string(rows_per_sec) +
      ",\"speedup_vs_dense\":" + std::to_string(speedup_vs_dense) + "}";
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

int RunUpdateThroughput(bool quick) {
  const std::vector<int> ns =
      quick ? std::vector<int>{10000} : std::vector<int>{10000, 100000};
  const int d = 4;
  const double min_seconds = quick ? 0.05 : 0.5;
  const char* sink_path = quick ? "BENCH_ablation_update.quick.json"
                                : "BENCH_ablation_update.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("\nUpdate-stage throughput (d=%d, degree 3, 1 thread); JSON "
              "also in %s\n", d, sink_path);

  int failures = 0;
  for (int n : ns) {
    Rng rng(4000 + n);
    Matrix data(n, d);
    Vector scores(n);
    for (int i = 0; i < n; ++i) {
      scores[i] = rng.Uniform(0.0, 1.0);
      for (int j = 0; j < d; ++j) data(i, j) = rng.Uniform(0.0, 1.0);
    }
    Matrix start(d, 4);
    for (int i = 0; i < d; ++i) {
      for (int r = 0; r < 4; ++r) start(i, r) = r / 3.0;
    }
    FitWorkspace workspace;
    workspace.Bind(n, d, 3);

    for (const bool use_pinv : {false, true}) {
      const char* rule = use_pinv ? "pinv" : "richardson";
      bool failed = false;
      const double dense_rps = MeasureUpdateRowsPerSec(
          n, min_seconds,
          [&] { return DenseUpdate(data, scores, start, use_pinv); },
          &failed);
      EmitUpdateJson(sink, std::string("dense_") + rule, n, d, dense_rps,
                     1.0);
      const double ws_rps = MeasureUpdateRowsPerSec(
          n, min_seconds,
          [&] {
            return WorkspaceUpdate(data, scores, start, use_pinv,
                                   &workspace);
          },
          &failed);
      EmitUpdateJson(sink, std::string("workspace_") + rule, n, d, ws_rps,
                     dense_rps > 0.0 ? ws_rps / dense_rps : 0.0);
      if (failed) {
        std::fprintf(stderr, "update pass failed (n=%d, rule=%s)\n", n,
                     rule);
        ++failures;
      }
    }
  }
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  rpc::bench::PrintHeader(
      "E11: control-point update ablation",
      "Section 5's preconditioned Richardson (Eq. 27) vs the raw iteration "
      "and the direct pseudo-inverse (Eq. 26)");

  RpcLearnOptions paper;  // preconditioned Richardson (defaults)
  RpcLearnOptions raw;
  raw.use_preconditioner = false;
  RpcLearnOptions pinv;
  pinv.use_pseudo_inverse_update = true;

  const std::vector<UpdateResult> results = {
      Run("Richardson + preconditioner (paper)", paper),
      Run("Richardson, no preconditioner", raw),
      Run("direct pseudo-inverse (Eq. 26)", pinv),
  };

  std::printf("\n%-36s %12s %10s %16s %9s\n", "update rule", "mean J",
              "mean iters", "J increases seen", "failures");
  for (const UpdateResult& res : results) {
    std::printf("%-36s %12.5f %10.1f %16d %9d\n", res.name.c_str(),
                res.final_j, res.iterations, res.non_monotone_j_steps,
                res.failures);
  }

  // Condition numbers of the Gram matrix (MZ)(MZ)^T along a typical run —
  // the paper's justification for avoiding the pseudo-inverse.
  const Orientation alpha = Orientation::AllBenefit(3);
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha,
          {.n = 150, .noise_sigma = 0.04, .control_margin = 0.08, .seed = 3});
  auto norm = rpc::data::Normalizer::Fit(sample.data);
  const auto fit = RpcLearner(paper).Fit(norm->Transform(sample.data), alpha);
  if (fit.ok()) {
    const Matrix design = rpc::curve::CubicZMatrix(fit->scores);
    const Matrix gram = rpc::linalg::TimesTranspose(
        rpc::curve::CubicM() * design, rpc::curve::CubicM() * design);
    const auto cond = rpc::linalg::SymmetricConditionNumber(gram);
    if (cond.ok()) {
      std::printf("\nGram matrix condition number at convergence: %.3g "
                  "(the ill-conditioning the preconditioner addresses)\n",
                  *cond);
    }
  }

  std::vector<rpc::bench::Comparison> comparisons;
  const UpdateResult& with = results[0];
  const UpdateResult& without = results[1];
  const UpdateResult& direct = results[2];
  comparisons.push_back(
      {"paper's update reaches a good fit", "yes",
       rpc::StrFormat("mean J %.4f, %d failures", with.final_j,
                      with.failures),
       with.failures == 0});
  comparisons.push_back(
      {"J sequence non-increasing (Prop. 2)", "yes",
       rpc::StrFormat("%d increases observed", with.non_monotone_j_steps),
       with.non_monotone_j_steps == 0});
  comparisons.push_back(
      {"paper's update at least as robust as alternatives", "yes",
       rpc::StrFormat("failures: %d vs %d/%d; J: %.4f vs %.4f/%.4f",
                      with.failures, without.failures, direct.failures,
                      with.final_j, without.final_j, direct.final_j),
       with.failures <= without.failures &&
           with.failures <= direct.failures &&
           with.final_j <= 1.1 * std::min(without.final_j, direct.final_j)});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE11 mismatches vs paper: %d\n", mismatches);

  return RunUpdateThroughput(quick) == 0 ? 0 : 1;
}
