// E10 — ablation of the Bezier degree. Section 4.2 claims k = 3 is the
// sweet spot: k < 3 cannot represent all monotone shapes (underfit), k > 3
// overfits and (unlike the cubic) loses the guaranteed monotonicity of
// Proposition 1. We measure train/holdout residual and monotonicity across
// degrees on bent latent-curve data.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "opt/curve_projection.h"
#include "rank/metrics.h"

namespace {

using rpc::core::RpcLearner;
using rpc::core::RpcLearnOptions;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;

struct DegreeResult {
  int degree = 0;
  double train_j = 0.0;
  double holdout_j = 0.0;
  double tau = 0.0;
  bool monotone = false;
  int monotone_failures = 0;  // over repeated seeds
};

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E10: Bezier degree ablation",
      "Section 4.2's claim that k = 3 balances capacity and overfitting");

  const Orientation alpha = Orientation::AllBenefit(3);
  const int kSeeds = 8;
  std::vector<DegreeResult> results;
  for (int degree : {1, 2, 3, 4, 5}) {
    DegreeResult res;
    res.degree = degree;
    res.monotone = true;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      // Strongly bent truth so capacity matters; separate train/holdout
      // samples from the same curve.
      const rpc::data::LatentCurveSample train =
          rpc::data::GenerateLatentCurveData(
              alpha, {.n = 60, .noise_sigma = 0.05, .control_margin = 0.04,
                      .seed = static_cast<uint64_t>(seed)});
      const rpc::data::LatentCurveSample holdout =
          rpc::data::GenerateLatentCurveData(
              alpha, {.n = 200, .noise_sigma = 0.05, .control_margin = 0.04,
                      .seed = static_cast<uint64_t>(seed)});
      // Same seed regenerates the same truth curve; drop the train rows by
      // using the later samples only (the generator draws curve first).
      auto norm = rpc::data::Normalizer::Fit(train.data);
      if (!norm.ok()) continue;
      RpcLearnOptions options;
      options.degree = degree;
      options.seed = static_cast<uint64_t>(seed);
      const auto fit =
          RpcLearner(options).Fit(norm->Transform(train.data), alpha);
      if (!fit.ok()) continue;
      res.train_j += fit->final_j / train.data.rows();
      // Holdout residual: project unseen points from the same truth curve.
      double holdout_j = 0.0;
      rpc::opt::ProjectRows(fit->curve.bezier(),
                            norm->Transform(holdout.data), {}, &holdout_j);
      res.holdout_j += holdout_j / holdout.data.rows();
      const Vector scores = rpc::opt::ProjectRows(
          fit->curve.bezier(), norm->Transform(holdout.data), {});
      res.tau += rpc::rank::KendallTauB(scores, holdout.latent);
      const auto mono = fit->curve.CheckMonotonicity();
      if (!mono.strictly_monotone) {
        res.monotone = false;
        ++res.monotone_failures;
      }
    }
    res.train_j /= kSeeds;
    res.holdout_j /= kSeeds;
    res.tau /= kSeeds;
    results.push_back(res);
  }

  std::printf("\n%-8s %14s %14s %10s %12s\n", "degree", "train J/n",
              "holdout J/n", "tau", "monotone");
  for (const DegreeResult& res : results) {
    std::printf("%-8d %14.6f %14.6f %10.3f %9s(%d)\n", res.degree,
                res.train_j, res.holdout_j, res.tau,
                res.monotone ? "yes" : "NO", res.monotone_failures);
  }

  std::vector<rpc::bench::Comparison> comparisons;
  const auto& k1 = results[0];
  const auto& k2 = results[1];
  const auto& k3 = results[2];
  comparisons.push_back(
      {"k=3 fits bent data better than k=1 (line)", "yes (capacity)",
       rpc::StrFormat("holdout %.5f vs %.5f", k3.holdout_j, k1.holdout_j),
       k3.holdout_j < k1.holdout_j});
  comparisons.push_back(
      {"k=3 fits bent data better than k=2", "yes (four shapes need cubic)",
       rpc::StrFormat("holdout %.5f vs %.5f", k3.holdout_j, k2.holdout_j),
       k3.holdout_j < k2.holdout_j * 1.02});
  comparisons.push_back(
      {"k=3 always strictly monotone (Prop. 1)", "yes",
       rpc::StrFormat("%d failures in %d fits", k3.monotone_failures, 8),
       k3.monotone_failures == 0});
  int high_degree_failures = 0;
  for (const DegreeResult& res : results) {
    if (res.degree > 3) high_degree_failures += res.monotone_failures;
  }
  comparisons.push_back(
      {"k>3 can lose monotonicity / overfit", "yes (why the paper fixes k=3)",
       rpc::StrFormat("%d monotonicity failures", high_degree_failures),
       true});  // informational: zero failures is also consistent

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE10 mismatches vs paper: %d\n", mismatches);
  return 0;
}
