// Replication-tier failover cost: how fast a standby drinks the primary's
// WAL over the wire, how far it lags when the primary dies, and how long
// fenced promotion takes until the standby is serving queries as the new
// primary. Two phases, one run:
//
//   catchup_stream  a stateless standby bootstraps from the shipped
//                   snapshot and streams the whole log tail, every batch
//                   locally fsynced before it is acked — the replication
//                   throughput number (rows_per_sec), CI-gated;
//   failover        the standby is deliberately left a known number of
//                   events behind, the primary "dies", and the standby
//                   promotes behind a durable epoch fence — reporting the
//                   standby lag plus promote and promotion-to-serving
//                   times.
//
// Before timing anything, replica correctness is verified: the standby's
// model at its acked offset must serialize identically to the primary's at
// that same offset, and the promoted ranker must score a probe batch
// bit-for-bit like the pre-kill primary did. Any mismatch fails the run.
//
//   build/bench_failover [--quick]
//
// Full runs rewrite BENCH_failover.json (the committed baseline the CI
// regression gate compares against); --quick writes
// BENCH_failover.quick.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "replica/replication.h"
#include "replica/transport.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

#include "bench_util.h"

namespace {

using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;
using rpc::replica::LinkPair;
using rpc::replica::MakeLoopbackPair;
using rpc::replica::ReplicaApplier;
using rpc::replica::ReplicaApplierOptions;
using rpc::replica::ReplicationSource;
using rpc::replica::ReplicationSourceOptions;
using rpc::stream::StreamingRanker;
using rpc::stream::StreamingRankerOptions;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Matrix RawData(const Orientation& alpha, int n, uint64_t seed) {
  return rpc::data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

void Emit(std::FILE* sink, const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

std::string MakeTempDir(const char* tag) {
  std::string templ = std::string("/tmp/rpc_bench_failover_") + tag +
                      "_XXXXXX";
  std::vector<char> buffer(templ.begin(), templ.end());
  buffer.push_back('\0');
  const char* dir = ::mkdtemp(buffer.data());
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

struct RunResult {
  bool ok = false;
  std::uint64_t replicated_records = 0;
  double catchup_seconds = 0.0;
  std::uint64_t standby_lag_events = 0;
  double promote_seconds = 0.0;
  double promotion_to_serving_seconds = 0.0;
};

RunResult Run(const Orientation& alpha, int initial_rows, int appends,
              int lag_events, const Matrix& probe) {
  RunResult result;
  const std::string p_dir = MakeTempDir("p");
  const std::string s_dir = MakeTempDir("s");
  if (p_dir.empty() || s_dir.empty()) return result;

  const int d = alpha.dimension();
  const Matrix raw = RawData(alpha, initial_rows + appends + lag_events, 4242);
  Matrix initial(initial_rows, d);
  for (int i = 0; i < initial_rows; ++i) initial.SetRow(i, raw.Row(i));

  StreamingRankerOptions options;
  options.num_threads = 1;  // inline: deterministic, machine-comparable
  options.drift.refit_on_row_delta = 0;
  options.drift.refit_on_normalizer_drift = 0.0;
  options.drift.refit_period_events = 0;
  options.learner.seed = 2026;
  options.durability.dir = p_dir;
  options.durability.snapshot_every_events = 0;  // everything via the log

  StreamingRanker primary(nullptr, "bench", options);
  if (!primary.Start(initial, alpha).ok()) return result;
  for (int a = 0; a < appends; ++a) {
    if (!primary.Append(raw.Row(initial_rows + a)).ok()) return result;
  }
  if (!primary.ForceRefresh().ok() || !primary.Flush().ok()) return result;

  LinkPair pair = MakeLoopbackPair();
  ReplicationSourceOptions source_options;
  source_options.dir = p_dir;
  source_options.d = d;
  ReplicationSource source(
      pair.primary.get(), [&] { return primary.wal_synced_seq(); },
      source_options);
  std::thread serving([&source] { (void)source.Serve(); });

  StreamingRankerOptions standby_options = options;
  standby_options.durability.dir = s_dir;
  rpc::serve::RankingService standby_service;
  StreamingRanker standby(&standby_service, "bench", standby_options);
  ReplicaApplierOptions applier_options;
  applier_options.dir = s_dir;
  applier_options.d = d;
  applier_options.retry.initial_backoff_seconds = 0.0005;
  applier_options.retry.max_backoff_seconds = 0.005;
  ReplicaApplier applier(&standby, pair.standby.get(), applier_options);
  if (!applier.Init().ok()) return result;

  // --- Phase 1: bootstrap, then the full-tail catch-up, timed. ---
  // The snapshot install is a fixed cost (it covers the Start state only,
  // at seq 0 here); the timed window is the WAL streaming, whose cost is
  // linear in records and therefore comparable between --quick and full.
  while (!applier.has_state()) {
    if (!applier.PumpOnce().ok()) return result;
  }
  const std::uint64_t tip = primary.wal_synced_seq();
  const std::uint64_t base = applier.durable_seq();
  const auto catchup_start = std::chrono::steady_clock::now();
  if (!applier.CatchUpTo(tip).ok()) return result;
  result.catchup_seconds = Seconds(catchup_start);
  result.replicated_records = tip - base;

  // Correctness before speed: the standby at the acked offset IS the
  // primary at that offset.
  if (standby.snapshot().model.Serialize() !=
      primary.snapshot().model.Serialize()) {
    std::fprintf(stderr, "replica verify: model mismatch at acked offset\n");
    return result;
  }

  // The pre-kill truth the promoted standby must still serve.
  Vector expected_scores(probe.rows());
  {
    const StreamingRanker::Snapshot snap = primary.snapshot();
    for (int i = 0; i < probe.rows(); ++i) {
      const auto score = snap.model.Score(probe.Row(i));
      if (!score.ok()) return result;
      expected_scores[i] = *score;
    }
  }

  // --- Phase 2: the primary runs ahead, then dies. ---
  for (int a = 0; a < lag_events; ++a) {
    if (!primary.Append(raw.Row(initial_rows + appends + a)).ok()) {
      return result;
    }
  }
  if (!primary.Flush().ok()) return result;
  result.standby_lag_events = primary.wal_synced_seq() - applier.durable_seq();

  pair.standby->Close();  // the feed goes dark
  serving.join();

  const auto promote_start = std::chrono::steady_clock::now();
  if (!applier.Promote().ok()) return result;
  result.promote_seconds = Seconds(promote_start);
  const auto first_query = standby_service.Query("bench", probe);
  result.promotion_to_serving_seconds = Seconds(promote_start);
  if (!first_query.ok()) return result;
  for (int i = 0; i < probe.rows(); ++i) {
    if (first_query->scores[i] != expected_scores[i]) {
      std::fprintf(stderr, "promotion verify: score %d differs\n", i);
      return result;
    }
  }
  // The promoted ranker must be a live primary: it ingests and syncs.
  if (!standby.Append(raw.Row(0)).ok() || !standby.Flush().ok()) {
    std::fprintf(stderr, "promotion verify: promoted ranker refuses writes\n");
    return result;
  }

  primary.Stop();
  standby.Stop();
  RemoveDir(p_dir);
  RemoveDir(s_dir);
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1, +1});
  const int d = 4;
  const int initial_rows = 2000;
  const int appends = quick ? 2000 : 12000;
  const int lag_events = 500;
  const Matrix probe = RawData(alpha, 256, 77);

  const char* sink_path =
      quick ? "BENCH_failover.quick.json" : "BENCH_failover.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# replication catch-up + fenced failover (d=%d, %d appends, "
              "lag %d); JSON also in %s\n",
              d, appends, lag_events, sink_path);

  const RunResult r = Run(alpha, initial_rows, appends, lag_events, probe);
  if (!r.ok) {
    std::fprintf(stderr, "failover bench failed\n");
    return 1;
  }
  const double rows_per_sec =
      static_cast<double>(r.replicated_records) /
      (r.catchup_seconds > 0.0 ? r.catchup_seconds : 1e-9);
  Emit(sink, std::string("{\"bench\":\"failover\",\"variant\":"
                         "\"catchup_stream\",\"d\":") + std::to_string(d) +
                 ",\"initial_rows\":" + std::to_string(initial_rows) +
                 ",\"threads\":1,\"replicated_records\":" +
                 std::to_string(r.replicated_records) +
                 ",\"rows_per_sec\":" + std::to_string(rows_per_sec) +
                 ",\"catchup_seconds\":" + std::to_string(r.catchup_seconds) +
                 "}");
  Emit(sink, std::string("{\"bench\":\"failover\",\"variant\":"
                         "\"promote\",\"d\":") + std::to_string(d) +
                 ",\"initial_rows\":" + std::to_string(initial_rows) +
                 ",\"threads\":1,\"standby_lag_events\":" +
                 std::to_string(r.standby_lag_events) +
                 ",\"promote_seconds\":" + std::to_string(r.promote_seconds) +
                 ",\"promotion_to_serving_seconds\":" +
                 std::to_string(r.promotion_to_serving_seconds) + "}");

  std::printf("# verify: standby model at acked offset, promoted probe "
              "scores, and post-promotion writes all checked\n");
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
