// E8 — Section 5's complexity claim: one RPC iteration costs O(4d + n).
// Google-Benchmark sweeps over n (rows) and d (attributes) for the full
// fit and for its two constituent steps (projection, Richardson update).
#include <benchmark/benchmark.h>

#include "core/rpc_learner.h"
#include "curve/cubic_bezier.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "opt/curve_projection.h"
#include "opt/richardson.h"

namespace {

using rpc::core::RpcLearner;
using rpc::core::RpcLearnOptions;
using rpc::linalg::Matrix;
using rpc::order::Orientation;

Matrix MakeData(int n, int d, uint64_t seed) {
  const Orientation alpha = Orientation::AllBenefit(d);
  const rpc::data::LatentCurveSample sample =
      rpc::data::GenerateLatentCurveData(
          alpha,
          {.n = n, .noise_sigma = 0.03, .control_margin = 0.1, .seed = seed});
  auto norm = rpc::data::Normalizer::Fit(sample.data);
  return norm->Transform(sample.data);
}

// Full Algorithm 1 with a fixed iteration budget so the measured cost is
// per-sweep, not convergence-dependent.
void BM_RpcFitVsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = 4;
  const Matrix data = MakeData(n, d, 7);
  const Orientation alpha = Orientation::AllBenefit(d);
  RpcLearnOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;  // run all 10 sweeps
  for (auto _ : state) {
    auto fit = RpcLearner(options).Fit(data, alpha);
    benchmark::DoNotOptimize(fit);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RpcFitVsN)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_RpcFitVsD(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix data = MakeData(512, d, 9);
  const Orientation alpha = Orientation::AllBenefit(d);
  RpcLearnOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;
  for (auto _ : state) {
    auto fit = RpcLearner(options).Fit(data, alpha);
    benchmark::DoNotOptimize(fit);
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_RpcFitVsD)->RangeMultiplier(2)->Range(2, 32)->Complexity();

// Projection step alone: O(n) per sweep.
void BM_ProjectionStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix data = MakeData(n, 4, 11);
  const Orientation alpha = Orientation::AllBenefit(4);
  const rpc::core::RpcCurve curve = rpc::core::RpcCurve::Diagonal(alpha);
  for (auto _ : state) {
    double total = 0.0;
    auto scores =
        rpc::opt::ProjectRows(curve.bezier(), data, {}, &total);
    benchmark::DoNotOptimize(scores);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ProjectionStep)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oN);

// Richardson update alone: O(d) given the 4x4 Gram matrix.
void BM_RichardsonStep(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = 512;
  const Matrix data = MakeData(n, d, 13);
  // Fixed scores -> fixed design.
  rpc::linalg::Vector scores(n);
  for (int i = 0; i < n; ++i) scores[i] = static_cast<double>(i) / (n - 1);
  const Matrix design = rpc::curve::CubicM() * rpc::curve::CubicZMatrix(scores);
  const Matrix gram = rpc::linalg::TimesTranspose(design, design);
  const Matrix cross =
      rpc::linalg::TransposeTimes(data, design.Transposed());
  Matrix p(d, 4, 0.5);
  for (auto _ : state) {
    auto next = rpc::opt::RichardsonStep(p, gram, cross);
    benchmark::DoNotOptimize(next);
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_RichardsonStep)->RangeMultiplier(2)->Range(2, 64)
    ->Complexity(benchmark::oN);

}  // namespace
