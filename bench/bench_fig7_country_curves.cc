// E6 — Fig. 7: two-dimensional projections of the learned country RPC. For
// every attribute pair the paper plots the data cloud and the curve's
// projection; this binary emits the same series (decile curve samples) and
// checks the qualitative trends the paper narrates (saturation of LEB/IMR/
// TB gains beyond GDP ~ 0.2 normalised).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"

namespace {

using rpc::linalg::Matrix;

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E6: 2-D projections of the country RPC",
      "Fig. 7 (4x4 panel of attribute pairs with the curve overlaid)");

  const rpc::data::Dataset countries =
      rpc::data::GenerateCountryData(171, 7, true);
  const auto alpha = rpc::order::Orientation::FromSigns({1, 1, -1, -1});
  const auto ranker =
      rpc::core::RpcRanker::FitDataset(countries, *alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "%s\n", ranker.status().ToString().c_str());
    return 1;
  }

  // Curve samples in normalised space at s = 0, 0.1, ..., 1.
  const Matrix curve = ranker->curve().Sample(10);
  const auto& names = countries.attribute_names();
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      std::printf("curve %s-vs-%s:", names[static_cast<size_t>(a)].c_str(),
                  names[static_cast<size_t>(b)].c_str());
      for (int i = 0; i < curve.rows(); ++i) {
        std::printf(" (%.3f,%.3f)", curve(i, a), curve(i, b));
      }
      std::printf("\n");
    }
  }

  // Quantitative shape checks the paper narrates.
  std::vector<rpc::bench::Comparison> comparisons;
  // Find s* where normalised GDP crosses 0.2 (paper: $14300/person).
  double s_star = 1.0;
  for (int i = 0; i <= 1000; ++i) {
    const double s = i / 1000.0;
    if (ranker->curve().Evaluate(s)[0] >= 0.2) {
      s_star = s;
      break;
    }
  }
  const auto at = [&](double s, int j) {
    return ranker->curve().Evaluate(s)[j];
  };
  // LEB gain before vs after the GDP = 0.2 knee (per unit of s).
  const double leb_before = (at(s_star, 1) - at(0.0, 1)) / std::max(s_star, 1e-9);
  const double leb_after = (at(1.0, 1) - at(s_star, 1)) /
                           std::max(1.0 - s_star, 1e-9);
  comparisons.push_back(
      {"LEB rises faster below the GDP knee", "yes (saturation)",
       rpc::StrFormat("%.2f vs %.2f per unit s", leb_before, leb_after),
       leb_before > leb_after});
  const double imr_before = (at(0.0, 2) - at(s_star, 2)) / std::max(s_star, 1e-9);
  const double imr_after = (at(s_star, 2) - at(1.0, 2)) /
                           std::max(1.0 - s_star, 1e-9);
  comparisons.push_back(
      {"IMR falls faster below the GDP knee", "yes (saturation)",
       rpc::StrFormat("%.2f vs %.2f per unit s", imr_before, imr_after),
       imr_before > imr_after});
  const auto report = ranker->curve().CheckMonotonicity();
  comparisons.push_back({"projected curve monotone in every panel", "yes",
                         rpc::bench::YesNo(report.strictly_monotone),
                         report.strictly_monotone});
  // GDP is in the same direction as LEB, opposite to IMR/TB (alpha).
  const bool directions = at(1.0, 0) > at(0.0, 0) &&
                          at(1.0, 1) > at(0.0, 1) &&
                          at(1.0, 2) < at(0.0, 2) && at(1.0, 3) < at(0.0, 3);
  comparisons.push_back(
      {"GDP/LEB rise while IMR/TB fall along the curve", "yes",
       rpc::bench::YesNo(directions), directions});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE6 mismatches vs paper: %d\n", mismatches);
  return 0;
}
