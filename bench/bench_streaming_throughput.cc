// Streaming tier throughput and refresh latency: steady-state ingest
// rows/s through stream::StreamingRanker's bounded queue, p50/p99 warm
// refresh latency under the row-delta drift policy, and the headline
// comparison — a warm refresh (seeded control points + per-row s* via
// opt::IncrementalProjector) against a cold single-restart fit on the same
// rows, which must be >= 3x faster at n=100k, d=4.
//
// Before any timing, the online path's bit-identity contract is verified:
// after a sequence of appends and refreshes, scores served through
// serve::RankingService must equal PortableRpcModel::Score on the
// ranker's current snapshot bit for bit. Any mismatch fails the run.
//
//   build/bench_streaming_throughput [--quick]
//
// Full runs rewrite BENCH_streaming_throughput.json (the committed perf
// record the CI regression gate compares against) and enforce the >= 3x
// warm-refresh bar; --quick runs a smaller grid with the same identity
// keys for the gated ingest row and writes
// BENCH_streaming_throughput.quick.json instead.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rpc_learner.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/curve_projection.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"
#include "stream/streaming_ranker.h"

#include "bench_util.h"

namespace {

using rpc::core::RpcLearnOptions;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::order::Orientation;
using rpc::stream::StreamingRanker;
using rpc::stream::StreamingRankerOptions;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Matrix RawData(const Orientation& alpha, int n, uint64_t seed) {
  // Same fixture family (and noise level) as bench_projection_throughput's
  // fit mode, so fit-time numbers are comparable across the two benches.
  return rpc::data::GenerateLatentCurveData(
             alpha, {.n = n, .noise_sigma = 0.04, .control_margin = 0.1,
                     .seed = seed})
      .data;
}

RpcLearnOptions BenchLearner() {
  // Default learner options (kFull reprojection, single restart): exactly
  // the cold fit StreamingRanker::Start runs for a user who configured
  // nothing, and therefore the honest baseline for the warm refresh (which
  // derives its own warm-started adaptive configuration from this).
  RpcLearnOptions options;
  options.restarts = 1;
  options.seed = 2026;
  return options;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * (static_cast<double>(values.size()) - 1.0);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return (1.0 - frac) * values[lo] + frac * values[hi];
}

void Emit(std::FILE* sink, const std::string& line) {
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

// Served-vs-snapshot bit identity after appends + refreshes; returns the
// number of mismatching scores.
int VerifyBitIdentity(const Orientation& alpha) {
  const Matrix raw = RawData(alpha, 400, 31);
  rpc::serve::RankingService service;
  StreamingRankerOptions options;
  options.learner = BenchLearner();
  options.drift.refit_on_row_delta = 64;
  options.drift.refit_on_normalizer_drift = 0.02;
  StreamingRanker ranker(&service, "bench", options);
  if (!ranker.Start(raw, alpha).ok()) return 400;
  for (int a = 0; a < 200; ++a) {
    Vector row = raw.Row(a % raw.rows());
    for (int j = 0; j < row.size(); ++j) {
      row[j] *= 1.0 + 1e-3 * (a % 7);
    }
    if (!ranker.Append(row).ok()) return 400;
  }
  if (!ranker.Flush().ok() || !ranker.ForceRefresh().ok()) return 400;
  const StreamingRanker::Snapshot snap = ranker.snapshot();
  const Matrix probe = RawData(alpha, 128, 37);
  const auto served = service.Query("bench", probe);
  if (!served.ok()) return probe.rows();
  int mismatches = 0;
  for (int i = 0; i < probe.rows(); ++i) {
    const auto expected = snap.model.Score(probe.Row(i));
    if (!expected.ok() || served->scores[i] != *expected) ++mismatches;
  }
  const auto version = service.DatasetVersion("bench");
  if (!version.ok() || *version != snap.version || snap.version < 2) {
    ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const Orientation alpha = *Orientation::FromSigns({+1, +1, +1, +1});
  const int d = 4;

  const char* sink_path = quick ? "BENCH_streaming_throughput.quick.json"
                                : "BENCH_streaming_throughput.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# streaming ingest + warm-refresh latency (GSS, d=%d); "
              "JSON also in %s\n", d, sink_path);

  const int mismatches = VerifyBitIdentity(alpha);
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "verify: %d served scores differ from the snapshot "
                 "model's own scoring\n", mismatches);
    return 1;
  }
  std::printf("# verify: served == snapshot scoring bit for bit across "
              "versioned swaps\n");

  // --- Steady-state ingest throughput (policy off, serial mode so the ---
  // --- number is machine-comparable and CI-gated). ----------------------
  {
    const int n0 = 5000;
    const int appends = quick ? 4000 : 20000;
    const Matrix raw = RawData(alpha, n0 + appends, 41);
    Matrix initial(n0, d);
    for (int i = 0; i < n0; ++i) initial.SetRow(i, raw.Row(i));
    StreamingRankerOptions options;
    options.learner = BenchLearner();
    options.drift.refit_on_row_delta = 0;
    options.drift.refit_on_normalizer_drift = 0.0;
    options.num_threads = 1;  // inline: pure per-event cost, no handoff
    options.queue_capacity = 4096;
    StreamingRanker ranker(nullptr, "bench", options);
    if (!ranker.Start(initial, alpha).ok()) return 1;
    const auto start = std::chrono::steady_clock::now();
    for (int a = 0; a < appends; ++a) {
      (void)ranker.Append(raw.Row(n0 + a));
    }
    (void)ranker.Flush();
    const double seconds = Seconds(start);
    const double rows_per_sec = appends / seconds;
    Emit(sink, std::string("{\"bench\":\"streaming_throughput\",\"variant\":"
                           "\"ingest\",\"d\":") + std::to_string(d) +
                   ",\"initial_rows\":" + std::to_string(n0) +
                   ",\"threads\":1,\"rows_per_sec\":" +
                   std::to_string(rows_per_sec) + "}");
  }

  // --- Refresh latency under the row-delta policy. ----------------------
  {
    const int n0 = quick ? 2000 : 20000;
    const int row_delta = quick ? 200 : 500;
    const int appends = quick ? 1000 : 5000;
    const Matrix raw = RawData(alpha, n0 + appends, 43);
    Matrix initial(n0, d);
    for (int i = 0; i < n0; ++i) initial.SetRow(i, raw.Row(i));
    StreamingRankerOptions options;
    options.learner = BenchLearner();
    options.drift.refit_on_row_delta = row_delta;
    options.drift.refit_on_normalizer_drift = 0.0;
    options.num_threads = 1;
    StreamingRanker ranker(nullptr, "bench", options);
    if (!ranker.Start(initial, alpha).ok()) return 1;
    for (int a = 0; a < appends; ++a) {
      (void)ranker.Append(raw.Row(n0 + a));
    }
    (void)ranker.Flush();
    const std::vector<double> history = ranker.RefreshSecondsHistory();
    Emit(sink,
         std::string("{\"bench\":\"streaming_throughput\",\"variant\":"
                     "\"refresh_latency\",\"d\":") + std::to_string(d) +
             ",\"initial_rows\":" + std::to_string(n0) +
             ",\"refit_row_delta\":" + std::to_string(row_delta) +
             ",\"threads\":1,\"refreshes\":" +
             std::to_string(history.size()) +
             ",\"p50_refresh_seconds\":" +
             std::to_string(Percentile(history, 0.5)) +
             ",\"p99_refresh_seconds\":" +
             std::to_string(Percentile(history, 0.99)) + "}");
    if (history.empty()) {
      std::fprintf(stderr, "refresh latency: no refresh fired\n");
      return 1;
    }
  }

  // --- Warm refresh vs cold single-restart fit (the acceptance bar: ----
  // --- >= 3x at n=100k, d=4; --quick shrinks n but keeps the shape). ----
  {
    const int n = quick ? 10000 : 100000;
    const int fresh = n / 100;  // 1% of the store arrived since the live fit
    const int n0 = n - fresh;
    const Matrix raw = RawData(alpha, n, 20260726);
    const auto normalizer = rpc::data::Normalizer::Fit(raw);
    if (!normalizer.ok()) return 1;
    const Matrix normalized = normalizer->Transform(raw);
    const rpc::core::RpcLearner learner(BenchLearner());

    // The live model: a fit on the store as it looked before the fresh
    // rows arrived (not timed — it represents the already-running system).
    Matrix stale(n0, d);
    for (int i = 0; i < n0; ++i) stale.SetRow(i, normalized.Row(i));
    const auto live = learner.Fit(stale, alpha);
    if (!live.ok()) return 1;

    // Cold baseline: a from-scratch single-restart fit on the full store.
    // A single trajectory's iteration count is the luck of its
    // random-sample init (the same reason the fit bench amortises over 8
    // restarts), so the baseline is the median-time fit over several
    // inits, not one draw.
    const std::vector<uint64_t> cold_seeds =
        quick ? std::vector<uint64_t>{1234, 2026, 7}
              : std::vector<uint64_t>{1234, 2026, 7, 99, 555};
    std::vector<double> cold_times;
    std::optional<rpc::core::RpcFitResult> cold;
    double cold_seconds = 0.0;
    {
      std::vector<std::pair<double, rpc::core::RpcFitResult>> runs;
      for (const uint64_t cold_seed : cold_seeds) {
        RpcLearnOptions cold_options = BenchLearner();
        cold_options.seed = cold_seed;
        const auto cold_start = std::chrono::steady_clock::now();
        auto fit = rpc::core::RpcLearner(cold_options).Fit(normalized, alpha);
        const double seconds = Seconds(cold_start);
        if (!fit.ok()) return 1;
        runs.emplace_back(seconds, *std::move(fit));
        cold_times.push_back(seconds);
      }
      std::sort(runs.begin(), runs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto& median = runs[runs.size() / 2];
      cold_seconds = median.first;
      cold = std::move(median.second);
    }

    // Warm refresh: the streaming path — live control points plus per-row
    // s* (the fresh rows seeded by one projection onto the live curve,
    // exactly what StreamingRanker does on append), warm options as the
    // StreamingRanker derives them.
    StreamingRankerOptions stream_options;
    stream_options.learner = BenchLearner();
    StreamingRanker shape_only(nullptr, "bench", stream_options);
    const rpc::core::RpcLearner warm_learner(shape_only.warm_options());
    rpc::core::RpcWarmStartState seed;
    seed.control_points = live->curve.control_points();
    seed.scores = Vector(n);
    for (int i = 0; i < n0; ++i) seed.scores[i] = live->scores[i];
    {
      rpc::opt::ProjectionWorkspace workspace;
      workspace.Bind(live->curve.bezier(), BenchLearner().projection);
      for (int i = n0; i < n; ++i) {
        seed.scores[i] = workspace.Project(normalized.RowPtr(i)).s;
      }
    }
    const auto warm_start_time = std::chrono::steady_clock::now();
    const auto warm = warm_learner.Refit(normalized, alpha, seed);
    const double warm_seconds = Seconds(warm_start_time);
    if (!warm.ok()) return 1;
    const double speedup = cold_seconds / warm_seconds;
    // The refresh continues the live model's basin while an independent
    // cold fit may land in another one, so J parity is not the contract
    // (bit-identity to a hand-rolled Refit is, and the test suite gates
    // it); fit *quality* must stay comparable, measured by explained
    // variance.
    const double j_rel =
        std::fabs(warm->final_j - cold->final_j) /
        std::max(1e-300, std::fabs(cold->final_j));
    Emit(sink,
         std::string("{\"bench\":\"streaming_throughput\",\"variant\":"
                     "\"refresh_vs_cold\",\"d\":") + std::to_string(d) +
             ",\"n\":" + std::to_string(n) +
             ",\"threads\":1,\"cold_seconds\":" +
             std::to_string(cold_seconds) + ",\"warm_seconds\":" +
             std::to_string(warm_seconds) + ",\"speedup_vs_cold\":" +
             std::to_string(speedup) + ",\"j_rel_diff_vs_full\":" +
             std::to_string(j_rel) + "}");
    if (warm->explained_variance < cold->explained_variance - 0.02) {
      std::fprintf(stderr,
                   "warm refresh explained variance %.4f fell behind the "
                   "cold fit's %.4f\n",
                   warm->explained_variance, cold->explained_variance);
      return 1;
    }
    if (!quick && speedup < 3.0) {
      std::fprintf(stderr,
                   "warm refresh only %.2fx faster than the cold "
                   "single-restart fit (bar: 3x)\n", speedup);
      return 1;
    }
  }

  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return 0;
}
