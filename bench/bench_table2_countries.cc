// E2 — Table 2: life qualities of 171 countries; RPC vs the Elmap
// comparator of Gorban-Zinovyev [8], explained variance, learned control
// points in the original data space.
#include <cstdio>

#include "baselines/elmap.h"
#include "bench_util.h"
#include "common/stringutil.h"
#include "core/rpc_ranker.h"
#include "data/fixtures.h"
#include "data/generators.h"
#include "rank/metrics.h"

namespace {

using rpc::baselines::ElmapCurve;
using rpc::baselines::ElmapOptions;
using rpc::core::RpcRanker;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;

}  // namespace

int main() {
  rpc::bench::PrintHeader(
      "E2: country life-quality ranking — RPC vs Elmap",
      "Table 2 (+ the 90% vs 86% explained-variance comparison)");

  const rpc::data::Dataset countries =
      rpc::data::GenerateCountryData(171, 7, /*include_anchors=*/true);
  const auto alpha = rpc::order::Orientation::FromSigns({1, 1, -1, -1});
  const auto ranker = RpcRanker::FitDataset(countries, *alpha);
  if (!ranker.ok()) {
    std::fprintf(stderr, "%s\n", ranker.status().ToString().c_str());
    return 1;
  }
  const Vector raw_scores = ranker->ScoreRows(countries.values());
  const Vector unit_scores = rpc::core::RescaleToUnit(raw_scores);
  const rpc::rank::RankingList list(unit_scores, countries.labels());

  // Elmap comparator: [8]'s quality-of-life index used a coarse,
  // low-resolution elastic map, which is what the paper's 86% refers to.
  // We report that calibration plus the library default (20 free nodes,
  // which out-fits the monotone cubic but satisfies fewer meta-rules).
  ElmapOptions stiff;
  stiff.num_nodes = 6;
  stiff.lambda = 0.05;
  stiff.mu = 3.0;
  const auto elmap_stiff =
      ElmapCurve::Fit(countries.values(), *alpha, stiff);
  const auto elmap_default = ElmapCurve::Fit(countries.values(), *alpha);
  if (!elmap_stiff.ok() || !elmap_default.ok()) {
    std::fprintf(stderr, "elmap fit failed\n");
    return 1;
  }
  const Vector elmap_scores = elmap_stiff->ScoreRows(countries.values());
  const rpc::rank::RankingList elmap_list(elmap_scores, countries.labels());

  // --- The Table 2 style list for the paper's anchor rows. ---------------
  std::printf("\n%-15s %8s %7s %5s %5s | %-8s %-5s | %-8s %-5s "
              "(paper RPC: %-7s %-5s)\n",
              "country", "GDP", "LEB", "IMR", "TB", "Elmap", "ord",
              "RPC", "ord", "score", "ord");
  for (const auto& anchor : rpc::data::Table2Anchors()) {
    const int idx = countries.LabelIndex(anchor.name).value();
    std::printf(
        "%-15s %8.0f %7.2f %5.0f %5.0f | %8.3f %5d | %8.4f %5d "
        "(paper RPC: %7.4f %5d)\n",
        anchor.name, anchor.gdp, anchor.leb, anchor.imr, anchor.tb,
        elmap_scores[idx], elmap_list.PositionOf(idx), unit_scores[idx],
        list.PositionOf(idx), anchor.rpc_score, anchor.rpc_order);
  }

  // --- Learned control points in original units (Table 2 bottom). --------
  const Matrix points = ranker->ControlPointsInOriginalSpace();
  const Matrix paper_points = rpc::data::Table2ControlPoints();
  std::printf("\nControl/end points in original units (paper's in brackets):\n");
  std::printf("%-4s %22s %20s %18s %18s\n", "", "GDP", "LEB", "IMR", "TB");
  for (int r = 0; r < 4; ++r) {
    std::printf("p%-3d %10.1f [%8.1f] %9.2f [%7.2f] %8.1f [%6.1f] %8.1f "
                "[%6.1f]\n",
                r, points(r, 0), paper_points(r, 0), points(r, 1),
                paper_points(r, 1), points(r, 2), paper_points(r, 2),
                points(r, 3), paper_points(r, 3));
  }

  // --- Explained variance. ------------------------------------------------
  const Matrix normalized = ranker->normalizer().Transform(countries.values());
  const double rpc_ev = rpc::rank::ExplainedVariance(
      ranker->fit_result().final_j, normalized);
  const double elmap_ev = rpc::rank::ExplainedVariance(
      elmap_stiff->residual_j(), normalized);
  const double elmap_default_ev = rpc::rank::ExplainedVariance(
      elmap_default->residual_j(), normalized);
  std::printf("\nExplained variance: RPC %.1f%%, Elmap(paper-calibrated) "
              "%.1f%%, Elmap(default, 20 free nodes) %.1f%%\n",
              100.0 * rpc_ev, 100.0 * elmap_ev, 100.0 * elmap_default_ev);

  // --- Paper-vs-measured block. -------------------------------------------
  std::vector<rpc::bench::Comparison> comparisons;
  const auto& anchors = rpc::data::Table2Anchors();
  bool tiers_hold = true;
  for (size_t top = 0; top < 5; ++top) {
    for (size_t bottom = 10; bottom < 15; ++bottom) {
      const int t = countries.LabelIndex(anchors[top].name).value();
      const int b = countries.LabelIndex(anchors[bottom].name).value();
      tiers_hold = tiers_hold && list.PositionOf(t) < list.PositionOf(b);
    }
  }
  comparisons.push_back({"top-5 anchors all above bottom-5 anchors", "yes",
                         rpc::bench::YesNo(tiers_hold), tiers_hold});
  const int lux = countries.LabelIndex("Luxembourg").value();
  const int swz = countries.LabelIndex("Swaziland").value();
  comparisons.push_back(
      {"Luxembourg is the best anchor (score 1.0000)", "yes",
       rpc::bench::YesNo(list.PositionOf(lux) < list.PositionOf(
                             countries.LabelIndex("Norway").value())),
       list.PositionOf(lux) <
           list.PositionOf(countries.LabelIndex("Norway").value())});
  bool swz_last_anchor = true;
  for (const auto& anchor : anchors) {
    if (std::string(anchor.name) == "Swaziland") continue;
    const int other = countries.LabelIndex(anchor.name).value();
    swz_last_anchor =
        swz_last_anchor && list.PositionOf(swz) > list.PositionOf(other);
  }
  comparisons.push_back({"Swaziland is the worst anchor (score 0)", "yes",
                         rpc::bench::YesNo(swz_last_anchor),
                         swz_last_anchor});
  comparisons.push_back(
      {"explained variance: RPC vs Elmap", "90% vs 86% (RPC wins)",
       rpc::StrFormat("%.0f%% vs %.0f%%", 100.0 * rpc_ev, 100.0 * elmap_ev),
       rpc_ev > elmap_ev});
  Vector our_anchor_orders(static_cast<int>(anchors.size()));
  Vector paper_anchor_orders(static_cast<int>(anchors.size()));
  for (size_t i = 0; i < anchors.size(); ++i) {
    our_anchor_orders[static_cast<int>(i)] = list.PositionOf(
        countries.LabelIndex(anchors[i].name).value());
    paper_anchor_orders[static_cast<int>(i)] = anchors[i].rpc_order;
  }
  const double rho =
      rpc::rank::SpearmanRho(our_anchor_orders, paper_anchor_orders);
  comparisons.push_back({"anchor-order Spearman vs paper", "1.0",
                         rpc::StrFormat("%.3f", rho), rho > 0.9});
  const double tau_methods = rpc::rank::KendallTauB(
      raw_scores, elmap_default->ScoreRows(countries.values()));
  comparisons.push_back({"RPC/Elmap list agreement (tau-b)",
                         "high (methods broadly agree)",
                         rpc::StrFormat("%.3f", tau_methods),
                         tau_methods > 0.8});

  const int mismatches = rpc::bench::PrintComparisons(comparisons);
  std::printf("\nE2 mismatches vs paper: %d\n", mismatches);
  return 0;
}
