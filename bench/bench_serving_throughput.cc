// Serving-tier throughput: queries/s and rows/s of serve::RankingService
// across shard counts x batch sizes x d, for a single-thread service (the
// regression-gated configuration) and a full-pool service driven by
// concurrent callers.
//
// Before any timing, every (shards, d) configuration is verified: served
// scores must be bit-identical to PortableRpcModel::Score — the same
// normalise + project arithmetic RpcRanker runs in process — for every
// shard. Any mismatch fails the run.
//
//   build/bench_serving_throughput [--quick]
//
// Full runs rewrite BENCH_serving_throughput.json (one JSON row per grid
// cell, the committed perf record the CI regression gate compares against);
// --quick runs a key-identical subset with a shorter timing window and
// write BENCH_serving_throughput.quick.json instead, so CI smokes never
// clobber the curated baselines.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

#include "bench_util.h"

namespace {

using rpc::Rng;
using rpc::linalg::Matrix;
using rpc::linalg::Vector;
using rpc::serve::RankingService;

// Synthetic all-benefit portable model over a random strictly monotone
// cubic — the serving tier never fits, so neither does its bench. Keep in
// sync with the copy in tests/serve/ranking_service_test.cc.
rpc::core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  rpc::core::PortableRpcModel model;
  model.alpha = rpc::order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

struct Measurement {
  double queries_per_sec = 0.0;
  double rows_per_sec = 0.0;
};

// `callers` threads issue synchronous queries round-robin over the shards
// until `min_seconds` of wall time has elapsed; returns aggregate rates.
Measurement MeasureThroughput(const RankingService& service, int shards,
                              const std::vector<Matrix>& batches,
                              int callers, double min_seconds) {
  // Warm-up: touch every shard once so workspaces/pages are resident.
  for (int s = 0; s < shards; ++s) {
    (void)service.Query("ds" + std::to_string(s),
                             batches[static_cast<size_t>(s)]);
  }
  std::atomic<std::int64_t> total_queries{0};
  std::atomic<std::int64_t> total_rows{0};
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  auto drive = [&](int caller) {
    std::int64_t queries = 0;
    std::int64_t rows = 0;
    // Each caller walks the shards from its own offset so shards stay
    // uniformly loaded for every caller count.
    for (int q = caller; elapsed() < min_seconds; ++q) {
      const int s = q % shards;
      const auto batch = service.Query("ds" + std::to_string(s),
                                            batches[static_cast<size_t>(s)]);
      if (!batch.ok()) continue;  // unreachable: ids are registered
      ++queries;
      rows += batch->scores.size();
    }
    total_queries += queries;
    total_rows += rows;
  };
  if (callers <= 1) {
    drive(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(callers));
    for (int c = 0; c < callers; ++c) threads.emplace_back(drive, c);
    for (auto& t : threads) t.join();
  }
  const double seconds = elapsed();
  Measurement m;
  m.queries_per_sec = static_cast<double>(total_queries.load()) / seconds;
  m.rows_per_sec = static_cast<double>(total_rows.load()) / seconds;
  return m;
}

void EmitJson(std::FILE* sink, int shards, int batch, int d, int threads,
              int callers, const Measurement& m) {
  const std::string line =
      std::string("{\"bench\":\"serving_throughput\",\"variant\":\"serve\"") +
      ",\"shards\":" + std::to_string(shards) +
      ",\"batch\":" + std::to_string(batch) + ",\"d\":" + std::to_string(d) +
      ",\"threads\":" + std::to_string(threads) +
      ",\"callers\":" + std::to_string(callers) +
      ",\"queries_per_sec\":" + std::to_string(m.queries_per_sec) +
      ",\"rows_per_sec\":" + std::to_string(m.rows_per_sec) + "}";
  std::printf("%s\n", line.c_str());
  if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
}

// Served scores must equal the portable model's own (RpcRanker-equivalent)
// scoring bit for bit on every shard; returns the number of mismatches.
int VerifyBitIdentity(const RankingService& service, int shards,
                      const std::vector<rpc::core::PortableRpcModel>& models,
                      const std::vector<Matrix>& batches) {
  int mismatches = 0;
  for (int s = 0; s < shards; ++s) {
    const Matrix& rows = batches[static_cast<size_t>(s)];
    const auto batch = service.Query("ds" + std::to_string(s), rows);
    if (!batch.ok()) {
      std::fprintf(stderr, "verify: query failed: %s\n",
                   batch.status().ToString().c_str());
      return rows.rows();
    }
    for (int i = 0; i < rows.rows(); ++i) {
      const auto expected =
          models[static_cast<size_t>(s)].Score(rows.Row(i));
      if (!expected.ok() || batch->scores[i] != *expected) {
        ++mismatches;
      }
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> shard_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};
  const std::vector<int> batch_sizes =
      quick ? std::vector<int>{1, 64} : std::vector<int>{1, 64, 1024};
  const std::vector<int> ds{2, 8};
  // Quick windows are still long enough for the regression gate to read a
  // stable single-thread number: 0.05 s windows wobbled past the gate's
  // 25% band on a busy machine, 0.15 s do not.
  const double min_seconds = quick ? 0.15 : 0.3;

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int pool_threads = hw > 0 ? hw : 1;

  const char* sink_path = quick ? "BENCH_serving_throughput.quick.json"
                                : "BENCH_serving_throughput.json";
  std::FILE* sink = std::fopen(sink_path, "w");
  std::printf("# serving throughput (GSS, grid=32); %d hardware thread(s); "
              "JSON also in %s\n",
              pool_threads, sink_path);

  int verify_failures = 0;
  for (int d : ds) {
    for (int shards : shard_counts) {
      // Per-shard models and a dedicated query batch of the largest size;
      // smaller batches reuse a row prefix via sub-matrices below.
      std::vector<rpc::core::PortableRpcModel> models;
      std::vector<Matrix> full_batches;
      for (int s = 0; s < shards; ++s) {
        models.push_back(MonotoneModel(
            d, 1000 + static_cast<uint64_t>(100 * d + s)));
        full_batches.push_back(RandomRows(
            batch_sizes.back(), d, 2000 + static_cast<uint64_t>(10 * d + s)));
      }

      // threads=1 service: the stable, machine-comparable row the CI
      // regression gate checks; threads=pool with concurrent callers shows
      // the scaling headroom.
      struct Mode {
        int threads;
        int callers;
      };
      std::vector<Mode> modes{{1, 1}};
      if (pool_threads > 1) modes.push_back({0, pool_threads});

      for (const Mode mode : modes) {
        RankingService::Options options;
        options.num_threads = mode.threads;
        RankingService service(options);
        for (int s = 0; s < shards; ++s) {
          const rpc::Status registered = service.RegisterDataset(
              "ds" + std::to_string(s), models[static_cast<size_t>(s)]);
          if (!registered.ok()) {
            std::fprintf(stderr, "register failed: %s\n",
                         registered.ToString().c_str());
            return 1;
          }
        }
        const int mismatches =
            VerifyBitIdentity(service, shards, models, full_batches);
        if (mismatches != 0) {
          std::fprintf(stderr,
                       "verify: %d served scores differ from in-process "
                       "scoring (shards=%d d=%d threads=%d)\n",
                       mismatches, shards, d, mode.threads);
          ++verify_failures;
          continue;
        }
        for (int batch : batch_sizes) {
          std::vector<Matrix> batches;
          for (int s = 0; s < shards; ++s) {
            Matrix sub(batch, d);
            for (int i = 0; i < batch; ++i) {
              for (int j = 0; j < d; ++j) {
                sub(i, j) = full_batches[static_cast<size_t>(s)](i, j);
              }
            }
            batches.push_back(std::move(sub));
          }
          const Measurement m = MeasureThroughput(
              service, shards, batches,
              mode.callers, min_seconds);
          EmitJson(sink, shards, batch, d,
                   mode.threads == 0 ? pool_threads : mode.threads,
                   mode.callers, m);
        }
      }
    }
  }
  if (sink != nullptr) std::fclose(sink);
  rpc::bench::WriteTelemetrySnapshot(sink_path);
  return verify_failures == 0 ? 0 : 1;
}
